#!/usr/bin/env python
"""Multi-tenant serving load generator (docs/ARCHITECTURE.md §15.6).

Closed-loop synthetic tenants drive one :class:`RegionScheduler` through
a bursty, heavy-tailed overload scenario, once per serving policy:

* ``interleaved`` — the cross-tenant benefit scheduler with the full
  brownout ladder (``policy="benefit"``);
* ``fifo`` — identical machinery serving whole runs in arrival order
  (``policy="fifo"``), the baseline arm.

Arrivals are generated per tenant on the scheduler's own virtual clock:
each tenant submits with a deterministic jittered inter-arrival time,
modulated by a :class:`~repro.robustness.faults.TenantBurstPlan` so the
offered load is ~0.9x engine capacity on average but ~2x during bursts.
A heavy tail of submissions (default 20%) carries the 11-query subspace
workload instead of the 4-query Figure 1 family.  Every submission gets
a relative virtual-time deadline; the scheduler maps it onto the run's
budget, so a run that overstays is degraded to coarse MQLA bounds with
reason ``"deadline"`` — satisfaction is therefore measured *at* the
deadline by construction.

Per (policy, seed) arm the harness reports:

* ``satisfaction_p50`` / ``satisfaction_p99`` — quantiles of
  per-submission contract satisfaction over **all** submissions
  (rejections and sheds count as 0.0).  ``p99`` is the tail: the
  satisfaction exceeded by 99% of submissions;
* ``shed_rate`` — brownout rung-3 rejections / submitted;
* ``brownout_rate`` — rung-2 degrade-to-bounds actions / admitted;
* ``deadline_degraded`` — runs answered from bounds at their deadline;
* per-tier satisfaction quantiles (tier 0 must stay healthy under the
  benefit policy);
* a ``fingerprint`` over every per-submission observable — two runs of
  the same arm must match bit-for-bit (``--check-determinism`` replays
  each arm and verifies).

Results go to ``BENCH_serving.json``.  Run directly (not under pytest)::

    python benchmarks/bench_serving.py                    # full scenario
    python benchmarks/bench_serving.py --quick            # CI smoke run
    python benchmarks/bench_serving.py --check-determinism --burst
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import random
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import workload_of_size  # noqa: E402
from repro.contracts import c2  # noqa: E402
from repro.core import CAQE, CAQEConfig  # noqa: E402
from repro.datagen import generate_pair  # noqa: E402
from repro.query.workload import subspace_workload  # noqa: E402
from repro.robustness import TenantBurstPlan  # noqa: E402
from repro.serving import (  # noqa: E402
    POLICY_BENEFIT,
    POLICY_FIFO,
    RegionScheduler,
)

#: Synthetic tenant mix: (name, weight, tier, max_live).  Tier 0 is the
#: SLO-pinned tenant the brownout ladder must never touch.
TENANTS = (
    ("gold", 4.0, 0, 6),
    ("silver", 2.0, 1, 6),
    ("bronze-a", 1.0, 2, 6),
    ("bronze-b", 1.0, 2, 6),
)

#: Fraction of submissions carrying the heavy 11-query workload.
TAIL_FRACTION = 0.2

#: Offered load vs calibrated capacity: sustainable on average, 2x at
#: burst peaks (0.9 * (1 - duty + duty * factor) with duty=.25/factor≈2.2
#: keeps the long-run average near 1.0 while bursts hit ~2x).
BASE_LOAD = 0.9
BURST_FACTOR = 2.2
BURST_DUTY = 0.25

#: Relative deadline, in multiples of the calibrated small-run time.
DEADLINE_FACTOR = 6.0


def _rebased_satisfaction(result, arrival: float) -> float:
    """Contract satisfaction with report timestamps measured from the
    submission's own arrival, not the shared clock's origin.

    The engine scores timestamps on the shared virtual clock, which
    charges every tenant for time before it even arrived; rebasing makes
    satisfaction a per-submission responsiveness metric (queueing delay
    plus service), comparable across arrival times.
    """
    values = []
    for query in result.workload:
        log = result.logs[query.name]
        timestamps = np.maximum(
            np.asarray(log.timestamps, dtype=float) - arrival, 0.0
        )
        values.append(
            result.contracts[query.name].satisfaction(
                timestamps,
                float(len(log)),
                max(result.horizon - arrival, 0.0),
            )
        )
    return float(np.mean(values)) if values else 0.0


def _quantile(values: "list[float]", q: float) -> float:
    """Nearest-rank quantile on a sorted copy (deterministic)."""
    if not values:
        return 0.0
    ranked = sorted(values)
    idx = min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))
    return ranked[idx]


def build_scenario(quick: bool) -> dict:
    """Immutable inputs shared by every arm: data pair, workloads,
    contracts, and the calibrated per-run virtual service times."""
    cardinality = 120 if quick else 250
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=0.05, seed=23
    )
    small = workload_of_size(4, "C2")
    large = subspace_workload(4, priority_scheme="uniform")

    # Two-pass calibration: a provisional run measures the virtual
    # service time, then the C2 scale is pinned to it so an *unloaded*
    # run is fully satisfied and satisfaction decays only with
    # load-induced queueing delay.
    config = CAQEConfig()
    provisional = {q.name: c2(scale=1.0) for q in small}
    probe = CAQE(config).run(pair.left, pair.right, small, provisional)
    scale = 0.4 * probe.stats.elapsed
    contracts_small = {q.name: c2(scale=scale) for q in small}
    contracts_large = {q.name: c2(scale=scale) for q in large}

    s_small = (
        CAQE(config)
        .run(pair.left, pair.right, small, contracts_small)
        .stats.elapsed
    )
    s_large = (
        CAQE(config)
        .run(pair.left, pair.right, large, contracts_large)
        .stats.elapsed
    )
    s_mean = (1.0 - TAIL_FRACTION) * s_small + TAIL_FRACTION * s_large
    return {
        "pair": pair,
        "workloads": {"small": small, "large": large},
        "contracts": {"small": contracts_small, "large": contracts_large},
        "cardinality": cardinality,
        "service_small": s_small,
        "service_large": s_large,
        "service_mean": s_mean,
        "contract_scale": scale,
        "deadline": DEADLINE_FACTOR * s_small,
        "subs_per_tenant": 8 if quick else 12,
    }


def run_arm(
    scenario: dict, policy: str, seed: int, burst: bool
) -> dict:
    """One (policy, seed) arm: generate arrivals, drive the scheduler to
    idle, and distil per-submission observables."""
    pair = scenario["pair"]
    n_tenants = len(TENANTS)
    base_gap = n_tenants * scenario["service_mean"] / BASE_LOAD
    deadline = scenario["deadline"]
    plan = (
        TenantBurstPlan(
            seed=seed,
            burst_fraction=0.75,
            burst_factor=BURST_FACTOR,
            burst_period=8.0 * base_gap,
            burst_duty=BURST_DUTY,
        )
        if burst
        else None
    )

    finished: "list[dict]" = []
    sid_info: "dict[int, tuple[str, int, float]]" = {}

    def on_finish(ticket, outcome, breaker_failure) -> None:
        tenant, tier, arrival = sid_info[ticket.ticket_id]
        result = outcome.result
        satisfaction = (
            _rebased_satisfaction(result, arrival)
            if result is not None
            else 0.0
        )
        finished.append(
            {
                "sid": ticket.ticket_id,
                "tenant": tenant,
                "tier": tier,
                "status": outcome.status,
                "reasons": list(outcome.reasons),
                "satisfaction": round(satisfaction, 9),
                "completed_vt": round(sched.clock.now(), 6),
            }
        )

    # Ladder thresholds tuned for a fleet that peaks around ten live
    # submissions: rung 2 (degrade) prunes the live set back to eight
    # whenever a burst pushes it to nine, rung 1 (defer) only locks out
    # low tiers at the same depth — so between bursts every tier keeps
    # making progress — and rung 3 (shed) guards the pathological case.
    # Fairness pressure well above the default keeps the deficit term
    # competitive with raw CSM so low-benefit stragglers are pulled
    # forward — that is what moves the p99 tail, not the median.
    config = CAQEConfig(
        server_mode="interleaved",
        tenant_fairness_pressure=1.0,
        tenant_brownout_defer_live=9,
        tenant_brownout_degrade_live=9,
        tenant_brownout_shed_live=11,
    )
    sched = RegionScheduler(
        pair.left,
        pair.right,
        config,
        policy=POLICY_BENEFIT if policy == "interleaved" else POLICY_FIFO,
        on_finish=on_finish,
    )
    for name, weight, tier, max_live in TENANTS:
        sched.register_tenant(
            name, weight=weight, tier=tier, max_live=max_live
        )

    rngs = [random.Random((seed << 8) ^ idx) for idx in range(n_tenants)]
    next_at = [idx * base_gap / n_tenants for idx in range(n_tenants)]
    remaining = [scenario["subs_per_tenant"]] * n_tenants
    rejected: "list[dict]" = []

    while any(remaining) or not sched.idle:
        now = sched.clock.now()
        for idx, (name, _w, tier, _m) in enumerate(TENANTS):
            while remaining[idx] and next_at[idx] <= now:
                rng = rngs[idx]
                heavy = rng.random() < TAIL_FRACTION
                kind = "large" if heavy else "small"
                outcome = sched.submit(
                    scenario["workloads"][kind],
                    scenario["contracts"][kind],
                    tenant=name,
                    deadline=deadline,
                )
                if outcome:
                    sid_info[outcome.ticket_id] = (name, tier, now)
                else:
                    rejected.append(
                        {
                            "tenant": name,
                            "tier": tier,
                            "reason": outcome.reason,
                            "at_vt": round(now, 6),
                        }
                    )
                remaining[idx] -= 1
                mult = (
                    plan.rate_multiplier(idx, now)
                    if plan is not None and plan.is_bursty(idx)
                    else 1.0
                )
                jitter = 0.8 + 0.4 * rng.random()
                next_at[idx] += base_gap * jitter / mult
        if not sched.step() and any(remaining):
            # Idle with future arrivals only: jump the shared clock.
            upcoming = min(
                next_at[idx] for idx in range(n_tenants) if remaining[idx]
            )
            sched.clock.advance(max(upcoming - sched.clock.now(), 1e-9))
    sched.close()

    samples = [row["satisfaction"] for row in finished] + [
        0.0 for _ in rejected
    ]
    by_tier: "dict[int, list[float]]" = {}
    for row in finished:
        by_tier.setdefault(row["tier"], []).append(row["satisfaction"])
    for row in rejected:
        by_tier.setdefault(row["tier"], []).append(0.0)
    metrics = dict(sched.metrics)
    unanswered = metrics["admitted"] - (
        metrics["answered"]
        + metrics["degraded"]
        + metrics["cancelled"]
        + metrics["failed"]
    )
    deadline_degraded = sum(
        1 for row in finished if "deadline" in row["reasons"]
    )
    trace = [
        (
            row["sid"],
            row["tenant"],
            row["status"],
            tuple(row["reasons"]),
            row["satisfaction"],
            row["completed_vt"],
        )
        for row in finished
    ] + [(r["tenant"], r["reason"], r["at_vt"]) for r in rejected]
    fingerprint = hashlib.sha256(repr(trace).encode()).hexdigest()[:16]
    return {
        "policy": policy,
        "seed": seed,
        "burst": burst,
        "submitted": metrics["submitted"],
        "admitted": metrics["admitted"],
        "unanswered": unanswered,
        "steps": metrics["steps"],
        "satisfaction_p50": round(_quantile(samples, 0.50), 6),
        "satisfaction_p99": round(_quantile(samples, 0.01), 6),
        "satisfaction_mean": round(sum(samples) / len(samples), 6)
        if samples
        else 0.0,
        "shed_rate": round(
            metrics["rejected_brownout"] / max(metrics["submitted"], 1), 6
        ),
        "brownout_rate": round(
            metrics["brownout_degraded"] / max(metrics["admitted"], 1), 6
        ),
        "deadline_degraded": deadline_degraded,
        "rejected_queue_full": metrics["rejected_queue_full"],
        "rejected_bulkhead": metrics["rejected_bulkhead"],
        "rejected_brownout": metrics["rejected_brownout"],
        "answered": metrics["answered"],
        "degraded": metrics["degraded"],
        "tiers": {
            str(tier): {
                "n": len(vals),
                "p50": round(_quantile(vals, 0.50), 6),
                "p99": round(_quantile(vals, 0.01), 6),
            }
            for tier, vals in sorted(by_tier.items())
        },
        "tenant_report": {
            name: {k: round(v, 6) for k, v in row.items()}
            for name, row in sched.tenant_report().items()
        },
        "fingerprint": fingerprint,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small-scale CI smoke run"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7],
        help="load-generator seeds (one scenario per seed)",
    )
    parser.add_argument(
        "--burst",
        action="store_true",
        help="enable the TenantBurstPlan arrival modulation",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="replay every arm and require identical fingerprints",
    )
    parser.add_argument(
        "--assert-interleaved-wins",
        action="store_true",
        help="exit non-zero unless interleaved p99 >= fifo p99 per seed",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
        help="output JSON path (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    scenario = build_scenario(args.quick)
    arms = []
    failures = []
    for seed in args.seeds:
        for policy in ("fifo", "interleaved"):
            arm = run_arm(scenario, policy, seed, args.burst)
            if args.check_determinism:
                replay = run_arm(scenario, policy, seed, args.burst)
                arm["deterministic"] = (
                    replay["fingerprint"] == arm["fingerprint"]
                )
                if not arm["deterministic"]:
                    failures.append(
                        f"{policy} seed={seed}: fingerprint diverged on "
                        f"replay ({arm['fingerprint']} vs "
                        f"{replay['fingerprint']})"
                    )
            if arm["unanswered"]:
                failures.append(
                    f"{policy} seed={seed}: {arm['unanswered']} admitted "
                    "submission(s) never reached a terminal state"
                )
            arms.append(arm)
            print(
                f"{policy:12s} seed={seed}  p50={arm['satisfaction_p50']:.4f}"
                f"  p99={arm['satisfaction_p99']:.4f}"
                f"  shed={arm['shed_rate']:.3f}"
                f"  brownout={arm['brownout_rate']:.3f}"
                f"  fp={arm['fingerprint']}"
            )
        if args.assert_interleaved_wins:
            fifo = next(
                a
                for a in arms
                if a["seed"] == seed and a["policy"] == "fifo"
            )
            inter = next(
                a
                for a in arms
                if a["seed"] == seed and a["policy"] == "interleaved"
            )
            if inter["satisfaction_p99"] < fifo["satisfaction_p99"]:
                failures.append(
                    f"seed={seed}: interleaved p99 "
                    f"{inter['satisfaction_p99']} < fifo p99 "
                    f"{fifo['satisfaction_p99']}"
                )

    report = {
        "bench": "serving",
        "quick": args.quick,
        "burst": args.burst,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": {
            "tenants": [
                {
                    "name": name,
                    "weight": weight,
                    "tier": tier,
                    "max_live": max_live,
                }
                for name, weight, tier, max_live in TENANTS
            ],
            "cardinality": scenario["cardinality"],
            "subs_per_tenant": scenario["subs_per_tenant"],
            "tail_fraction": TAIL_FRACTION,
            "base_load": BASE_LOAD,
            "burst_factor": BURST_FACTOR,
            "burst_duty": BURST_DUTY,
            "deadline_vt": round(scenario["deadline"], 4),
            "contract_scale_vt": round(scenario["contract_scale"], 4),
            "service_small_vt": round(scenario["service_small"], 4),
            "service_large_vt": round(scenario["service_large"], 4),
        },
        "arms": arms,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"bench-serving: FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
