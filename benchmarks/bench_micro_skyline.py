"""Micro-benchmarks: the skyline algorithm suite on benchmark data.

Not a paper figure — real wall-clock comparisons of the substrate
algorithms (BNL, SFS, SaLSa, divide & conquer, BBS) across the three data
distributions, with the comparison-count table the related-work section
(§8) reasons about.  Unlike the figure benches these use pytest-benchmark's
normal multi-round timing.
"""

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.datagen.distributions import generate
from repro.skyline import (
    ComparisonCounter,
    bbs_skyline,
    bnl_skyline,
    dnc_skyline,
    salsa_skyline,
    sfs_skyline,
)
from repro.skyline.window import SkylineWindow

N = 1200
ALGORITHMS = {
    "BNL": lambda pts, counter: bnl_skyline(pts, counter=counter),
    "SFS": lambda pts, counter: sfs_skyline(pts, counter=counter),
    "SaLSa": lambda pts, counter: salsa_skyline(pts, counter=counter)[0],
    "D&C": lambda pts, counter: dnc_skyline(pts, counter=counter),
    "BBS": lambda pts, counter: bbs_skyline(pts, counter=counter),
}


@pytest.fixture(scope="module", params=["correlated", "independent", "anticorrelated"])
def dataset(request):
    return request.param, generate(request.param, N, 3, seed=13)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def bench_micro_skyline_algorithm(benchmark, dataset, algorithm):
    name, points = dataset
    run = ALGORITHMS[algorithm]
    benchmark.group = f"skyline-{name}"
    result = benchmark(lambda: run(points, None))
    # All algorithms must agree with BNL.
    assert sorted(result) == bnl_skyline(points)


def bench_micro_comparison_counts(run_once, benchmark, dataset):
    """One table per distribution: pairwise comparisons per algorithm."""
    name, points = dataset

    def count_all():
        counts = {}
        for algo, run in ALGORITHMS.items():
            counter = ComparisonCounter()
            run(points, counter)
            counts[algo] = counter.comparisons
        return counts

    counts = run_once(benchmark, count_all)
    print()
    print(
        render_table(
            ("algorithm", "pairwise comparisons"),
            sorted(counts.items()),
            title=f"Skyline comparison counts ({name}, N={N}, d=3)",
        )
    )
    # Presorting must beat the naive scan on every distribution.
    assert counts["SFS"] <= counts["BNL"]


# --------------------------------------------------------------------- #
# Window storage (the SoA flat-array layout, docs/ARCHITECTURE.md §16)
# --------------------------------------------------------------------- #
BATCH = 64


def _batches(points):
    return [
        (
            [("b", start + i) for i in range(len(chunk))],
            np.ascontiguousarray(chunk, dtype=float),
        )
        for start, chunk in (
            (s, points[s : s + BATCH]) for s in range(0, len(points), BATCH)
        )
    ]


def bench_micro_window_insert_batch(run_once, benchmark, dataset):
    """Batched maintenance over one full dataset (replay kernel)."""
    name, points = dataset
    batches = _batches(points)
    benchmark.group = f"window-storage-{name}"

    def insert_all():
        window = SkylineWindow()
        for keys, matrix in batches:
            window.insert_batch(keys, matrix)
        return window

    window = run_once(benchmark, insert_all)
    assert sorted(
        tuple(v) for v in window.vectors
    ) == sorted(tuple(points[i]) for i in bnl_skyline(points))


def bench_micro_window_compaction(run_once, benchmark, dataset):
    """Tombstone churn: alternating inserts and removals drive the
    deferred compaction path (the dead-fraction sweep)."""
    name, points = dataset
    benchmark.group = f"window-storage-{name}"
    # Mutually incomparable ranks keep the window large so removals (not
    # dominance evictions) create the tombstones being measured.
    order = np.argsort(points[:, 0], kind="stable")
    ranked = np.stack(
        [np.arange(len(points)), np.arange(len(points))[::-1]], axis=1
    ).astype(float)

    def churn():
        window = SkylineWindow()
        for i, vec in enumerate(ranked):
            window.insert(("k", int(order[i])), vec)
            if i % 2:
                window.remove_key(("k", int(order[i - 1])))
        return window

    window = run_once(benchmark, churn)
    assert len(window) == len(points) // 2
    assert window.dead_fraction <= 0.5


def bench_micro_window_dump_load(run_once, benchmark, dataset):
    """The durability serialisation contract over a populated window."""
    name, points = dataset
    benchmark.group = f"window-storage-{name}"
    source = SkylineWindow()
    for keys, matrix in _batches(points):
        source.insert_batch(keys, matrix)

    def roundtrip():
        keys, rows = source.dump_entries()
        restored = SkylineWindow()
        restored.load_entries(keys, rows)
        return restored

    restored = run_once(benchmark, roundtrip)
    assert list(restored.keys) == list(source.keys)
    assert np.array_equal(restored.vectors, source.vectors)
