"""Micro-benchmarks: the skyline algorithm suite on benchmark data.

Not a paper figure — real wall-clock comparisons of the substrate
algorithms (BNL, SFS, SaLSa, divide & conquer, BBS) across the three data
distributions, with the comparison-count table the related-work section
(§8) reasons about.  Unlike the figure benches these use pytest-benchmark's
normal multi-round timing.
"""

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.datagen.distributions import generate
from repro.skyline import (
    ComparisonCounter,
    bbs_skyline,
    bnl_skyline,
    dnc_skyline,
    salsa_skyline,
    sfs_skyline,
)

N = 1200
ALGORITHMS = {
    "BNL": lambda pts, counter: bnl_skyline(pts, counter=counter),
    "SFS": lambda pts, counter: sfs_skyline(pts, counter=counter),
    "SaLSa": lambda pts, counter: salsa_skyline(pts, counter=counter)[0],
    "D&C": lambda pts, counter: dnc_skyline(pts, counter=counter),
    "BBS": lambda pts, counter: bbs_skyline(pts, counter=counter),
}


@pytest.fixture(scope="module", params=["correlated", "independent", "anticorrelated"])
def dataset(request):
    return request.param, generate(request.param, N, 3, seed=13)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def bench_micro_skyline_algorithm(benchmark, dataset, algorithm):
    name, points = dataset
    run = ALGORITHMS[algorithm]
    benchmark.group = f"skyline-{name}"
    result = benchmark(lambda: run(points, None))
    # All algorithms must agree with BNL.
    assert sorted(result) == bnl_skyline(points)


def bench_micro_comparison_counts(run_once, benchmark, dataset):
    """One table per distribution: pairwise comparisons per algorithm."""
    name, points = dataset

    def count_all():
        counts = {}
        for algo, run in ALGORITHMS.items():
            counter = ComparisonCounter()
            run(points, counter)
            counts[algo] = counter.comparisons
        return counts

    counts = run_once(benchmark, count_all)
    print()
    print(
        render_table(
            ("algorithm", "pairwise comparisons"),
            sorted(counts.items()),
            title=f"Skyline comparison counts ({name}, N={N}, d=3)",
        )
    )
    # Presorting must beat the naive scan on every distribution.
    assert counts["SFS"] <= counts["BNL"]
