"""Figure 9b: average contract satisfaction, independent distribution.

Reproduces §7.2's comparison of CAQE, S-JFSL, JFSL, ProgXe+ and SSMJ under
the five contract classes of Table 2 on independent data (|S_Q| = 11).

Shape claims asserted (paper §7.2 / DESIGN.md §4):

* CAQE achieves the highest average satisfaction under every contract
  class (within a small tolerance for ties with S-JFSL);
* the contract-driven approach beats the blocking JFSL severalfold under
  deadline- and cardinality-style contracts;
* CAQE is roughly 2x better than the non-sharing techniques overall —
  the paper's headline claim.
"""

import numpy as np

from repro.baselines import FIGURE_STRATEGIES
from repro.bench.figures import figure9
from repro.contracts.presets import CONTRACT_CLASSES

TOLERANCE = 0.02


def bench_fig9b_independent(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure9("independent"))
    print()
    print(fig.table())

    for contract in CONTRACT_CLASSES:
        caqe = fig.satisfaction(contract, "CAQE")
        for other in FIGURE_STRATEGIES[1:]:
            assert caqe >= fig.satisfaction(contract, other) - TOLERANCE, (
                contract,
                other,
            )

    # Deadline/cardinality contracts starve the blocking baseline.
    for contract in ("C1", "C4", "C5"):
        assert fig.satisfaction(contract, "CAQE") >= 2.0 * fig.satisfaction(
            contract, "JFSL"
        ), contract

    # Headline: ~2x better than the non-sharing techniques on average.
    caqe_mean = np.mean([fig.satisfaction(c, "CAQE") for c in CONTRACT_CLASSES])
    for other in ("JFSL", "ProgXe+"):
        other_mean = np.mean(
            [fig.satisfaction(c, other) for c in CONTRACT_CLASSES]
        )
        assert caqe_mean >= 1.5 * other_mean, (other, caqe_mean, other_mean)
