"""Figures 5-6: the full skycube vs the min-max cuboid shared plan.

Prints the structure sizes for the paper's running workload (Figure 1) and
measures the comparison savings of shared (Theorem 1-seeded) skycube
evaluation over naive per-subspace evaluation.
"""

import numpy as np

from repro.bench.figures import figure6_sizes
from repro.bench.reporting import render_table
from repro.skyline import ComparisonCounter, compute_naive, compute_shared


def bench_fig6_minmax_cuboid_size(run_once, benchmark):
    sizes = run_once(benchmark, figure6_sizes)
    print()
    print(
        render_table(
            ("Structure", "Subspaces"),
            [
                ("Figure 5: full skycube (2^4 - 1)", sizes["full_skycube"]),
                ("Figure 6: min-max cuboid", sizes["min_max_cuboid"]),
            ],
            title="Shared-plan size for the Figure 1 workload",
        )
    )
    assert sizes["full_skycube"] == 15
    assert sizes["min_max_cuboid"] == 8  # exactly Figure 6


def bench_fig5_shared_skycube_comparisons(run_once, benchmark):
    rng = np.random.default_rng(20140324)
    points = rng.random((400, 4)) * 100

    def shared():
        counter = ComparisonCounter()
        compute_shared(points, counter)
        return counter.comparisons

    shared_comparisons = run_once(benchmark, shared)
    naive_counter = ComparisonCounter()
    compute_naive(points, naive_counter)
    print()
    print(
        render_table(
            ("Strategy", "Pairwise comparisons"),
            [
                ("naive (one BNL per subspace)", naive_counter.comparisons),
                ("shared (Theorem 1 seeding)", shared_comparisons),
            ],
            title="Skycube evaluation over 400 independent 4-d points",
        )
    )
    assert shared_comparisons < naive_counter.comparisons
