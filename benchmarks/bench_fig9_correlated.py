"""Figure 9a: average contract satisfaction, correlated distribution.

Correlated data is "tailor made for skyline algorithms" (§7.2): a handful
of join tuples dominates the space, so MQLA discards almost every region
and the sharing strategies deliver the tiny result set almost immediately.

Shape claims asserted:

* CAQE and S-JFSL both exploit the min-max cuboid's sharing and land far
  ahead of the blocking JFSL under every contract class;
* CAQE's contract-driven ordering keeps it at least level with S-JFSL;
* existing non-sharing techniques earn multiple-fold lower utility under
  the deadline-style contracts (the paper reports up to 4x).
"""

from repro.baselines import FIGURE_STRATEGIES
from repro.bench.figures import figure9
from repro.contracts.presets import CONTRACT_CLASSES

TOLERANCE = 0.02


def bench_fig9a_correlated(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure9("correlated"))
    print()
    print(fig.table())

    for contract in CONTRACT_CLASSES:
        caqe = fig.satisfaction(contract, "CAQE")
        # CAQE leads (or ties S-JFSL, its sharing-only ablation).
        for other in FIGURE_STRATEGIES[1:]:
            assert caqe >= fig.satisfaction(contract, other) - TOLERANCE, (
                contract,
                other,
            )
        # Both sharing strategies crush the blocking baseline.
        assert fig.satisfaction(contract, "S-JFSL") > fig.satisfaction(
            contract, "JFSL"
        ), contract
        assert caqe >= 2.0 * fig.satisfaction(contract, "JFSL"), contract

    # The paper's "at worst 4x smaller utility" for non-sharing techniques
    # under the hard deadline.
    assert fig.satisfaction("C1", "CAQE") >= 2.5 * fig.satisfaction("C1", "JFSL")
