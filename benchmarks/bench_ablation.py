"""Ablation benches for CAQE's design choices (DESIGN.md §5).

Each ablation disables one mechanism and reruns the same calibrated
experiment, quantifying that mechanism's contribution:

1. satisfaction feedback (Equation 11);
2. dependency-graph scheduling (Definition 9);
3. coarse-skyline region pruning (MQLA);
4. tuple-level region discarding (Section 6);
5. output-grid granularity.
"""

from dataclasses import replace

from repro.bench.config import experiment_for
from repro.bench.reporting import render_table
from repro.bench.runner import (
    calibrated_contracts,
    make_pair,
    make_workload,
    reference_time,
    run_strategy,
)
from repro.core import CAQEConfig


def _setup(contract_class="C1"):
    config = experiment_for("independent")
    pair = make_pair(config)
    workload = make_workload(config, contract_class)
    t_ref = reference_time(pair, workload, config)
    contracts = calibrated_contracts(contract_class, workload, t_ref)
    return config, pair, workload, contracts


def _run(config, pair, workload, contracts, caqe_config):
    cfg = replace(config, caqe=caqe_config)
    return run_strategy("CAQE", pair, workload, contracts, cfg)


def bench_ablation_mechanisms(run_once, benchmark):
    config, pair, workload, contracts = _setup("C1")

    variants = {
        "full CAQE": config.caqe,
        "no feedback (Eq. 11)": replace(config.caqe, enable_feedback=False),
        "no dependency graph": replace(config.caqe, enable_depgraph=False),
        "no coarse pruning": replace(config.caqe, enable_coarse_pruning=False),
        "no tuple discard": replace(config.caqe, enable_tuple_discard=False),
        "no look-ahead at all": replace(
            config.caqe,
            enable_depgraph=False,
            enable_coarse_pruning=False,
            enable_tuple_discard=False,
            objective="scan",
            enable_feedback=False,
        ),
    }

    def run_all():
        return {
            label: _run(config, pair, workload, contracts, caqe_cfg)
            for label, caqe_cfg in variants.items()
        }

    outcomes = run_once(benchmark, run_all)
    rows = [
        (
            label,
            outcome.average_satisfaction,
            outcome.stats["join_results"],
            outcome.stats["skyline_comparisons"],
            outcome.stats["virtual_time"],
        )
        for label, outcome in outcomes.items()
    ]
    print()
    print(
        render_table(
            ("Variant", "avg satisfaction", "join results", "comparisons", "virtual time"),
            rows,
            title="Ablation: contribution of each CAQE mechanism (C1, independent)",
        )
    )

    full = outcomes["full CAQE"]
    # Pruning mechanisms must not increase materialised join work.
    assert (
        full.stats["join_results"]
        <= outcomes["no coarse pruning"].stats["join_results"] + 1e-9
    )
    assert (
        full.stats["join_results"]
        <= outcomes["no tuple discard"].stats["join_results"] + 1e-9
    )
    # The full system should satisfy contracts at least as well as the
    # stripped pipeline.
    assert (
        full.average_satisfaction
        >= outcomes["no look-ahead at all"].average_satisfaction - 0.05
    )


def bench_ablation_grid_granularity(run_once, benchmark):
    config, pair, workload, contracts = _setup("C2")

    def run_all():
        return {
            divisions: _run(
                config, pair, workload, contracts,
                replace(config.caqe, divisions=divisions),
            )
            for divisions in (2, 4, 8, 16)
        }

    outcomes = run_once(benchmark, run_all)
    rows = [
        (d, o.average_satisfaction, o.stats["virtual_time"])
        for d, o in sorted(outcomes.items())
    ]
    print()
    print(
        render_table(
            ("grid divisions/dim", "avg satisfaction", "virtual time"),
            rows,
            title="Ablation: output-grid granularity (C2, independent)",
        )
    )
    # Sanity: every granularity still produces a working system.
    for outcome in outcomes.values():
        assert outcome.average_satisfaction >= 0.0
