"""Table 3: the related-work feature matrix, rendered from the registry.

The paper positions CAQE as the only technique combining skyline-over-join
support, multi-query processing, progressive output, and user QoS — this
bench prints the shipped matrix and asserts that positioning.
"""

from repro.baselines import feature_matrix
from repro.bench.reporting import render_feature_matrix


def bench_table3_feature_matrix(run_once, benchmark):
    matrix = run_once(benchmark, feature_matrix)
    print()
    print(render_feature_matrix())

    caqe = matrix["CAQE"]
    assert caqe.skyline_over_join and caqe.multiple_queries
    assert caqe.progressive and caqe.supports_qos
    # Nobody else supports contracts (Table 3's last column).
    for name, caps in matrix.items():
        if name != "CAQE":
            assert not caps.supports_qos, name
    # The shared baseline is multi-query + progressive but contract-blind.
    assert matrix["S-JFSL"].multiple_queries and matrix["S-JFSL"].progressive
    # Blocking single-query techniques.
    assert not matrix["JFSL"].progressive and not matrix["JFSL"].multiple_queries
    assert not matrix["SSMJ"].progressive
    assert matrix["ProgXe+"].progressive and not matrix["ProgXe+"].multiple_queries
