"""Shared helpers for the figure/table benches.

Every bench regenerates one of the paper's tables or figures, prints the
same rows/series the paper reports, and asserts the paper's qualitative
*shape* claims (DESIGN.md §4).  Absolute numbers differ — the substrate is
a deterministic virtual-clock simulator, not the authors' JVM testbed.

Run with::

    pytest benchmarks/ --benchmark-only

Scale data sizes with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import pytest


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def run_once():
    return once


# Benches *print* the tables/series the paper reports.  pytest captures
# that output; replay it in the terminal summary so a plain
# ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
# every table without needing ``-s``.
_captured: "list[tuple[str, str]]" = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.capstdout.strip():
        _captured.append((item.nodeid, report.capstdout))


def pytest_terminal_summary(terminalreporter):
    if not _captured:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for nodeid, text in _captured:
        terminalreporter.write_sep("-", nodeid)
        terminalreporter.write(text)
