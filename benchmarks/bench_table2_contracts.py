"""Table 2: the five progressive contract classes of the experimental study.

Regenerates the table's utility functions, evaluates each on a canonical
result stream, and prints the values — validating that every class matches
its closed form from the paper.
"""

import numpy as np

from repro.bench.reporting import render_table
from repro.contracts import c1, c2, c3, c4, c5


def bench_table2_contract_classes(run_once, benchmark):
    def build():
        return {
            "C1": c1(10.0),
            "C2": c2(),
            "C3": c3(10.0),
            "C4": c4(fraction=0.1, interval=1.0),
            "C5": c5(fraction=0.1, interval=1.0),
        }

    contracts = run_once(benchmark, build)

    # A canonical stream: 20 results paced 2-per-interval over 10 intervals.
    ts = np.concatenate([np.full(2, t + 0.5) for t in range(10)])
    rows = []
    for name, contract in contracts.items():
        utilities = contract.tuple_utilities(ts, 20)
        rows.append(
            (
                name,
                contract.name,
                float(utilities[0]),
                float(utilities[-1]),
                contract.pscore(ts, 20),
                contract.satisfaction(ts, 20),
            )
        )
    print()
    print(
        render_table(
            ("Class", "Instance", "u(first)", "u(last)", "pScore", "satisfaction"),
            rows,
            title="Table 2: contract classes on a perfectly paced stream",
        )
    )

    # Closed-form checks straight from Table 2.
    assert contracts["C1"].utility_at(9.9) == 1.0 and contracts["C1"].utility_at(10.1) == 0.0
    assert contracts["C2"].utility_at(100.0) == 1.0 / np.log(100.0)
    assert contracts["C3"].utility_at(12.0) == 0.5  # §7.2's worked example
    assert contracts["C4"].satisfaction(ts, 20) == 1.0  # paced stream is ideal
    # C5 = C4 * (1/ts): early full-quota intervals keep high utility.
    u5 = contracts["C5"].tuple_utilities(ts, 20)
    assert u5[0] == 1.0 and u5[-1] < 0.2
