"""Substrate ablations: partitioning policy and shared-structure choice.

Complements ``bench_ablation.py`` with the remaining DESIGN.md §5 choices:

* quad (2^d midpoint) vs k-d (binary median) input partitioning;
* min-max cuboid vs full skycube vs compressed skycube storage footprints.
"""

import numpy as np

from dataclasses import replace

from repro.bench.config import experiment_for
from repro.bench.reporting import render_table
from repro.bench.runner import (
    calibrated_contracts,
    make_pair,
    make_workload,
    reference_time,
    run_strategy,
)


def bench_ablation_partition_split(run_once, benchmark):
    config = experiment_for("correlated")  # skewed data shows the difference
    pair = make_pair(config)
    workload = make_workload(config, "C2")
    t_ref = reference_time(pair, workload, config)
    contracts = calibrated_contracts("C2", workload, t_ref)

    def run_both():
        return {
            split: run_strategy(
                "CAQE", pair, workload, contracts,
                replace(config, caqe=replace(config.caqe, partition_split=split)),
            )
            for split in ("quad", "kd")
        }

    outcomes = run_once(benchmark, run_both)
    rows = [
        (
            split,
            o.average_satisfaction,
            o.stats["regions_processed"],
            o.stats["regions_discarded"],
            o.stats["virtual_time"],
        )
        for split, o in outcomes.items()
    ]
    print()
    print(
        render_table(
            ("split policy", "avg satisfaction", "regions run", "regions pruned", "virtual time"),
            rows,
            title="Ablation: input partitioning policy (correlated, C2)",
        )
    )
    # Both policies must work; median splits keep leaf sizes balanced on
    # skewed data, so the kd pipeline should not process more regions than
    # several times the quad pipeline.
    assert outcomes["kd"].average_satisfaction > 0.0
    assert outcomes["quad"].average_satisfaction > 0.0


def bench_ablation_shared_structure_storage(run_once, benchmark):
    """Storage entries: full skycube vs compressed skycube on real data."""
    from repro.skyline.csc import CompressedSkycube
    from repro.skyline.skycube import compute_naive

    rng = np.random.default_rng(20140324)
    points = rng.random((300, 4)) * 100

    def build():
        csc = CompressedSkycube.build(points)
        full = compute_naive(points)
        return csc, full

    csc, full = run_once(benchmark, build)
    full_entries = CompressedSkycube.full_entries(full)
    print()
    print(
        render_table(
            ("structure", "stored (tuple, subspace) entries"),
            [
                ("full skycube", full_entries),
                ("compressed skycube", csc.stored_entries),
            ],
            title="Ablation: shared-structure storage (300 independent 4-d points)",
        )
    )
    print(f"compression ratio: {csc.compression_ratio(full):.3f}")
    assert csc.stored_entries < full_entries
    # Reconstruction must stay exact.
    for sub in full.subspaces:
        assert csc.skyline(sub) == full.skyline(sub)
