#!/usr/bin/env python
"""Parallel-engine scaling harness (docs/ARCHITECTURE.md §11).

Times the two paper scenarios under worker counts {0, 2, 4}:

* **Figure 9** — the 4-query Figure 1 family (independent, C2);
* **Figure 11** — the full 11-query subspace workload (independent, C2),
  the acceptance scenario: at ``workers=4`` the wall-clock must be at
  least 2x faster than the serial engine.

Every setting runs **twice**; the harness verifies that all deterministic
observables — region trace, skyline/coarse comparison counts, virtual
time, reported identity sets, contract satisfaction — are bit-identical
across every worker count *and* across the repeated runs, before it
reports any timing.  Phase-profiling totals and the simulated-makespan
channel (``parallel_summary``) are recorded alongside, plus the host CPU
count: on low-core hosts the speedup is carried by the parallel engine's
vectorised commit kernels rather than by raw concurrency, and the JSON
records that provenance.

Results go to ``BENCH_parallel.json``.  Run directly (not under pytest)::

    python benchmarks/bench_parallel_scaling.py           # full sizes
    python benchmarks/bench_parallel_scaling.py --quick   # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import workload_of_size  # noqa: E402
from repro.contracts import c2  # noqa: E402
from repro.core import CAQE, CAQEConfig  # noqa: E402
from repro.datagen import generate_pair  # noqa: E402
from repro.query.workload import subspace_workload  # noqa: E402

WORKER_GRID = (0, 2, 4)
RUNS_PER_SETTING = 2

#: Deterministic counters compared across worker counts and repeats.
STAT_FIELDS = (
    "region_trace",
    "skyline_comparisons",
    "coarse_comparisons",
    "elapsed",
    "join_results",
    "join_probes",
    "results_reported",
)


def fingerprint(result) -> tuple:
    """Everything that must be bit-identical regardless of ``workers``."""
    stats = tuple(getattr(result.stats, f) for f in STAT_FIELDS)
    reported = {
        name: frozenset(pairs) for name, pairs in result.reported.items()
    }
    satisfaction = {
        q.name: result.satisfaction(q.name) for q in result.workload
    }
    return stats, reported, satisfaction, result.horizon


def time_workers(pair, workload, contracts) -> dict:
    """Run the worker grid twice each; verify identity; report timings."""
    rows = {}
    reference = None
    profiled = None
    for workers in WORKER_GRID:
        config = CAQEConfig(workers=workers, profile_phases=True)
        walls = []
        for _ in range(RUNS_PER_SETTING):
            start = time.perf_counter()
            result = CAQE(config).run(
                pair.left, pair.right, workload, contracts
            )
            walls.append(time.perf_counter() - start)
            observed = fingerprint(result)
            if reference is None:
                reference = observed
            elif observed != reference:
                raise AssertionError(
                    f"workers={workers}: observables diverged from serial"
                )
        profiled = result
        rows[f"workers={workers}"] = {
            "wall_s": round(min(walls), 4),
            "wall_runs_s": [round(w, 4) for w in walls],
            "skyline_comparisons": result.stats.skyline_comparisons,
            "virtual_time": result.stats.elapsed,
            "regions_processed": result.stats.regions_processed,
            "average_satisfaction": round(result.average_satisfaction(), 6),
        }
    serial = rows["workers=0"]["wall_s"]
    for row in rows.values():
        row["speedup_vs_serial"] = round(serial / max(row["wall_s"], 1e-9), 2)
    return {
        "settings": rows,
        "speedup_workers4": rows["workers=4"]["speedup_vs_serial"],
        "equivalent": True,
        "phase_totals_virtual": {
            name: round(value, 4)
            for name, value in profiled.stats.phase_totals().items()
        },
        "parallel_summary": {
            name: round(value, 4)
            for name, value in profiled.stats.parallel_summary().items()
        },
    }


def bench_fig9(quick: bool) -> dict:
    """The Figure 1 four-query family (independent, C2)."""
    cardinality = 300 if quick else 1500
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=0.1, seed=23
    )
    workload = workload_of_size(4, "C2")
    contracts = {q.name: c2(scale=300.0) for q in workload}
    out = time_workers(pair, workload, contracts)
    out["scenario"] = {
        "figure": "9",
        "distribution": "independent",
        "contract_class": "C2",
        "cardinality": cardinality,
        "queries": len(workload.queries),
    }
    return out


def bench_fig11(quick: bool) -> dict:
    """The 11-query subspace workload — the 2x acceptance scenario."""
    cardinality = 300 if quick else 3000
    selectivity = 0.05 if quick else 0.15
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=selectivity, seed=23
    )
    workload = subspace_workload(4, priority_scheme="uniform")
    contracts = {q.name: c2(scale=300.0) for q in workload}
    out = time_workers(pair, workload, contracts)
    out["scenario"] = {
        "figure": "11",
        "distribution": "independent",
        "contract_class": "C2",
        "cardinality": cardinality,
        "selectivity": selectivity,
        "queries": len(workload.queries),
    }
    return out


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cardinalities (CI smoke run; skips the 2x gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_parallel.json",
        help="output JSON path (default: repo-root BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    fig9 = bench_fig9(args.quick)
    fig11 = bench_fig11(args.quick)
    report = {
        "bench": "parallel_scaling",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "runs_per_setting": RUNS_PER_SETTING,
        "fig9_figure1_c2": fig9,
        "fig11_subspace_c2": fig11,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for label, cell in (("Figure 9", fig9), ("Figure 11", fig11)):
        scenario = cell["scenario"]
        print(
            f"{label} ({scenario['queries']} queries, "
            f"{scenario['cardinality']} rows):"
        )
        for setting, row in cell["settings"].items():
            print(
                f"  {setting:10s} wall={row['wall_s']:8.2f}s  "
                f"speedup={row['speedup_vs_serial']:.2f}x"
            )
    print(f"cpu_count={report['cpu_count']}  wrote {args.out}")
    if not args.quick and fig11["speedup_workers4"] < 2.0:
        print("WARNING: fig11 workers=4 speedup below the 2x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
