#!/usr/bin/env python
"""Performance-trajectory harness for the batch engine & scheduler cache.

Times the Figure 9 (independent, C2) workload and a Figure 11-style
workload-size sweep under the four ablation modes of the execution engine,
plus a cardinality scale sweep (1x/4x/16x) of the production engine that
tracks throughput headroom toward the paper's N = 500 K regime:

* ``batch+cache``   — batch skyline insertion + incremental scheduler (default)
* ``scalar+cache``  — per-tuple insertion, incremental scheduler
* ``batch+naive``   — batch insertion, full benefit rescan per iteration
* ``scalar+naive``  — the all-scalar naive baseline

All four modes are semantically identical by construction; the harness
*verifies* that every mode reports the same identity sets, charges the same
skyline-comparison counts, and follows the same region schedule before it
reports any timing, then writes machine-readable results (wall time,
comparisons, speedups) to ``BENCH_perf.json`` so future PRs can track
regressions.

Run directly (not under pytest)::

    python benchmarks/bench_perf_trajectory.py           # full sizes
    python benchmarks/bench_perf_trajectory.py --quick   # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.config import (  # noqa: E402
    ExperimentConfig,
    experiment_for,
    scale_factor,
)
from repro.bench.figures import workload_of_size  # noqa: E402
from repro.bench.runner import (  # noqa: E402
    calibrated_contracts,
    make_pair,
    make_workload,
    reference_time,
)
from repro.core import CAQE  # noqa: E402

#: Ablation modes as CAQEConfig overrides, slowest-baseline last.
MODES = {
    "batch+cache": {},
    "scalar+cache": {"enable_batch_insert": False},
    "batch+naive": {"enable_scheduler_cache": False},
    "scalar+naive": {
        "enable_batch_insert": False,
        "enable_scheduler_cache": False,
    },
}


def _quick_cardinality() -> int:
    """Quick-mode base cardinality; still honours ``REPRO_SCALE``.

    The CI smoke jobs run ``--quick`` under ``REPRO_SCALE`` overrides, so
    the quick base must scale with the environment or every scaled smoke
    run would silently measure the same 300-row workload.
    """
    return int(300 * scale_factor())


def _time_modes(pair, workload, contracts, config: ExperimentConfig) -> dict:
    """Run every ablation mode once; verify equivalence; report timings."""
    rows = {}
    reference = None
    for mode, overrides in MODES.items():
        caqe = CAQE(replace(config.caqe, **overrides))
        start = time.perf_counter()
        result = caqe.run(pair.left, pair.right, workload, contracts)
        wall = time.perf_counter() - start
        if reference is None:
            reference = result
        else:
            if result.reported != reference.reported:
                raise AssertionError(f"{mode}: reported identity sets differ")
            if (
                result.stats.skyline_comparisons
                != reference.stats.skyline_comparisons
            ):
                raise AssertionError(f"{mode}: charged comparison counts differ")
            if result.stats.region_trace != reference.stats.region_trace:
                raise AssertionError(f"{mode}: region schedule differs")
        rows[mode] = {
            "wall_s": round(wall, 4),
            "skyline_comparisons": result.stats.skyline_comparisons,
            "virtual_time": result.stats.elapsed,
            "regions_processed": result.stats.regions_processed,
            "average_satisfaction": round(result.average_satisfaction(), 6),
        }
    fastest = rows["batch+cache"]["wall_s"]
    for mode, row in rows.items():
        row["speedup_vs_mode"] = round(row["wall_s"] / max(fastest, 1e-9), 2)
    return {
        "modes": rows,
        "speedup": round(
            rows["scalar+naive"]["wall_s"] / max(fastest, 1e-9), 2
        ),
        "equivalent": True,
    }


def bench_fig9_cell(quick: bool) -> dict:
    """The Figure 9 independent / C2 cell under all four modes."""
    config = experiment_for("independent")
    if quick:
        config = replace(config, cardinality=_quick_cardinality())
    workload = make_workload(config, "C2")
    pair = make_pair(config)
    t_ref = reference_time(pair, workload, config)
    contracts = calibrated_contracts("C2", workload, t_ref)
    out = _time_modes(pair, workload, contracts, config)
    out["scenario"] = {
        "figure": "9b",
        "distribution": config.distribution,
        "contract_class": "C2",
        "cardinality": config.cardinality,
        "queries": len(workload.queries),
    }
    return out


def bench_fig11_sweep(quick: bool) -> "list[dict]":
    """Figure 11-style workload-size sweep (C2, independent)."""
    config = experiment_for("independent")
    if quick:
        config = replace(config, cardinality=_quick_cardinality())
        sizes = (3, 6)
    else:
        sizes = (3, 6, 11)
    pair = make_pair(config)
    single = workload_of_size(1, "C2", config.dims)
    fixed_t_ref = 3.0 * reference_time(pair, single, config)
    sweep = []
    for size in sizes:
        workload = workload_of_size(size, "C2", config.dims)
        contracts = calibrated_contracts("C2", workload, fixed_t_ref)
        cell = _time_modes(pair, workload, contracts, config)
        cell["scenario"] = {
            "figure": "11",
            "distribution": config.distribution,
            "contract_class": "C2",
            "cardinality": config.cardinality,
            "queries": size,
        }
        sweep.append(cell)
    return sweep


def bench_scale_sweep(quick: bool) -> "list[dict]":
    """Scale headroom: the fig9 cell at growing cardinality multipliers.

    Runs ``batch+cache`` only — the ablation corners are already
    equivalence-checked at the base cardinality by the fig9 cell, and
    the scalar baselines would dominate the harness wall at 16x.  Each
    cell reports throughput relative to the 1x cell from the *same run*,
    so the gate can catch superlinear blow-ups (a flat-array regression
    shows up as falling relative throughput long before absolute wall
    times mean anything across machines).

    Calibration: the blocking JFSL reference run is itself superlinear
    in cardinality (it materialises the whole join into one skyline
    batch), so re-running it per scale would time the *baseline*, not
    the engine.  The sweep calibrates ``T_ref`` once at the 1x cell and
    scales it linearly with cardinality — deterministic, cheap, and the
    contract regime stays comparable across cells.
    """
    base = experiment_for("independent")
    if quick:
        base = replace(base, cardinality=_quick_cardinality())
    scales = (1, 4) if quick else (1, 4, 16)
    sweep = []
    base_throughput = None
    base_t_ref = None
    for scale in scales:
        config = replace(base, cardinality=base.cardinality * scale)
        workload = make_workload(config, "C2")
        pair = make_pair(config)
        if base_t_ref is None:
            base_t_ref = reference_time(pair, workload, config)
        contracts = calibrated_contracts("C2", workload, base_t_ref * scale)
        start = time.perf_counter()
        result = CAQE(config.caqe).run(
            pair.left, pair.right, workload, contracts
        )
        wall = time.perf_counter() - start
        throughput = config.cardinality / max(wall, 1e-9)
        if base_throughput is None:
            base_throughput = throughput
        sweep.append(
            {
                "scale": scale,
                "cardinality": config.cardinality,
                "wall_s": round(wall, 4),
                "throughput_rows_s": round(throughput, 1),
                "relative_throughput": round(throughput / base_throughput, 3),
                "skyline_comparisons": result.stats.skyline_comparisons,
                "virtual_time": result.stats.elapsed,
                "regions_processed": result.stats.regions_processed,
                "average_satisfaction": round(
                    result.average_satisfaction(), 6
                ),
            }
        )
    return sweep


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cardinalities and fewer sweep points (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json",
        help="output JSON path (default: repo-root BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    fig9 = bench_fig9_cell(args.quick)
    fig11 = bench_fig11_sweep(args.quick)
    scale_sweep = bench_scale_sweep(args.quick)
    report = {
        "bench": "perf_trajectory",
        "quick": args.quick,
        "repro_scale": scale_factor(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fig9_independent_c2": fig9,
        "fig11_size_sweep": fig11,
        "scale_sweep": scale_sweep,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"Figure 9 independent/C2 ({fig9['scenario']['cardinality']} rows):")
    for mode, row in fig9["modes"].items():
        print(
            f"  {mode:13s} wall={row['wall_s']:8.2f}s  "
            f"comparisons={row['skyline_comparisons']}"
        )
    print(f"  speedup (batch+cache vs scalar+naive): {fig9['speedup']}x")
    for cell in fig11:
        queries = cell["scenario"]["queries"]
        print(
            f"Figure 11 sweep |S_Q|={queries}: speedup {cell['speedup']}x "
            f"(naive {cell['modes']['scalar+naive']['wall_s']:.2f}s -> "
            f"full {cell['modes']['batch+cache']['wall_s']:.2f}s)"
        )
    for cell in scale_sweep:
        print(
            f"Scale sweep {cell['scale']}x (N={cell['cardinality']}): "
            f"wall={cell['wall_s']:.2f}s, "
            f"{cell['throughput_rows_s']:.0f} rows/s "
            f"({cell['relative_throughput']:.2f} of 1x)"
        )
    print(f"wrote {args.out}")
    if not args.quick and fig9["speedup"] < 3.0:
        print("WARNING: fig9 speedup below the 3x acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
