"""Figure 9c: average contract satisfaction, anti-correlated distribution.

Anti-correlated data is the most resource-intensive case: a large share of
the join output is in every skyline, so region-level pruning finds little
to discard and every strategy pays heavy skyline evaluation.

Shape claims asserted:

* CAQE beats the non-sharing progressive baseline (ProgXe+) and the
  blocking JFSL under the deadline- and cardinality-style contracts;
* CAQE and S-JFSL track each other closely (sharing dominates here);
* everyone's satisfaction is far below the correlated case — the
  distribution ordering the paper's Figures 9a-9c encode.

Known deviation (EXPERIMENTS.md): under the soft deadline C3 our
*sequential* baselines (SSMJ, JFSL) salvage the many cheap low-dimensional
queries before the deadline and overtake CAQE; in the paper the baselines'
repeated full-scale joins made even the first query miss its deadline.  We
assert only the relaxed form of that claim.
"""

from repro.bench.figures import figure9
from repro.contracts.presets import CONTRACT_CLASSES

TOLERANCE = 0.02


def bench_fig9c_anticorrelated(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure9("anticorrelated"))
    print()
    print(fig.table())

    # CAQE ahead of the non-sharing techniques wherever deadlines or rates
    # bite (the paper's ~2x claim, relaxed to strict dominance).
    for contract in ("C1", "C2", "C4", "C5"):
        caqe = fig.satisfaction(contract, "CAQE")
        assert caqe >= fig.satisfaction(contract, "JFSL") - TOLERANCE, contract
        assert caqe >= fig.satisfaction(contract, "ProgXe+") - TOLERANCE, contract

    # Sharing strategies track each other (pruning finds little here).
    for contract in CONTRACT_CLASSES:
        caqe = fig.satisfaction(contract, "CAQE")
        sjfsl = fig.satisfaction(contract, "S-JFSL")
        assert abs(caqe - sjfsl) <= 0.1, contract

    # Relaxed C3 claim: CAQE stays within striking distance of the
    # sequential baselines that salvage the cheap queries (see module doc).
    assert fig.satisfaction("C3", "CAQE") >= 0.5 * fig.satisfaction("C3", "SSMJ")


def bench_fig9_distribution_ordering(run_once, benchmark):
    """Across Figures 9a-9c: correlated is the easiest setting and
    anti-correlated the hardest for every strategy (contract C1)."""

    def run():
        return {
            dist: figure9(dist, contract_classes=("C1",))
            for dist in ("correlated", "independent", "anticorrelated")
        }

    results = run_once(benchmark, run)
    for strategy in ("CAQE", "S-JFSL"):
        corr = results["correlated"].satisfaction("C1", strategy)
        anti = results["anticorrelated"].satisfaction("C1", strategy)
        print(f"{strategy}: correlated={corr:.3f} anticorrelated={anti:.3f}")
        assert corr >= anti, strategy
