"""Figures 11a-11b: average satisfaction as the workload grows.

§7.4 restricts the discussion to the independent distribution and the two
strictest contract classes, C2 and C3.  Shape claims:

* every technique degrades as |S_Q| grows;
* CAQE's drop from a single query to the full 11-query workload is the
  smallest among the compared techniques (the paper reports a 20-30%
  drop for CAQE vs up to 85% for the competitors).
"""

from repro.bench.figures import figure11

STRATEGIES = ("CAQE", "ProgXe+", "SSMJ")


def _check(fig):
    sizes = sorted(fig.series)
    # Growing the workload degrades (or at best preserves) satisfaction.
    for strategy in STRATEGIES:
        first = fig.satisfaction(sizes[0], strategy)
        last = fig.satisfaction(sizes[-1], strategy)
        assert first >= last - 0.02, (strategy, first, last)
    # CAQE's relative drop is the smallest (paper: ~20-30% vs up to 85%).
    drops = {s: fig.drop(s) for s in STRATEGIES}
    assert drops["CAQE"] <= min(drops.values()) + 0.02, drops
    # And at the full workload CAQE is on top.
    full = {s: fig.satisfaction(sizes[-1], s) for s in STRATEGIES}
    assert full["CAQE"] >= max(full.values()) - 0.02, full


def bench_fig11a_contract_c2(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure11("C2", strategies=STRATEGIES))
    print()
    print(fig.table())
    print("relative drops:", {s: round(fig.drop(s), 3) for s in STRATEGIES})
    _check(fig)


def bench_fig11b_contract_c3(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure11("C3", strategies=STRATEGIES))
    print()
    print(fig.table())
    print("relative drops:", {s: round(fig.drop(s), 3) for s in STRATEGIES})
    _check(fig)
