"""Figures 10a-10c: join results, skyline comparisons, and execution time.

Reproduces §7.3's comparison for the independent distribution under
contract C2, reporting every statistic relative to CAQE exactly as the
paper's bars do.  Shape claims asserted (DESIGN.md §4):

* CAQE materialises the fewest join results — the shared min-max cuboid
  plan evaluates the join once, and MQLA pruning skips dominated regions,
  while JFSL/SSMJ/ProgXe+ re-join per query (10a);
* CAQE performs fewer skyline comparisons than the non-shared progressive
  and blocking techniques (10b);
* CAQE has the lowest virtual execution time of the multi-query-capable
  strategies and beats JFSL severalfold (10c).
"""

from repro.bench.figures import figure10


def bench_fig10_statistics(run_once, benchmark):
    fig = run_once(benchmark, lambda: figure10("independent"))
    print()
    print(fig.table())

    # 10a: join results.
    for other in ("S-JFSL", "JFSL", "ProgXe+", "SSMJ"):
        assert fig.relative(other, "join_results") > 1.0, other
    assert fig.relative("JFSL", "join_results") > 5.0
    assert fig.relative("ProgXe+", "join_results") > 2.0

    # 10b: skyline comparisons — CAQE below the unshared techniques.
    assert fig.relative("JFSL", "skyline_comparisons") > 1.5
    assert fig.relative("S-JFSL", "skyline_comparisons") > 1.0
    assert fig.relative("ProgXe+", "skyline_comparisons") > 1.0

    # 10c: execution time — CAQE fastest among multi-query strategies and
    # clearly ahead of the per-query baselines.
    assert fig.relative("S-JFSL", "virtual_time") > 1.0
    assert fig.relative("JFSL", "virtual_time") > 1.5
    assert fig.relative("ProgXe+", "virtual_time") > 1.5
    # Our SSMJ implementation is stronger than the paper's (see
    # EXPERIMENTS.md); it must still not beat CAQE by more than a whisker.
    assert fig.relative("SSMJ", "virtual_time") > 0.8
