"""Legacy-compatible entry point.

This repository is configured through ``pyproject.toml``; this shim exists
only so ``pip install -e .`` works on environments whose setuptools/pip
predate PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
