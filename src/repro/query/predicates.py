"""Join predicates.

The paper's workloads (Figure 1, Example 14) use equi-join conditions such
as ``r_country = t_country``; queries may differ in which condition they
use (``JC1`` vs ``JC2``).  A :class:`JoinCondition` names the pair of
attributes being equated so the coarse-level join can build and intersect
per-cell signatures over them (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.relation import Relation


@dataclass(frozen=True, slots=True)
class JoinCondition:
    """Equi-join predicate ``left.left_attr == right.right_attr``."""

    name: str
    left_attr: str
    right_attr: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("join condition needs a non-empty name")
        if not self.left_attr or not self.right_attr:
            raise QueryError(f"join condition {self.name!r} needs both attribute names")

    def validate(self, left: Relation, right: Relation) -> None:
        """Raise :class:`QueryError` unless both sides resolve."""
        if self.left_attr not in left.schema:
            raise QueryError(
                f"{self.name}: attribute {self.left_attr!r} not in relation {left.name!r}"
            )
        if self.right_attr not in right.schema:
            raise QueryError(
                f"{self.name}: attribute {self.right_attr!r} not in relation {right.name!r}"
            )

    def matches(self, left_value, right_value) -> bool:
        """Tuple-level predicate evaluation."""
        return left_value == right_value

    def left_values(self, left: Relation) -> np.ndarray:
        return left.column(self.left_attr)

    def right_values(self, right: Relation) -> np.ndarray:
        return right.column(self.right_attr)

    @classmethod
    def on(cls, attr: str, name: "str | None" = None) -> "JoinCondition":
        """Equi-join on the same attribute name in both relations."""
        return cls(name or f"eq({attr})", attr, attr)


__all__ = ["JoinCondition"]
