"""Query algebra: predicates, mapping functions, preferences, SJ queries, workloads."""

from repro.query.evaluate import (
    ReferenceResult,
    apply_functions,
    hash_join,
    reference_evaluate,
)
from repro.query.mapping import (
    MappingFunction,
    add,
    left_only,
    right_only,
    scaled,
    weighted_sum,
)
from repro.query.operators import PriorityClass, SkylineJoinQuery
from repro.query.predicates import JoinCondition
from repro.query.preference import Preference
from repro.query.selection import AttributeFilter, Op, rows_passing, selection_bitmasks
from repro.query.workload import (
    PRIORITY_SCHEMES,
    Workload,
    assign_priorities,
    random_workload,
    subspace_workload,
)

__all__ = [
    "PRIORITY_SCHEMES",
    "AttributeFilter",
    "JoinCondition",
    "Op",
    "rows_passing",
    "selection_bitmasks",
    "MappingFunction",
    "Preference",
    "PriorityClass",
    "ReferenceResult",
    "SkylineJoinQuery",
    "Workload",
    "add",
    "apply_functions",
    "assign_priorities",
    "hash_join",
    "left_only",
    "random_workload",
    "reference_evaluate",
    "right_only",
    "scaled",
    "subspace_workload",
    "weighted_sum",
]
