"""Per-query selection predicates on the base tables.

Section 4.1 notes that shared plans for selects are established technique
[10, 18] and focuses the paper on the skyline stage; this module supplies
that substrate.  Each query may filter either base table
(``SkylineJoinQuery.left_filters`` / ``right_filters``); the shared
executor evaluates every relation row against every query's filters *once*
(one bitmask per row — precision sharing in the spirit of [18]) and
restricts each join result's query lineage accordingly, so a tuple only
enters the skyline windows of queries whose selections it satisfies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.relation import Relation


class Op(enum.Enum):
    """Comparison operators usable in selections."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    IN = "in"


@dataclass(frozen=True)
class AttributeFilter:
    """One predicate ``attr <op> value`` against a base-table column."""

    attr: str
    op: Op
    value: object

    def __post_init__(self) -> None:
        if not self.attr:
            raise QueryError("filter needs an attribute name")
        if not isinstance(self.op, Op):
            raise QueryError(f"filter op must be an Op, got {self.op!r}")
        if self.op is Op.IN and not isinstance(self.value, (set, frozenset, tuple, list)):
            raise QueryError("Op.IN requires a collection value")

    def evaluate(self, relation: Relation) -> np.ndarray:
        """Boolean mask over the relation's rows."""
        column = relation.column(self.attr)
        if self.op is Op.LT:
            return column < self.value
        if self.op is Op.LE:
            return column <= self.value
        if self.op is Op.GT:
            return column > self.value
        if self.op is Op.GE:
            return column >= self.value
        if self.op is Op.EQ:
            return column == self.value
        if self.op is Op.NE:
            return column != self.value
        return np.isin(column, list(self.value))

    def validate(self, relation: Relation) -> None:
        if self.attr not in relation.schema:
            raise QueryError(
                f"filter attribute {self.attr!r} not in relation {relation.name!r}"
            )

    def __repr__(self) -> str:
        return f"Filter({self.attr} {self.op.value} {self.value!r})"


def rows_passing(
    filters: "tuple[AttributeFilter, ...]", relation: Relation
) -> np.ndarray:
    """Conjunction of ``filters`` as a boolean row mask (all-true if none)."""
    mask = np.ones(relation.cardinality, dtype=bool)
    for f in filters:
        mask &= f.evaluate(relation)
    return mask


def selection_bitmasks(workload, relation: Relation, side: str) -> np.ndarray:
    """Per-row query-lineage bitmask from each query's selections.

    Bit ``i`` of row ``r``'s mask is set iff row ``r`` satisfies workload
    query ``i``'s filters on this ``side``.  Queries without filters accept
    every row.  This is the once-per-row shared evaluation the executor
    and the coarse join consume.
    """
    masks = np.zeros(relation.cardinality, dtype=np.int64)
    for qi, query in enumerate(workload):
        filters = query.left_filters if side == "left" else query.right_filters
        passing = rows_passing(filters, relation)
        masks |= np.where(passing, np.int64(1) << qi, np.int64(0))
    return masks


__all__ = ["AttributeFilter", "Op", "rows_passing", "selection_bitmasks"]
