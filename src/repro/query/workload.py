"""Workloads: ordered sets of skyline-over-join queries with priorities.

A :class:`Workload` is the unit CAQE optimises over (the paper's ``S_Q``).
Besides holding the queries it derives the *shared output space*: the union
of every query's output dimensions, with one agreed mapping function per
dimension — this is the ``d``-dimensional abstraction Section 5 builds the
multi-query output space over.

:func:`subspace_workload` builds the benchmark family used throughout the
paper's evaluation: queries identical except for their skyline dimensions.
With 4 output dimensions and subset sizes 2–4 it yields exactly
``C(4,2) + C(4,3) + C(4,4) = 11`` queries, matching ``|S_Q| = 11``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import QueryError
from repro.query.mapping import MappingFunction, add
from repro.query.operators import SkylineJoinQuery
from repro.query.predicates import JoinCondition
from repro.query.preference import Preference
from repro.relation import Relation

PRIORITY_SCHEMES = ("dims_asc", "dims_desc", "uniform")


class Workload:
    """An immutable, validated collection of skyline-over-join queries."""

    def __init__(self, queries: "Sequence[SkylineJoinQuery]"):
        items = tuple(queries)
        if not items:
            raise QueryError("a workload needs at least one query")
        names = [q.name for q in items]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate query names in workload: {names}")
        self._queries = items
        self._by_name = {q.name: q for q in items}
        self._function_universe = self._build_function_universe(items)

    @staticmethod
    def _build_function_universe(
        queries: "tuple[SkylineJoinQuery, ...]",
    ) -> "dict[str, MappingFunction]":
        universe: dict[str, MappingFunction] = {}
        for query in queries:
            for fn in query.functions:
                existing = universe.get(fn.output)
                if existing is None:
                    universe[fn.output] = fn
                elif (
                    existing.left_inputs != fn.left_inputs
                    or existing.right_inputs != fn.right_inputs
                    or existing.label != fn.label
                ):
                    raise QueryError(
                        f"output dimension {fn.output!r} is produced by conflicting "
                        f"mapping functions ({existing.name} vs {fn.name}); shared "
                        "output-space processing requires one function per dimension"
                    )
        return universe

    # ------------------------------------------------------------------ #
    @property
    def queries(self) -> "tuple[SkylineJoinQuery, ...]":
        return self._queries

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    def __getitem__(self, name: str) -> SkylineJoinQuery:
        try:
            return self._by_name[name]
        except KeyError:
            raise QueryError(f"no query named {name!r} in workload") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(q.name for q in self._queries)

    @property
    def output_dims(self) -> tuple[str, ...]:
        """Union of all queries' output dims, in first-seen order."""
        seen: dict[str, None] = {}
        for query in self._queries:
            for name in query.output_names:
                seen.setdefault(name, None)
        return tuple(seen)

    @property
    def skyline_dims(self) -> tuple[str, ...]:
        """Union of all queries' *skyline* dims, in output-dim order."""
        used = {d for q in self._queries for d in q.preference.dims}
        return tuple(d for d in self.output_dims if d in used)

    def function_for(self, output: str) -> MappingFunction:
        try:
            return self._function_universe[output]
        except KeyError:
            raise QueryError(f"no mapping function produces {output!r}") from None

    @property
    def join_conditions(self) -> "tuple[JoinCondition, ...]":
        seen: dict[str, JoinCondition] = {}
        for query in self._queries:
            seen.setdefault(query.join_condition.name, query.join_condition)
        return tuple(seen.values())

    def queries_with_join(self, condition_name: str) -> "tuple[SkylineJoinQuery, ...]":
        return tuple(
            q for q in self._queries if q.join_condition.name == condition_name
        )

    def by_priority(self) -> "tuple[SkylineJoinQuery, ...]":
        """Queries ordered highest priority first (competitors' run order)."""
        return tuple(sorted(self._queries, key=lambda q: -q.priority))

    def validate(self, left: Relation, right: Relation) -> None:
        for query in self._queries:
            query.validate(left, right)

    def with_priorities(self, priorities: "dict[str, float]") -> "Workload":
        return Workload(
            [q.with_priority(priorities.get(q.name, q.priority)) for q in self._queries]
        )

    def subset(self, names: Iterable[str]) -> "Workload":
        return Workload([self[n] for n in names])

    def __repr__(self) -> str:
        return f"Workload({', '.join(self.names)})"


def assign_priorities(
    queries: "Sequence[SkylineJoinQuery]",
    scheme: str,
) -> "list[SkylineJoinQuery]":
    """Deterministic priority assignment used by the experiments (§7.2).

    * ``dims_asc``  — more skyline dimensions => higher priority (C1/C2 runs);
    * ``dims_desc`` — fewer skyline dimensions => higher priority (C3/C4 runs);
    * ``uniform``   — priorities spread evenly over [0.05, 1.0] (C5 runs).
    """
    if scheme not in PRIORITY_SCHEMES:
        raise QueryError(f"unknown priority scheme {scheme!r}; expected {PRIORITY_SCHEMES}")
    n = len(queries)
    if n == 1:
        return [queries[0].with_priority(1.0)]
    if scheme == "uniform":
        return [
            q.with_priority(round(0.05 + 0.95 * i / (n - 1), 4))
            for i, q in enumerate(queries)
        ]
    ordered = sorted(
        range(n),
        key=lambda i: (len(queries[i].preference), queries[i].name),
        reverse=(scheme == "dims_desc"),
    )
    # ordered[0] gets the LOWEST priority; ranks spread over [0.05, 1.0].
    out: list[SkylineJoinQuery] = list(queries)
    for rank, qi in enumerate(ordered):
        out[qi] = queries[qi].with_priority(round(0.05 + 0.95 * rank / (n - 1), 4))
    return out


def subspace_workload(
    dims: int = 4,
    *,
    min_size: int = 2,
    max_size: "int | None" = None,
    join_attr: str = "jc1",
    priority_scheme: str = "uniform",
    measure_prefix: str = "m",
    dim_prefix: str = "d",
) -> Workload:
    """The paper's benchmark workload: one query per dimension subset.

    Every query joins on ``join_attr`` and computes output dimension ``d_i``
    as ``R.m_i + T.m_i``; queries differ only in which subset of the output
    dimensions their skyline preference ranges over (Section 7.1: "queries
    that differ in their skyline dimensions").
    """
    if dims < 1:
        raise QueryError(f"dims must be >= 1, got {dims}")
    max_size = dims if max_size is None else max_size
    if not 1 <= min_size <= max_size <= dims:
        raise QueryError(f"invalid subset sizes: min={min_size} max={max_size} dims={dims}")
    condition = JoinCondition.on(join_attr, name="JC1")
    functions = tuple(
        add(f"{measure_prefix}{i + 1}", f"{measure_prefix}{i + 1}", f"{dim_prefix}{i + 1}")
        for i in range(dims)
    )
    dim_names = tuple(f"{dim_prefix}{i + 1}" for i in range(dims))
    queries: list[SkylineJoinQuery] = []
    for size in range(min_size, max_size + 1):
        for combo in combinations(range(dims), size):
            pref = Preference(tuple(dim_names[i] for i in combo))
            queries.append(
                SkylineJoinQuery(
                    name=f"Q{len(queries) + 1}",
                    join_condition=condition,
                    functions=functions,
                    preference=pref,
                )
            )
    return Workload(assign_priorities(queries, priority_scheme))


def random_workload(
    query_count: int,
    dims: int = 4,
    *,
    join_attrs: "tuple[str, ...]" = ("jc1",),
    filter_probability: float = 0.0,
    measure_prefix: str = "m",
    dim_prefix: str = "d",
    seed=None,
) -> Workload:
    """A randomized workload for robustness/fuzz testing.

    Queries draw a random non-empty skyline subspace, a random join
    condition from ``join_attrs``, a uniform priority, and (with
    ``filter_probability``) a random range filter on one measure column of
    one side.  Deterministic under ``seed``.
    """
    from repro.query.selection import AttributeFilter, Op
    from repro.rng import ensure_rng

    if query_count < 1:
        raise QueryError(f"query_count must be >= 1, got {query_count}")
    if dims < 1:
        raise QueryError(f"dims must be >= 1, got {dims}")
    if not 0.0 <= filter_probability <= 1.0:
        raise QueryError("filter_probability must be in [0, 1]")
    rng = ensure_rng(seed)
    conditions = {
        attr: JoinCondition.on(attr, name=f"JC:{attr}") for attr in join_attrs
    }
    functions = tuple(
        add(f"{measure_prefix}{i + 1}", f"{measure_prefix}{i + 1}", f"{dim_prefix}{i + 1}")
        for i in range(dims)
    )
    dim_names = tuple(f"{dim_prefix}{i + 1}" for i in range(dims))
    queries: list[SkylineJoinQuery] = []
    for qi in range(query_count):
        size = int(rng.integers(1, dims + 1))
        chosen = sorted(rng.choice(dims, size=size, replace=False).tolist())
        pref = Preference(tuple(dim_names[i] for i in chosen))
        attr = join_attrs[int(rng.integers(0, len(join_attrs)))]
        left_filters: tuple = ()
        right_filters: tuple = ()
        if rng.random() < filter_probability:
            column = f"{measure_prefix}{int(rng.integers(1, dims + 1))}"
            threshold = float(1.0 + rng.random() * 99.0)
            op = Op.LE if rng.random() < 0.5 else Op.GE
            predicate = (AttributeFilter(column, op, threshold),)
            if rng.random() < 0.5:
                left_filters = predicate
            else:
                right_filters = predicate
        queries.append(
            SkylineJoinQuery(
                name=f"Q{qi + 1}",
                join_condition=conditions[attr],
                functions=functions,
                preference=pref,
                priority=round(float(rng.random()), 4),
                left_filters=left_filters,
                right_filters=right_filters,
            )
        )
    return Workload(queries)


__all__ = [
    "PRIORITY_SCHEMES",
    "Workload",
    "assign_priorities",
    "random_workload",
    "subspace_workload",
]
