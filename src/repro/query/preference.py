"""Preferences: which output dimensions a query's skyline ranges over.

Following Section 2.1, a preference ``P = (V, >)`` is a set of attributes
(the *subspace* ``V``) with a strict partial order; as in the paper we fix
the order to Pareto smaller-is-better, so a preference is fully described
by its attribute tuple.  Tuple-level dominance itself lives in
:mod:`repro.skyline.dominance`; this class carries the *named* subspace and
its mapping onto positional vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import QueryError


@dataclass(frozen=True, slots=True)
class Preference:
    """A skyline preference over named output dimensions (smaller preferred)."""

    dims: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise QueryError("a preference needs at least one dimension")
        if len(set(self.dims)) != len(self.dims):
            raise QueryError(f"preference has duplicate dimensions: {self.dims}")

    @classmethod
    def over(cls, *dims: str) -> "Preference":
        return cls(tuple(dims))

    def positions(self, attribute_order: Sequence[str]) -> tuple[int, ...]:
        """Column indices of this preference's dims within ``attribute_order``."""
        order = list(attribute_order)
        try:
            return tuple(order.index(d) for d in self.dims)
        except ValueError as exc:
            raise QueryError(
                f"preference dims {self.dims} not all present in {tuple(order)}"
            ) from exc

    def is_subspace_of(self, other: "Preference | Iterable[str]") -> bool:
        other_dims = other.dims if isinstance(other, Preference) else tuple(other)
        return set(self.dims) <= set(other_dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __contains__(self, dim: object) -> bool:
        return dim in self.dims

    def __repr__(self) -> str:
        return f"Preference({', '.join(self.dims)})"


__all__ = ["Preference"]
