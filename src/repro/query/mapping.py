"""Scalar mapping functions (the PROJECT operator's ``F``, Section 2.2).

A :class:`MappingFunction` ``f_j`` transforms each join tuple into one
output attribute ``x_j`` (Example 5: total trip price from nightly rate,
WiFi charges and air fare).  CAQE's coarse-level look-ahead needs to map
whole *cells* (hyper-rectangles of input values) into output-space bounds,
which is only sound when the function is monotone in every input; the
constructors here therefore record monotonicity, and
:meth:`MappingFunction.apply_bounds` refuses to run for non-monotone
functions.

All built-in factories (:func:`add`, :func:`weighted_sum`, :func:`left_only`,
:func:`right_only`) produce functions that are non-decreasing in each input,
so ``f(lower_L, lower_R) <= f(v_L, v_R) <= f(upper_L, upper_R)`` holds for
any tuple drawn from the cells — exactly the property Section 5.1's output
regions rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import QueryError


@dataclass(frozen=True)
class MappingFunction:
    """One output dimension computed from left- and right-side attributes.

    ``fn`` receives one numpy array per input attribute (left inputs first,
    then right inputs) and must return an array of the same length, which
    lets the executor evaluate a whole batch of join results at once.
    """

    output: str
    left_inputs: tuple[str, ...]
    right_inputs: tuple[str, ...]
    fn: Callable[..., np.ndarray]
    monotone: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if not self.output:
            raise QueryError("mapping function needs an output attribute name")
        if not self.left_inputs and not self.right_inputs:
            raise QueryError(f"mapping function {self.output!r} consumes no attributes")

    @property
    def name(self) -> str:
        return self.label or f"f[{self.output}]"

    def arity(self) -> int:
        return len(self.left_inputs) + len(self.right_inputs)

    def apply(
        self,
        left_columns: "dict[str, np.ndarray]",
        right_columns: "dict[str, np.ndarray]",
    ) -> np.ndarray:
        """Vectorised evaluation over aligned join-result columns."""
        args = [np.asarray(left_columns[a]) for a in self.left_inputs]
        args += [np.asarray(right_columns[a]) for a in self.right_inputs]
        return np.asarray(self.fn(*args))

    def apply_scalar(self, left_row: "dict[str, float]", right_row: "dict[str, float]") -> float:
        """Single-tuple evaluation (used by examples and tests)."""
        args = [np.asarray([left_row[a]], dtype=float) for a in self.left_inputs]
        args += [np.asarray([right_row[a]], dtype=float) for a in self.right_inputs]
        return float(np.asarray(self.fn(*args))[0])

    def apply_bounds(
        self,
        left_lower: "dict[str, float]",
        left_upper: "dict[str, float]",
        right_lower: "dict[str, float]",
        right_upper: "dict[str, float]",
    ) -> tuple[float, float]:
        """Map input-cell bounds to an output interval (coarse join step)."""
        if not self.monotone:
            raise QueryError(
                f"mapping function {self.name} is not monotone; cannot derive "
                "output-region bounds from cell bounds"
            )
        low = self.apply_scalar(left_lower, right_lower)
        high = self.apply_scalar(left_upper, right_upper)
        return (low, high)


def add(left_attr: str, right_attr: str, output: str) -> MappingFunction:
    """``output = left_attr + right_attr`` — the workhorse of the benchmarks."""
    return MappingFunction(
        output=output,
        left_inputs=(left_attr,),
        right_inputs=(right_attr,),
        fn=lambda a, b: a + b,
        monotone=True,
        label=f"{left_attr}+{right_attr}",
    )


def weighted_sum(
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
    weights: Sequence[float],
    output: str,
) -> MappingFunction:
    """Non-negative weighted sum across attributes from both sides."""
    left_attrs = tuple(left_attrs)
    right_attrs = tuple(right_attrs)
    weights = tuple(float(w) for w in weights)
    if len(weights) != len(left_attrs) + len(right_attrs):
        raise QueryError(
            f"weighted_sum for {output!r}: {len(weights)} weights for "
            f"{len(left_attrs) + len(right_attrs)} inputs"
        )
    if any(w < 0 for w in weights):
        raise QueryError(f"weighted_sum for {output!r}: weights must be non-negative")

    def _fn(*arrays: np.ndarray) -> np.ndarray:
        total = np.zeros_like(np.asarray(arrays[0], dtype=float))
        for w, arr in zip(weights, arrays):
            total = total + w * np.asarray(arr, dtype=float)
        return total

    return MappingFunction(
        output=output,
        left_inputs=left_attrs,
        right_inputs=right_attrs,
        fn=_fn,
        monotone=True,
        label=f"wsum[{output}]",
    )


def left_only(attr: str, output: "str | None" = None) -> MappingFunction:
    """Pass a left-side attribute straight through."""
    out = output or attr
    return MappingFunction(
        output=out,
        left_inputs=(attr,),
        right_inputs=(),
        fn=lambda a: a,
        monotone=True,
        label=f"L.{attr}",
    )


def right_only(attr: str, output: "str | None" = None) -> MappingFunction:
    """Pass a right-side attribute straight through."""
    out = output or attr
    return MappingFunction(
        output=out,
        left_inputs=(),
        right_inputs=(attr,),
        fn=lambda a: a,
        monotone=True,
        label=f"R.{attr}",
    )


def scaled(base: MappingFunction, factor: float, offset: float = 0.0) -> MappingFunction:
    """``factor * base + offset`` with ``factor >= 0`` (keeps monotonicity).

    Example 5's ``(price + WiFi) * 10 + air_fare`` is ``scaled(add(...), 10)``
    composed with a further :func:`weighted_sum`.
    """
    if factor < 0:
        raise QueryError("scaled() requires a non-negative factor to stay monotone")
    return MappingFunction(
        output=base.output,
        left_inputs=base.left_inputs,
        right_inputs=base.right_inputs,
        fn=lambda *args: factor * np.asarray(base.fn(*args), dtype=float) + offset,
        monotone=base.monotone,
        label=f"{factor}*{base.name}+{offset}",
    )


__all__ = [
    "MappingFunction",
    "add",
    "left_only",
    "right_only",
    "scaled",
    "weighted_sum",
]
