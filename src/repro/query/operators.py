"""Query specifications: the skyline-over-join operator (Section 2.2).

A :class:`SkylineJoinQuery` bundles the three stages of ``SJ`` — the join
condition ``JC``, the set of scalar mapping functions ``F`` producing output
attributes ``X``, and the skyline preference ``P = (E, >)`` with
``E subset-of X`` — plus the experiment's query priority ``pr_i`` used by
Section 7.1 to order queries in the competitor techniques.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.mapping import MappingFunction
from repro.query.predicates import JoinCondition
from repro.query.preference import Preference
from repro.query.selection import AttributeFilter
from repro.relation import Relation


class PriorityClass(enum.Enum):
    """Section 7.1's three priority bands over ``pr_i`` in [0, 1]."""

    HIGH = "high"        # pr in [0.70, 1.00]
    MEDIUM = "medium"    # pr in [0.40, 0.69]
    LOW = "low"          # pr in [0.00, 0.39]

    @classmethod
    def of(cls, priority: float) -> "PriorityClass":
        if priority >= 0.70:
            return cls.HIGH
        if priority >= 0.40:
            return cls.MEDIUM
        return cls.LOW


@dataclass(frozen=True)
class SkylineJoinQuery:
    """One ``SJ[JC, F, X, P](R, T)`` query with its workload priority.

    ``left_filters`` / ``right_filters`` are optional per-query selection
    predicates on the base tables (the select stage of select-project-join
    sharing, Section 4.1); the shared executor evaluates them once per base
    row and restricts the tuple's query lineage accordingly.
    """

    name: str
    join_condition: JoinCondition
    functions: tuple[MappingFunction, ...]
    preference: Preference
    priority: float = 1.0
    left_filters: "tuple[AttributeFilter, ...]" = ()
    right_filters: "tuple[AttributeFilter, ...]" = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("query needs a non-empty name")
        if not self.functions:
            raise QueryError(f"query {self.name!r} needs at least one mapping function")
        outputs = [f.output for f in self.functions]
        if len(set(outputs)) != len(outputs):
            raise QueryError(f"query {self.name!r} has duplicate output attributes: {outputs}")
        missing = set(self.preference.dims) - set(outputs)
        if missing:
            raise QueryError(
                f"query {self.name!r}: preference dims {sorted(missing)} are not "
                f"produced by any mapping function (outputs: {outputs})"
            )
        if not 0.0 <= self.priority <= 1.0:
            raise QueryError(f"query {self.name!r}: priority must be in [0, 1]")

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(f.output for f in self.functions)

    @property
    def skyline_dims(self) -> tuple[str, ...]:
        return self.preference.dims

    @property
    def priority_class(self) -> PriorityClass:
        return PriorityClass.of(self.priority)

    def function_for(self, output: str) -> MappingFunction:
        for fn in self.functions:
            if fn.output == output:
                return fn
        raise QueryError(f"query {self.name!r} has no mapping function for {output!r}")

    def validate(self, left: Relation, right: Relation) -> None:
        """Check every referenced attribute resolves against the base tables."""
        self.join_condition.validate(left, right)
        for f in self.left_filters:
            f.validate(left)
        for f in self.right_filters:
            f.validate(right)
        for fn in self.functions:
            for attr in fn.left_inputs:
                if attr not in left.schema:
                    raise QueryError(
                        f"query {self.name!r}: {fn.name} reads {attr!r} "
                        f"missing from {left.name!r}"
                    )
            for attr in fn.right_inputs:
                if attr not in right.schema:
                    raise QueryError(
                        f"query {self.name!r}: {fn.name} reads {attr!r} "
                        f"missing from {right.name!r}"
                    )

    def with_priority(self, priority: float) -> "SkylineJoinQuery":
        return SkylineJoinQuery(
            name=self.name,
            join_condition=self.join_condition,
            functions=self.functions,
            preference=self.preference,
            priority=priority,
            left_filters=self.left_filters,
            right_filters=self.right_filters,
        )

    @property
    def has_filters(self) -> bool:
        return bool(self.left_filters or self.right_filters)

    def __repr__(self) -> str:
        return (
            f"SJ[{self.join_condition.name}, F={[f.name for f in self.functions]}, "
            f"P={list(self.preference.dims)}](pr={self.priority:.2f})"
        )


__all__ = ["PriorityClass", "SkylineJoinQuery"]
