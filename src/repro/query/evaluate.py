"""Reference (ground-truth) evaluation of skyline-over-join queries.

These routines evaluate one query the obvious way — materialise the full
equi-join, apply the mapping functions, run a skyline — and are used as the
correctness oracle for every execution strategy in the package: CAQE and
all baselines must produce exactly this result set per query, whatever
order they produce it in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.mapping import MappingFunction
from repro.query.operators import SkylineJoinQuery
from repro.query.predicates import JoinCondition
from repro.relation import Relation
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter


def hash_join(
    left: Relation,
    right: Relation,
    condition: JoinCondition,
) -> "tuple[np.ndarray, np.ndarray]":
    """All matching ``(left_index, right_index)`` pairs for an equi-join."""
    condition.validate(left, right)
    buckets: dict[object, list[int]] = {}
    for i, value in enumerate(condition.left_values(left)):
        buckets.setdefault(value.item() if hasattr(value, "item") else value, []).append(i)
    left_out: list[int] = []
    right_out: list[int] = []
    for j, value in enumerate(condition.right_values(right)):
        key = value.item() if hasattr(value, "item") else value
        for i in buckets.get(key, ()):
            left_out.append(i)
            right_out.append(j)
    return (np.asarray(left_out, dtype=np.intp), np.asarray(right_out, dtype=np.intp))


def apply_functions(
    functions: "tuple[MappingFunction, ...]",
    left: Relation,
    right: Relation,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
) -> np.ndarray:
    """Evaluate mapping functions over aligned join pairs.

    Returns a ``(len(left_idx), len(functions))`` matrix whose columns follow
    the function order (i.e. the query's ``output_names``).
    """
    if len(left_idx) == 0:
        return np.empty((0, len(functions)))
    left_cols = {
        attr: left.column(attr)[left_idx]
        for fn in functions
        for attr in fn.left_inputs
    }
    right_cols = {
        attr: right.column(attr)[right_idx]
        for fn in functions
        for attr in fn.right_inputs
    }
    columns = [fn.apply(left_cols, right_cols) for fn in functions]
    return np.column_stack(columns).astype(float)


@dataclass(frozen=True)
class ReferenceResult:
    """Ground-truth answer for one query."""

    query: SkylineJoinQuery
    #: Output matrix of *all* join results (columns = query.output_names).
    join_matrix: np.ndarray
    left_idx: np.ndarray
    right_idx: np.ndarray
    #: Row positions (into join_matrix) of the final skyline.
    skyline_rows: tuple[int, ...]

    @property
    def skyline_matrix(self) -> np.ndarray:
        return self.join_matrix[list(self.skyline_rows)]

    @property
    def skyline_pairs(self) -> "set[tuple[int, int]]":
        """Provenance of skyline results as ``(left_row, right_row)`` pairs."""
        return {
            (int(self.left_idx[r]), int(self.right_idx[r])) for r in self.skyline_rows
        }

    @property
    def join_count(self) -> int:
        return len(self.join_matrix)


def reference_evaluate(
    query: SkylineJoinQuery,
    left: Relation,
    right: Relation,
    counter: "ComparisonCounter | None" = None,
) -> ReferenceResult:
    """Select, materialise the join, project, and compute the exact skyline."""
    from repro.query.selection import rows_passing

    query.validate(left, right)
    left_idx, right_idx = hash_join(left, right, query.join_condition)
    if query.has_filters:
        left_ok = rows_passing(query.left_filters, left)
        right_ok = rows_passing(query.right_filters, right)
        keep = left_ok[left_idx] & right_ok[right_idx]
        left_idx, right_idx = left_idx[keep], right_idx[keep]
    matrix = apply_functions(query.functions, left, right, left_idx, right_idx)
    dims = query.preference.positions(query.output_names)
    skyline_rows = tuple(bnl_skyline(matrix, dims=dims, counter=counter)) if len(matrix) else ()
    return ReferenceResult(
        query=query,
        join_matrix=matrix,
        left_idx=left_idx,
        right_idx=right_idx,
        skyline_rows=skyline_rows,
    )


__all__ = ["ReferenceResult", "apply_functions", "hash_join", "reference_evaluate"]
