"""Experiment configurations (Section 7.1's settings).

The paper fixes contract parameters per data distribution in wall-clock
seconds (``t_C1 = t_C3 = 10 s`` correlated, ``40 s`` independent, ``30 min``
anti-correlated) after observing how long each workload takes on their
hardware.  We reproduce the same *calibration discipline* against the
virtual clock: a reference (blocking JFSL) run measures the workload's
virtual completion time ``T_ref``, and each contract class is parameterised
as a fraction of it.  The fractions below put deadlines comfortably within
reach of progressive strategies but ahead of blocking ones — the same
regime the paper's absolute numbers encode.

``REPRO_SCALE`` (environment variable, default 1.0) multiplies the default
cardinalities so the full paper-scale experiment can be requested without
editing code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.caqe import CAQEConfig
from repro.errors import BenchmarkError

#: Figure 9's per-contract priority schemes (Section 7.2): queries with more
#: skyline dimensions get higher priority under C1/C2, fewer under C3/C4,
#: and uniform spread under C5.
PRIORITY_SCHEME_BY_CONTRACT = {
    "C1": "dims_asc",
    "C2": "dims_asc",
    "C3": "dims_desc",
    "C4": "dims_desc",
    "C5": "uniform",
}

#: Contract parameters as fractions of the reference completion time.
#: ``deadline``: C1/C3 deadlines; ``interval``: C4/C5 reporting interval;
#: ``unit``: C3's decay unit and C5's inverse-time scale ("one second").
#: The paper's deadlines sit above CAQE's completion time but below the
#: blocking competitors' (CAQE runs ~24x faster there; Figure 10c).  The
#: pure-Python engines are closer in speed, so the fractions below encode
#: the same *regime* relative to the JFSL reference time rather than the
#: paper's absolute second values.
CALIBRATION = {
    "deadline_fraction": 0.40,
    "interval_fraction": 0.04,
    "unit_fraction": 0.02,
    "log_scale_fraction": 0.01,
    "fraction_per_interval": 0.10,
}


def scale_factor() -> float:
    """The ``REPRO_SCALE`` cardinality multiplier (>= 0.1)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise BenchmarkError(f"REPRO_SCALE must be numeric, got {raw!r}") from None
    return max(value, 0.1)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's data and engine settings."""

    distribution: str
    cardinality: int
    dims: int = 4
    selectivity: float = 0.02
    seed: int = 20140324
    caqe: CAQEConfig = field(default_factory=lambda: CAQEConfig(target_cells=16))

    def scaled(self) -> "ExperimentConfig":
        return replace(self, cardinality=int(self.cardinality * scale_factor()))


#: Default per-distribution experiment sizes.  The paper uses N = 500 K with
#: selectivities down to 1e-4 on a JVM; pure-Python defaults keep the same
#: regime (large join-key domains, so each key matches only a handful of
#: partners) at cardinalities where each figure regenerates in minutes
#: (DESIGN.md §2) — raise REPRO_SCALE to grow them.
DEFAULT_EXPERIMENTS = {
    "correlated": ExperimentConfig(
        "correlated", cardinality=1200, selectivity=0.003
    ),
    "independent": ExperimentConfig(
        "independent", cardinality=1200, selectivity=0.003
    ),
    "anticorrelated": ExperimentConfig(
        "anticorrelated", cardinality=600, selectivity=0.003
    ),
}


def experiment_for(distribution: str) -> ExperimentConfig:
    try:
        return DEFAULT_EXPERIMENTS[distribution].scaled()
    except KeyError:
        raise BenchmarkError(
            f"no default experiment for distribution {distribution!r}"
        ) from None


__all__ = [
    "CALIBRATION",
    "DEFAULT_EXPERIMENTS",
    "ExperimentConfig",
    "PRIORITY_SCHEME_BY_CONTRACT",
    "experiment_for",
    "scale_factor",
]
