"""Experiment runner: data generation, calibration, strategy execution.

One :func:`run_comparison` call reproduces one cell group of Figure 9:
generate the table pair, build the workload with the contract class's
priority scheme, calibrate the contracts against a reference run, execute
every strategy, and collect satisfaction metrics and Figure-10 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import JFSL, make_strategy
from repro.bench.config import (
    CALIBRATION,
    PRIORITY_SCHEME_BY_CONTRACT,
    ExperimentConfig,
)
from repro.contracts import Contract, DeadlineContract, c1, c2, c3, c4, c5
from repro.core.caqe import RunResult
from repro.datagen import TablePair, generate_pair
from repro.errors import BenchmarkError
from repro.query import Workload, subspace_workload


def make_workload(config: ExperimentConfig, contract_class: str) -> Workload:
    scheme = PRIORITY_SCHEME_BY_CONTRACT.get(contract_class, "uniform")
    return subspace_workload(config.dims, priority_scheme=scheme)


def make_pair(config: ExperimentConfig) -> TablePair:
    return generate_pair(
        config.distribution,
        config.cardinality,
        config.dims,
        selectivity=config.selectivity,
        seed=config.seed,
    )


def reference_time(
    pair: TablePair, workload: Workload, config: ExperimentConfig
) -> float:
    """Virtual completion time of the blocking JFSL reference run."""
    dummy = {q.name: DeadlineContract(float("inf")) for q in workload}
    result = JFSL(config.caqe.cost_model).run(pair.left, pair.right, workload, dummy)
    return result.horizon


def calibrated_contracts(
    contract_class: str, workload: Workload, t_ref: float
) -> "dict[str, Contract]":
    """Build one contract per query, parameterised as fractions of T_ref."""
    deadline = CALIBRATION["deadline_fraction"] * t_ref
    interval = CALIBRATION["interval_fraction"] * t_ref
    unit = CALIBRATION["unit_fraction"] * t_ref
    log_scale = CALIBRATION["log_scale_fraction"] * t_ref
    frac = CALIBRATION["fraction_per_interval"]
    builders = {
        "C1": lambda: c1(deadline),
        "C2": lambda: c2(scale=log_scale),
        "C3": lambda: c3(deadline, unit=unit),
        "C4": lambda: c4(fraction=frac, interval=interval),
        "C5": lambda: c5(fraction=frac, interval=interval, time_scale=unit),
    }
    try:
        builder = builders[contract_class]
    except KeyError:
        raise BenchmarkError(f"unknown contract class {contract_class!r}") from None
    return {q.name: builder() for q in workload}


@dataclass
class StrategyOutcome:
    """One strategy's row in a comparison."""

    strategy: str
    average_satisfaction: float
    per_query_satisfaction: "dict[str, float]"
    stats: "dict[str, float]"
    horizon: float


@dataclass
class Comparison:
    """All strategies' outcomes for one (distribution, contract) cell."""

    config: ExperimentConfig
    contract_class: str
    t_ref: float
    outcomes: "dict[str, StrategyOutcome]" = field(default_factory=dict)

    def satisfaction(self, strategy: str) -> float:
        return self.outcomes[strategy].average_satisfaction

    def stat(self, strategy: str, key: str) -> float:
        return self.outcomes[strategy].stats[key]

    def relative_to(self, strategy: str, key: str, base: str = "CAQE") -> float:
        """Figure 10's presentation: a statistic as a multiple of CAQE's."""
        denominator = max(self.stat(base, key), 1e-12)
        return self.stat(strategy, key) / denominator


def run_strategy(
    name: str,
    pair: TablePair,
    workload: Workload,
    contracts: "dict[str, Contract]",
    config: ExperimentConfig,
) -> StrategyOutcome:
    result: RunResult = make_strategy(name, config.caqe).run(
        pair.left, pair.right, workload, contracts
    )
    per_query = {q.name: result.satisfaction(q.name) for q in workload}
    return StrategyOutcome(
        strategy=name,
        average_satisfaction=result.average_satisfaction(),
        per_query_satisfaction=per_query,
        stats=result.stats.summary(),
        horizon=result.horizon,
    )


def run_comparison(
    config: ExperimentConfig,
    contract_class: str,
    strategies: "tuple[str, ...]",
    workload: "Workload | None" = None,
) -> Comparison:
    """Run every strategy on freshly calibrated contracts."""
    pair = make_pair(config)
    workload = workload or make_workload(config, contract_class)
    t_ref = reference_time(pair, workload, config)
    contracts = calibrated_contracts(contract_class, workload, t_ref)
    comparison = Comparison(config=config, contract_class=contract_class, t_ref=t_ref)
    for name in strategies:
        comparison.outcomes[name] = run_strategy(
            name, pair, workload, contracts, config
        )
    return comparison


__all__ = [
    "Comparison",
    "StrategyOutcome",
    "calibrated_contracts",
    "make_pair",
    "make_workload",
    "reference_time",
    "run_comparison",
    "run_strategy",
]
