"""ASCII rendering of experiment tables (what the benches print)."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: "Sequence[str]",
    rows: "Sequence[Sequence[object]]",
    title: "str | None" = None,
) -> str:
    """Render a fixed-width table; floats get three decimals."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_feature_matrix() -> str:
    """Table 3 as shipped."""
    from repro.baselines import feature_matrix

    headers = (
        "Technique",
        "Skyline-over-Join",
        "Multiple Queries",
        "Progressive",
        "Supports User QoS",
    )
    tick = lambda flag: "yes" if flag else "-"  # noqa: E731 - tiny local fmt
    rows = [
        (
            name,
            tick(caps.skyline_over_join),
            tick(caps.multiple_queries),
            tick(caps.progressive),
            tick(caps.supports_qos),
        )
        for name, caps in feature_matrix().items()
    ]
    return render_table(headers, rows, title="Table 3: technique capabilities")


__all__ = ["render_feature_matrix", "render_table"]
