"""Figure/table series builders for the paper's evaluation (Section 7).

Each function regenerates the data behind one figure:

* :func:`figure9`  — average contract satisfaction per contract class and
  strategy for one data distribution (Figures 9a/9b/9c);
* :func:`figure10` — join results, skyline comparisons, and virtual
  execution time of every strategy relative to CAQE (Figures 10a-10c);
* :func:`figure11` — average satisfaction as the workload grows
  (Figures 11a/11b);
* :func:`figure6_sizes` — shared-plan size: min-max cuboid vs full skycube.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import FIGURE_STRATEGIES
from repro.bench.config import ExperimentConfig, experiment_for
from repro.bench.reporting import render_table
from repro.bench.runner import (
    Comparison,
    calibrated_contracts,
    make_pair,
    reference_time,
    run_comparison,
    run_strategy,
)
from repro.contracts.presets import CONTRACT_CLASSES
from repro.plan import build_minmax_cuboid
from repro.query import Workload, subspace_workload
from repro.bench.config import PRIORITY_SCHEME_BY_CONTRACT

#: Figure 10 is reported for the independent distribution under C2 (§7.3).
FIGURE10_CONTRACT = "C2"


@dataclass
class Figure9Result:
    distribution: str
    comparisons: "dict[str, Comparison]" = field(default_factory=dict)

    def satisfaction(self, contract_class: str, strategy: str) -> float:
        return self.comparisons[contract_class].satisfaction(strategy)

    def table(self) -> str:
        classes = [c for c in CONTRACT_CLASSES if c in self.comparisons]
        strategies = sorted(
            {s for comp in self.comparisons.values() for s in comp.outcomes},
            key=lambda s: (FIGURE_STRATEGIES + (s,)).index(s),
        )
        headers = ["Contract", *strategies]
        rows = [
            [cls] + [self.satisfaction(cls, s) for s in strategies]
            for cls in classes
        ]
        return render_table(
            headers,
            rows,
            title=(
                f"Figure 9 ({self.distribution}): average contract "
                "satisfaction per strategy"
            ),
        )


def figure9(
    distribution: str,
    config: "ExperimentConfig | None" = None,
    strategies: "tuple[str, ...]" = FIGURE_STRATEGIES,
    contract_classes: "tuple[str, ...]" = CONTRACT_CLASSES,
) -> Figure9Result:
    config = config or experiment_for(distribution)
    result = Figure9Result(distribution=distribution)
    for contract_class in contract_classes:
        result.comparisons[contract_class] = run_comparison(
            config, contract_class, strategies
        )
    return result


@dataclass
class Figure10Result:
    comparison: Comparison

    METRICS = (
        ("join_results", "Fig 10a: join results"),
        ("skyline_comparisons", "Fig 10b: skyline comparisons"),
        ("virtual_time", "Fig 10c: execution time"),
    )

    def relative(self, strategy: str, metric: str) -> float:
        return self.comparison.relative_to(strategy, metric)

    def table(self) -> str:
        strategies = sorted(
            self.comparison.outcomes,
            key=lambda s: (FIGURE_STRATEGIES + (s,)).index(s),
        )
        headers = ["Metric (relative to CAQE)", *strategies]
        rows = [
            [label] + [self.relative(s, metric) for s in strategies]
            for metric, label in self.METRICS
        ]
        return render_table(
            headers,
            rows,
            title="Figure 10: statistics relative to CAQE "
            f"({self.comparison.config.distribution}, {self.comparison.contract_class})",
        )


def figure10(
    distribution: str = "independent",
    config: "ExperimentConfig | None" = None,
    strategies: "tuple[str, ...]" = FIGURE_STRATEGIES,
) -> Figure10Result:
    config = config or experiment_for(distribution)
    return Figure10Result(run_comparison(config, FIGURE10_CONTRACT, strategies))


@dataclass
class Figure11Result:
    contract_class: str
    distribution: str
    #: workload size -> strategy -> average satisfaction.
    series: "dict[int, dict[str, float]]" = field(default_factory=dict)

    def satisfaction(self, size: int, strategy: str) -> float:
        return self.series[size][strategy]

    def drop(self, strategy: str) -> float:
        """Relative satisfaction drop from the smallest to largest workload."""
        sizes = sorted(self.series)
        first = self.series[sizes[0]][strategy]
        last = self.series[sizes[-1]][strategy]
        if first <= 0:
            return 0.0
        return (first - last) / first

    def table(self) -> str:
        strategies = sorted(next(iter(self.series.values())))
        headers = ["|S_Q|", *strategies]
        rows = [
            [size] + [self.series[size][s] for s in strategies]
            for size in sorted(self.series)
        ]
        return render_table(
            headers,
            rows,
            title=(
                f"Figure 11 ({self.contract_class}, {self.distribution}): "
                "satisfaction vs workload size"
            ),
        )


def workload_of_size(size: int, contract_class: str, dims: int = 4) -> Workload:
    """A diverse sub-workload of the 11-query benchmark family."""
    scheme = PRIORITY_SCHEME_BY_CONTRACT.get(contract_class, "uniform")
    full = subspace_workload(dims, priority_scheme=scheme)
    # Interleave subspace sizes so small workloads stay representative:
    # order queries by (|P| cycling) — Q11 (4-d) first, then a 2-d, etc.
    ordered = sorted(full.queries, key=lambda q: (-len(q.preference), q.name))
    by_size: dict[int, list] = {}
    for q in ordered:
        by_size.setdefault(len(q.preference), []).append(q)
    interleaved = []
    while any(by_size.values()):
        for bucket in sorted(by_size, reverse=True):
            if by_size[bucket]:
                interleaved.append(by_size[bucket].pop(0))
    chosen = [q.name for q in interleaved[:size]]
    return full.subset(chosen)


def figure11(
    contract_class: str,
    sizes: "tuple[int, ...]" = (1, 3, 6, 11),
    distribution: str = "independent",
    config: "ExperimentConfig | None" = None,
    strategies: "tuple[str, ...]" = ("CAQE", "ProgXe+", "SSMJ"),
    headroom: float = 3.0,
) -> Figure11Result:
    """Satisfaction vs workload size (§7.4 restricts to C2/C3, independent).

    The paper keeps the contract parameters *fixed* while growing the
    workload (its deadlines are absolute seconds), so satisfaction can only
    degrade as queries compete.  We therefore calibrate once against the
    single-query reference run — ``headroom`` times its completion time
    stands in for the paper's generously chosen absolute deadlines, which
    every technique meets at |S_Q| = 1 — and reuse the same contracts for
    every workload size.
    """
    config = config or experiment_for(distribution)
    result = Figure11Result(contract_class=contract_class, distribution=distribution)
    pair = make_pair(config)
    single = workload_of_size(1, contract_class, config.dims)
    t_single = reference_time(pair, single, config)
    fixed_t_ref = headroom * t_single
    for size in sizes:
        workload = workload_of_size(size, contract_class, config.dims)
        contracts = calibrated_contracts(contract_class, workload, fixed_t_ref)
        result.series[size] = {
            name: run_strategy(name, pair, workload, contracts, config).average_satisfaction
            for name in strategies
        }
    return result


def figure6_sizes(dims: int = 4) -> "dict[str, int]":
    """Shared-plan sizes: Figure 6's cuboid vs Figure 5's full skycube."""
    from repro.query import (
        JoinCondition,
        Preference,
        SkylineJoinQuery,
        add,
    )

    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, dims + 1))
    figure1 = Workload(
        [
            SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )
    cuboid = build_minmax_cuboid(figure1)
    return {
        "full_skycube": 2 ** dims - 1,
        "min_max_cuboid": len(cuboid),
    }


__all__ = [
    "FIGURE10_CONTRACT",
    "Figure9Result",
    "Figure10Result",
    "Figure11Result",
    "figure6_sizes",
    "figure9",
    "figure10",
    "figure11",
    "workload_of_size",
]
