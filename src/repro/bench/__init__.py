"""Experiment harness: configs, calibration, runners, figure builders."""

from repro.bench.config import (
    CALIBRATION,
    DEFAULT_EXPERIMENTS,
    ExperimentConfig,
    PRIORITY_SCHEME_BY_CONTRACT,
    experiment_for,
    scale_factor,
)
from repro.bench.figures import (
    Figure9Result,
    Figure10Result,
    Figure11Result,
    figure6_sizes,
    figure9,
    figure10,
    figure11,
    workload_of_size,
)
from repro.bench.reporting import render_feature_matrix, render_table
from repro.bench.runner import (
    Comparison,
    StrategyOutcome,
    calibrated_contracts,
    make_pair,
    make_workload,
    reference_time,
    run_comparison,
    run_strategy,
)

__all__ = [
    "CALIBRATION",
    "Comparison",
    "DEFAULT_EXPERIMENTS",
    "ExperimentConfig",
    "Figure10Result",
    "Figure11Result",
    "Figure9Result",
    "PRIORITY_SCHEME_BY_CONTRACT",
    "StrategyOutcome",
    "calibrated_contracts",
    "experiment_for",
    "figure10",
    "figure11",
    "figure6_sizes",
    "figure9",
    "make_pair",
    "make_workload",
    "reference_time",
    "render_feature_matrix",
    "render_table",
    "run_comparison",
    "run_strategy",
    "scale_factor",
    "workload_of_size",
]
