"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro figure9 independent
    python -m repro figure9 correlated --contracts C1 C2
    python -m repro figure10
    python -m repro figure11 C3
    python -m repro table3
    python -m repro cuboid

``REPRO_SCALE`` scales the data sizes (see repro.bench.config).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    figure9,
    figure10,
    figure11,
    figure6_sizes,
    render_feature_matrix,
    render_table,
)
from repro.contracts.presets import CONTRACT_CLASSES
from repro.datagen.distributions import DISTRIBUTIONS


def _cmd_figure9(args) -> None:
    fig = figure9(args.distribution, contract_classes=tuple(args.contracts))
    print(fig.table())


def _cmd_figure10(args) -> None:
    print(figure10(args.distribution).table())


def _cmd_figure11(args) -> None:
    fig = figure11(args.contract, sizes=tuple(args.sizes))
    print(fig.table())
    drops = {s: round(fig.drop(s), 3) for s in sorted(next(iter(fig.series.values())))}
    print(f"relative drops: {drops}")


def _cmd_table3(args) -> None:
    print(render_feature_matrix())


def _cmd_cuboid(args) -> None:
    sizes = figure6_sizes()
    print(
        render_table(
            ("Structure", "Subspaces"),
            [
                ("Figure 5: full skycube", sizes["full_skycube"]),
                ("Figure 6: min-max cuboid", sizes["min_max_cuboid"]),
            ],
            title="Shared-plan sizes (Figure 1 workload)",
        )
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the CAQE paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p9 = sub.add_parser("figure9", help="average contract satisfaction")
    p9.add_argument("distribution", choices=DISTRIBUTIONS)
    p9.add_argument(
        "--contracts", nargs="+", default=list(CONTRACT_CLASSES),
        choices=CONTRACT_CLASSES,
    )
    p9.set_defaults(func=_cmd_figure9)

    p10 = sub.add_parser("figure10", help="join/comparison/time statistics")
    p10.add_argument("--distribution", default="independent", choices=DISTRIBUTIONS)
    p10.set_defaults(func=_cmd_figure10)

    p11 = sub.add_parser("figure11", help="satisfaction vs workload size")
    p11.add_argument("contract", choices=CONTRACT_CLASSES)
    p11.add_argument("--sizes", nargs="+", type=int, default=[1, 3, 6, 11])
    p11.set_defaults(func=_cmd_figure11)

    p3 = sub.add_parser("table3", help="technique feature matrix")
    p3.set_defaults(func=_cmd_table3)

    pc = sub.add_parser("cuboid", help="min-max cuboid vs full skycube sizes")
    pc.set_defaults(func=_cmd_cuboid)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
