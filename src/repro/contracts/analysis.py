"""Contract introspection: curves, ideal pacing, delivery profiles.

Helpers for understanding and debugging contracts — what a utility
function looks like over time, the best satisfaction any execution could
achieve, and how an actual result log paced its deliveries.  Used by the
examples and handy when calibrating new experiments.
"""

from __future__ import annotations

import numpy as np

from repro.contracts.base import Contract
from repro.contracts.cardinality import PercentPerIntervalContract, interval_counts
from repro.contracts.score import ResultLog
from repro.errors import ContractError


def contract_curve(
    contract: Contract,
    horizon: float,
    samples: int = 100,
    total_results: float = 100.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Sample the per-tuple utility over ``[0, horizon]``.

    Returns ``(timestamps, utilities)``.  For cardinality-based contracts
    each sample is scored as a lone result in its interval (the
    most pessimistic single-tuple view).
    """
    if horizon <= 0:
        raise ContractError(f"horizon must be positive, got {horizon}")
    if samples < 2:
        raise ContractError(f"need at least 2 samples, got {samples}")
    ts = np.linspace(0.0, horizon, samples)
    utilities = np.array(
        [contract.utility_at(float(t), total_results) for t in ts]
    )
    return ts, utilities


def ideal_pacing(
    contract: Contract,
    total_results: int,
    horizon: float,
) -> np.ndarray:
    """Timestamps of the contract's *ideal* delivery schedule.

    Time-based contracts want everything as early as possible; interval
    quota contracts want steady pacing that exactly meets the quota.  Used
    as the upper-reference when judging an execution's satisfaction.
    """
    if total_results <= 0:
        return np.empty(0)
    if isinstance(contract, PercentPerIntervalContract):
        per_interval = max(1, int(np.ceil(contract.fraction * total_results)))
        timestamps = []
        interval = 0
        while len(timestamps) < total_results:
            batch = min(per_interval, total_results - len(timestamps))
            midpoint = (interval + 0.5) * contract.interval
            timestamps.extend([midpoint] * batch)
            interval += 1
        return np.asarray(timestamps)
    # Time-decaying contracts: deliver immediately.
    return np.zeros(total_results)


def ideal_satisfaction(
    contract: Contract, total_results: int, horizon: float
) -> float:
    """Best achievable satisfaction for ``total_results`` results."""
    schedule = ideal_pacing(contract, total_results, horizon)
    return contract.satisfaction(schedule, float(total_results), horizon)


def delivery_profile(
    log: ResultLog, interval: float, horizon: "float | None" = None
) -> np.ndarray:
    """Results delivered per wall interval (padded to ``horizon``)."""
    if interval <= 0:
        raise ContractError(f"interval must be positive, got {interval}")
    ts = log.timestamps
    if len(ts) == 0:
        intervals = int(np.ceil((horizon or 0.0) / interval))
        return np.zeros(max(intervals, 0), dtype=int)
    _, counts = interval_counts(ts, interval)
    if horizon is not None:
        needed = int(np.ceil(horizon / interval))
        if needed > len(counts):
            counts = np.concatenate([counts, np.zeros(needed - len(counts), int)])
    return counts


def regret(
    contract: Contract,
    log: ResultLog,
    total_results: "int | None" = None,
    horizon: "float | None" = None,
) -> float:
    """Gap between the ideal and the achieved satisfaction, in [0, 1]."""
    total = int(total_results if total_results is not None else len(log))
    achieved = contract.satisfaction(log.timestamps, float(total), horizon)
    best = ideal_satisfaction(contract, total, horizon or log.completion_time)
    return max(0.0, best - achieved)


__all__ = [
    "contract_curve",
    "delivery_profile",
    "ideal_pacing",
    "ideal_satisfaction",
    "regret",
]
