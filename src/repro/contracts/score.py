"""Result logs and contract-satisfaction scoring (Definitions 3–5).

Every execution strategy in this package reports its progressive results
into a :class:`ResultLog` per query (Definition 3's ``Result(E, Q, ...)``),
and the experiment harness scores logs against contracts:

* :func:`pscore` — Equation 7, the summed per-tuple utility;
* :func:`workload_pscore` — Equation 6, the optimisation objective;
* per-query ``satisfaction`` in ``[0, 1]`` — what Figures 9 and 11 plot.

:class:`SatisfactionTracker` is the *run-time* counterpart used inside the
executor's feedback loop (Section 6): it maintains the running satisfaction
metric ``v(Q_i, t_j)`` of each query from the results reported so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.contracts.base import Contract
from repro.errors import ContractError
from repro.query.workload import Workload


@dataclass(frozen=True, slots=True)
class ResultEvent:
    """One progressive result: identity plus its (virtual) report time."""

    key: Hashable
    timestamp: float


class ResultLog:
    """Time-ordered log of one query's reported results."""

    __slots__ = ("query_name", "_events", "_times")

    def __init__(self, query_name: str):
        self.query_name = query_name
        self._events: list[ResultEvent] = []
        self._times: list[float] = []

    def report(self, key: Hashable, timestamp: float) -> None:
        if self._events and timestamp < self._events[-1].timestamp:
            raise ContractError(
                f"result log for {self.query_name!r}: non-monotonic timestamp "
                f"{timestamp} after {self._events[-1].timestamp}"
            )
        self._events.append(ResultEvent(key=key, timestamp=float(timestamp)))
        self._times.append(float(timestamp))

    def report_batch(self, keys, timestamp: float) -> None:
        for key in keys:
            self.report(key, timestamp)

    @property
    def events(self) -> "tuple[ResultEvent, ...]":
        return tuple(self._events)

    @property
    def keys(self) -> "list[Hashable]":
        return [e.key for e in self._events]

    @property
    def timestamps(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def completion_time(self) -> float:
        return self._events[-1].timestamp if self._events else 0.0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"ResultLog({self.query_name!r}, n={len(self._events)})"


def pscore(log: ResultLog, contract: Contract, total_results: "float | None" = None) -> float:
    """Equation 7: progressiveness score of one query's execution."""
    total = float(total_results) if total_results is not None else float(len(log))
    return contract.pscore(log.timestamps, total)


def satisfaction(
    log: ResultLog,
    contract: Contract,
    total_results: "float | None" = None,
    horizon: "float | None" = None,
) -> float:
    """Normalised per-query satisfaction in [0, 1]."""
    total = float(total_results) if total_results is not None else float(len(log))
    return contract.satisfaction(log.timestamps, total, horizon)


@dataclass
class WorkloadScore:
    """Scores for a full workload execution (one row of Figure 9)."""

    per_query_pscore: "dict[str, float]"
    per_query_satisfaction: "dict[str, float]"

    @property
    def total_pscore(self) -> float:
        """Equation 6's objective value."""
        return float(sum(self.per_query_pscore.values()))

    @property
    def average_satisfaction(self) -> float:
        values = list(self.per_query_satisfaction.values())
        return float(np.mean(values)) if values else 0.0


def score_workload(
    workload: Workload,
    contracts: "dict[str, Contract]",
    logs: "dict[str, ResultLog]",
    totals: "dict[str, float] | None" = None,
    horizon: "float | None" = None,
) -> WorkloadScore:
    """Score every query's log against its contract."""
    per_pscore: dict[str, float] = {}
    per_sat: dict[str, float] = {}
    for query in workload:
        try:
            contract = contracts[query.name]
        except KeyError:
            raise ContractError(f"no contract supplied for query {query.name!r}") from None
        log = logs.get(query.name) or ResultLog(query.name)
        total = None if totals is None else totals.get(query.name)
        per_pscore[query.name] = pscore(log, contract, total)
        per_sat[query.name] = satisfaction(log, contract, total, horizon)
    return WorkloadScore(per_query_pscore=per_pscore, per_query_satisfaction=per_sat)


class SatisfactionTracker:
    """Run-time satisfaction ``v(Q_i, t_j)`` per query (Section 6).

    The executor records each progressive report here; the optimizer's
    feedback step (Equation 11) reads the current per-query metric.  Result
    totals are the *estimated* final sizes because the true totals are
    unknown mid-flight.
    """

    def __init__(
        self,
        contracts: "dict[str, Contract]",
        estimated_totals: "dict[str, float]",
    ):
        self._contracts = dict(contracts)
        self._estimates = {
            name: max(float(value), 1.0) for name, value in estimated_totals.items()
        }
        self._logs: dict[str, ResultLog] = {
            name: ResultLog(name) for name in self._contracts
        }
        # Satisfaction is a pure function of the (append-only) log and the
        # fixed estimate, so a (length, value) memo per query is exact.
        self._sat_cache: dict[str, tuple[int, float]] = {}

    def record(self, query_name: str, keys, timestamp: float) -> None:
        self._logs[query_name].report_batch(keys, timestamp)

    def log(self, query_name: str) -> ResultLog:
        return self._logs[query_name]

    def reported_count(self, query_name: str) -> int:
        return len(self._logs[query_name])

    def runtime_satisfaction(self, query_name: str) -> float:
        log = self._logs[query_name]
        if len(log) == 0:
            return 0.0
        cached = self._sat_cache.get(query_name)
        if cached is not None and cached[0] == len(log):
            return cached[1]
        value = self._contracts[query_name].satisfaction(
            log.timestamps, self._estimates[query_name]
        )
        self._sat_cache[query_name] = (len(log), value)
        return value

    def snapshot(self) -> "dict[str, float]":
        return {name: self.runtime_satisfaction(name) for name in self._contracts}


__all__ = [
    "ResultEvent",
    "ResultLog",
    "SatisfactionTracker",
    "WorkloadScore",
    "pscore",
    "satisfaction",
    "score_workload",
]
