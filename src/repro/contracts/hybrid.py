"""Hybrid contracts (Section 3.3; contract C5 of Table 2).

A hybrid contract combines a cardinality-based and a time-based utility
function; assuming independence (as the paper does for ease of
elaboration), the combined per-tuple utility is their product
(Equation 5).
"""

from __future__ import annotations

import numpy as np

from repro.contracts.base import Contract, as_timestamp_array
from repro.errors import ContractError


class InverseTimeContract(Contract):
    """The ``v_time = 1 / ts`` factor Table 2 uses inside C5 (clamped to 1)."""

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ContractError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.name = f"invtime(scale={self.scale:g})"

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps) / self.scale
        with np.errstate(divide="ignore"):
            inv = 1.0 / np.maximum(ts, 1e-12)
        return np.clip(inv, 0.0, 1.0)


class HybridContract(Contract):
    """Equation 5: per-tuple product of a cardinality and a time contract."""

    def __init__(self, cardinality: Contract, time: Contract, name: "str | None" = None):
        if not isinstance(cardinality, Contract) or not isinstance(time, Contract):
            raise ContractError("hybrid contract needs two Contract components")
        self.cardinality = cardinality
        self.time = time
        self.name = name or f"hybrid({cardinality.name} * {time.name})"

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        return self.cardinality.tuple_utilities(ts, total_results) * self.time.tuple_utilities(
            ts, total_results
        )

    def batch_utility(
        self,
        timestamp: float,
        batch_size: float,
        total_estimate: float,
    ) -> float:
        if batch_size <= 0:
            return 0.0
        time_factor = self.time.utility_at(timestamp, max(total_estimate, 1.0))
        return time_factor * self.cardinality.batch_utility(
            timestamp, batch_size, total_estimate
        )

    def batch_utilities(
        self,
        timestamps: np.ndarray,
        batch_sizes: np.ndarray,
        total_estimate: float,
    ) -> np.ndarray:
        ts = np.asarray(timestamps, dtype=float)
        total = max(float(total_estimate), 1.0)
        time_factors = self.time.tuple_utilities(ts, total)
        return time_factors * self.cardinality.batch_utilities(
            ts, batch_sizes, total_estimate
        )


__all__ = ["HybridContract", "InverseTimeContract"]
