"""The five contract classes of the experimental study (Table 2).

Factories for C1–C5 with the paper's tunable parameters (``t_C1``,
``t_C3``, and the interval length ``n_{i,j}``).  The paper calibrates these
per data distribution — e.g. ``t_C1 = t_C3 = 10 s`` for correlated data and
30 minutes for anti-correlated (Section 7.2); our virtual-clock equivalents
live in :mod:`repro.bench.config`.
"""

from __future__ import annotations

from repro.contracts.base import Contract
from repro.contracts.cardinality import PercentPerIntervalContract
from repro.contracts.hybrid import HybridContract, InverseTimeContract
from repro.contracts.time_based import (
    DeadlineContract,
    LogDecayContract,
    SoftDeadlineContract,
)
from repro.errors import ContractError

CONTRACT_CLASSES = ("C1", "C2", "C3", "C4", "C5")


def c1(deadline: float) -> Contract:
    """C1: hard deadline — utility 1 up to ``t_C1``, 0 after."""
    return DeadlineContract(deadline)


def c2(scale: float = 1.0) -> Contract:
    """C2: logarithmic decay ``1 / log(ts)`` (the strictest model)."""
    return LogDecayContract(scale)


def c3(deadline: float, unit: float = 1.0) -> Contract:
    """C3: soft deadline — 1 up to ``t_C3``, then ``1 / (ts - t_C3)``."""
    return SoftDeadlineContract(deadline, unit=unit)


def c4(fraction: float = 0.1, interval: float = 1.0) -> Contract:
    """C4: at least ``fraction`` of all results every ``interval``."""
    return PercentPerIntervalContract(fraction=fraction, interval=interval)


def c5(
    fraction: float = 0.1,
    interval: float = 1.0,
    time_scale: float = 1.0,
) -> Contract:
    """C5: hybrid — C4's cardinality term times ``1 / ts`` (Table 2)."""
    return HybridContract(
        cardinality=PercentPerIntervalContract(fraction=fraction, interval=interval),
        time=InverseTimeContract(scale=time_scale),
        name=f"C5(frac={fraction:g}, dt={interval:g}, scale={time_scale:g})",
    )


def make(
    contract_class: str,
    *,
    deadline: float = 10.0,
    interval: float = 1.0,
    fraction: float = 0.1,
    time_scale: float = 1.0,
) -> Contract:
    """Build any Table 2 contract by class name with explicit parameters."""
    builders = {
        "C1": lambda: c1(deadline),
        "C2": lambda: c2(time_scale),
        "C3": lambda: c3(deadline),
        "C4": lambda: c4(fraction, interval),
        "C5": lambda: c5(fraction, interval, time_scale),
    }
    try:
        return builders[contract_class]()
    except KeyError:
        raise ContractError(
            f"unknown contract class {contract_class!r}; expected one of {CONTRACT_CLASSES}"
        ) from None


__all__ = ["CONTRACT_CLASSES", "c1", "c2", "c3", "c4", "c5", "make"]
