"""Progressiveness contracts (Section 3) and satisfaction scoring."""

from repro.contracts.analysis import (
    contract_curve,
    delivery_profile,
    ideal_pacing,
    ideal_satisfaction,
    regret,
)
from repro.contracts.base import Contract
from repro.contracts.cardinality import (
    PercentPerIntervalContract,
    RateContract,
    interval_counts,
)
from repro.contracts.hybrid import HybridContract, InverseTimeContract
from repro.contracts.presets import CONTRACT_CLASSES, c1, c2, c3, c4, c5, make
from repro.contracts.score import (
    ResultEvent,
    ResultLog,
    SatisfactionTracker,
    WorkloadScore,
    pscore,
    satisfaction,
    score_workload,
)
from repro.contracts.time_based import (
    DeadlineContract,
    LogDecayContract,
    PiecewiseTimeContract,
    SoftDeadlineContract,
)

__all__ = [
    "CONTRACT_CLASSES",
    "Contract",
    "DeadlineContract",
    "HybridContract",
    "InverseTimeContract",
    "LogDecayContract",
    "PercentPerIntervalContract",
    "PiecewiseTimeContract",
    "RateContract",
    "ResultEvent",
    "ResultLog",
    "SatisfactionTracker",
    "SoftDeadlineContract",
    "WorkloadScore",
    "c1",
    "c2",
    "c3",
    "c4",
    "c5",
    "contract_curve",
    "delivery_profile",
    "ideal_pacing",
    "ideal_satisfaction",
    "interval_counts",
    "make",
    "regret",
    "pscore",
    "satisfaction",
    "score_workload",
]
