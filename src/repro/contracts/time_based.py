"""Time-based contracts (Section 3.2.1; contracts C1–C3 of Table 2).

These score a result only by its report time:

* :class:`DeadlineContract` (C1, Equation 1) — utility 1 up to a hard
  deadline, 0 afterwards (the response-time contracts of commercial
  systems);
* :class:`LogDecayContract` (C2) — ``1 / log(ts)``, the paper's strictest
  always-decaying model;
* :class:`SoftDeadlineContract` (C3) — utility 1 up to ``t_C3`` and
  ``1 / (ts - t_C3)`` afterwards;
* :class:`PiecewiseTimeContract` — the general step/decay form of Example 8.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.contracts.base import Contract, as_timestamp_array
from repro.errors import ContractError


class DeadlineContract(Contract):
    """Equation 1 / C1: full utility before ``deadline``, none after."""

    def __init__(self, deadline: float):
        if deadline <= 0:
            raise ContractError(f"deadline must be positive, got {deadline}")
        self.deadline = float(deadline)
        self.name = f"C1(t={self.deadline:g})"

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        return np.where(ts <= self.deadline, 1.0, 0.0)

    @classmethod
    def fused_tuple_utilities(cls, instances, timestamps) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        deadlines = np.asarray([c.deadline for c in instances], dtype=float)
        return np.where(ts[None, :] <= deadlines[:, None], 1.0, 0.0)


class LogDecayContract(Contract):
    """C2: ``v(tau) = 1 / log(tau.ts)``, clamped into [0, 1].

    The paper's formula exceeds 1 for ``ts < e`` and is undefined at
    ``ts <= 1``; we clamp to 1 there, preserving Table 2's intent that very
    early results are maximally useful.
    """

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ContractError(f"scale must be positive, got {scale}")
        #: Time-axis scale: utilities are evaluated at ``ts / scale`` so the
        #: same contract shape can be reused across virtual-clock calibrations.
        self.scale = float(scale)
        self.name = f"C2(scale={self.scale:g})"

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps) / self.scale
        with np.errstate(divide="ignore"):
            decayed = 1.0 / np.log(np.maximum(ts, 1.0 + 1e-12))
        return np.clip(decayed, 0.0, 1.0)

    @classmethod
    def fused_tuple_utilities(cls, instances, timestamps) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        scales = np.asarray([c.scale for c in instances], dtype=float)
        scaled = ts[None, :] / scales[:, None]
        with np.errstate(divide="ignore"):
            decayed = 1.0 / np.log(np.maximum(scaled, 1.0 + 1e-12))
        return np.clip(decayed, 0.0, 1.0)


class SoftDeadlineContract(Contract):
    """C3: utility 1 until ``t_C3``, then ``1 / (ts - t_C3)`` (clamped to 1).

    ``unit`` rescales the overrun before the hyperbolic decay — the paper's
    formula presumes seconds (12 s against a 10 s deadline scores 0.5); when
    timestamps are virtual-clock units the experiment configs set ``unit``
    to the virtual equivalent of "one second" (DESIGN.md §2).
    """

    def __init__(self, deadline: float, unit: float = 1.0):
        if deadline <= 0:
            raise ContractError(f"deadline must be positive, got {deadline}")
        if unit <= 0:
            raise ContractError(f"unit must be positive, got {unit}")
        self.deadline = float(deadline)
        self.unit = float(unit)
        self.name = f"C3(t={self.deadline:g}, unit={self.unit:g})"

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        overrun = (ts - self.deadline) / self.unit
        with np.errstate(divide="ignore"):
            late = 1.0 / np.maximum(overrun, 1e-12)
        return np.where(overrun <= 0, 1.0, np.clip(late, 0.0, 1.0))

    @classmethod
    def fused_tuple_utilities(cls, instances, timestamps) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        deadlines = np.asarray([c.deadline for c in instances], dtype=float)
        units = np.asarray([c.unit for c in instances], dtype=float)
        overrun = (ts[None, :] - deadlines[:, None]) / units[:, None]
        with np.errstate(divide="ignore"):
            late = 1.0 / np.maximum(overrun, 1e-12)
        return np.where(overrun <= 0, 1.0, np.clip(late, 0.0, 1.0))


class PiecewiseTimeContract(Contract):
    """Example 8's general form: constant steps followed by a decay tail.

    ``steps`` is a sequence of ``(threshold, utility)`` pairs, meaning
    "utility for ``ts <= threshold``", checked in increasing threshold
    order; ``tail`` scores any ``ts`` beyond the last threshold.
    """

    def __init__(
        self,
        steps: "Sequence[tuple[float, float]]",
        tail: "Callable[[np.ndarray], np.ndarray] | None" = None,
        name: str = "piecewise",
    ):
        if not steps:
            raise ContractError("piecewise contract needs at least one step")
        thresholds = [t for t, _ in steps]
        if sorted(thresholds) != thresholds:
            raise ContractError(f"step thresholds must be increasing, got {thresholds}")
        for _, utility in steps:
            if not 0.0 <= utility <= 1.0:
                raise ContractError(f"step utilities must be in [0, 1], got {utility}")
        self.steps = tuple((float(t), float(u)) for t, u in steps)
        self.tail = tail
        self.name = name

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        if self.tail is not None:
            out = np.clip(np.asarray(self.tail(ts), dtype=float), 0.0, 1.0)
        else:
            out = np.zeros_like(ts)
        for threshold, utility in reversed(self.steps):
            out = np.where(ts <= threshold, utility, out)
        return out


__all__ = [
    "DeadlineContract",
    "LogDecayContract",
    "PiecewiseTimeContract",
    "SoftDeadlineContract",
]
