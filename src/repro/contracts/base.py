"""The progressiveness-contract model (Section 3).

A contract ``C`` for query ``Q`` is a *progressive utility function* ``v``
mapping each result tuple to a utility score based on its usefulness
(Definition 4).  The paper's scores live in ``[0, 1]`` except the
cardinality contract of Equation 3, whose miss branch is negative — we keep
that faithfully and clamp only at the *satisfaction-metric* level.

Three views of a contract are needed by different components:

* :meth:`Contract.tuple_utilities` — vectorised per-tuple scoring of a full
  result log (Definition 4 / Equation 7's ``pScore`` summand), used for the
  final experiment metrics;
* :meth:`Contract.batch_utility` — the optimizer's estimate of the summed
  utility of ``batch_size`` hypothetical results reported at a future
  virtual time (the inner sum of Equation 8);
* :meth:`Contract.satisfaction` — the normalised ``[0, 1]`` per-query
  satisfaction the paper plots in Figures 9 and 11.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ContractError


def as_timestamp_array(timestamps) -> np.ndarray:
    ts = np.asarray(timestamps, dtype=float)
    if ts.ndim != 1:
        raise ContractError(f"timestamps must be 1-dimensional, got shape {ts.shape}")
    if np.any(ts < 0):
        raise ContractError("timestamps must be non-negative")
    return ts


class Contract(abc.ABC):
    """A progressiveness contract: a utility function over result tuples."""

    #: Human-readable identifier (e.g. ``"C1(t=10)"``).
    name: str = "contract"

    @abc.abstractmethod
    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        """Per-tuple utility scores for results reported at ``timestamps``.

        ``total_results`` is the query's (estimated or actual) final result
        count ``N`` — only cardinality-style contracts consume it.
        """

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def pscore(self, timestamps, total_results: float) -> float:
        """Equation 7: the summed utility of the reported results."""
        ts = as_timestamp_array(timestamps)
        if len(ts) == 0:
            return 0.0
        return float(np.sum(self.tuple_utilities(ts, total_results)))

    def satisfaction(
        self,
        timestamps,
        total_results: float,
        horizon: "float | None" = None,
    ) -> float:
        """Average contract satisfaction in ``[0, 1]`` (Figures 9 and 11).

        The default is the mean per-tuple utility, clamped to ``[0, 1]``; an
        empty result log scores 0 when results were expected.  ``horizon``
        (the workload's completion time) is consumed by interval-based
        contracts that must also account for result-less intervals.
        """
        ts = as_timestamp_array(timestamps)
        if len(ts) == 0:
            return 1.0 if total_results == 0 else 0.0
        mean = float(np.mean(self.tuple_utilities(ts, total_results)))
        return min(1.0, max(0.0, mean))

    def utility_at(self, timestamp: float, total_results: float = 1.0) -> float:
        """Utility of a single hypothetical result reported at ``timestamp``."""
        return float(self.tuple_utilities(np.asarray([timestamp]), total_results)[0])

    def batch_utility(
        self,
        timestamp: float,
        batch_size: float,
        total_estimate: float,
    ) -> float:
        """Estimated summed utility of ``batch_size`` results at ``timestamp``.

        Used by the CSM benefit model (Equation 8).  Time-based contracts
        score each hypothetical tuple identically; cardinality-based
        contracts override this to account for the batch size itself.
        """
        if batch_size <= 0:
            return 0.0
        return batch_size * self.utility_at(timestamp, max(total_estimate, 1.0))

    def batch_utilities(
        self,
        timestamps: np.ndarray,
        batch_sizes: np.ndarray,
        total_estimate: float,
    ) -> np.ndarray:
        """Vectorised :meth:`batch_utility` over aligned arrays.

        The optimizer scores every candidate region per iteration; this
        one-call-per-contract form keeps that loop out of Python.  The
        default covers time-based contracts (utility independent of batch
        size); cardinality-based contracts override it.
        """
        ts = np.asarray(timestamps, dtype=float)
        batches = np.asarray(batch_sizes, dtype=float)
        total = max(float(total_estimate), 1.0)
        utilities = self.tuple_utilities(ts, total)
        return np.where(batches > 0, batches * utilities, 0.0)

    @classmethod
    def fused_tuple_utilities(
        cls, instances: "Sequence[Contract]", timestamps: np.ndarray
    ) -> "np.ndarray | None":
        """Per-query utilities for a *homogeneous* contract set, fused.

        Returns a ``(len(instances), len(timestamps))`` matrix equal
        row-for-row to calling each instance's :meth:`tuple_utilities` on
        ``timestamps`` — one broadcast instead of one call per query — or
        ``None`` when the class has no fused form.  Implementations must
        be elementwise bit-identical to the scalar path (same operations,
        same operand order) because CSM scores feed an argsort whose ties
        are observable in the schedule trace.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


__all__ = ["Contract", "as_timestamp_array"]
