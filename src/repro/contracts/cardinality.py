"""Cardinality-based contracts (Section 3.2.2; contract C4 of Table 2).

These score a result by how many results arrive per time interval rather
than by when each individual result arrives:

* :class:`PercentPerIntervalContract` (Equation 3 / C4) — "at least
  ``fraction`` of all results every ``interval``"; tuples in intervals that
  meet the quota score 1, tuples in under-quota intervals score the
  *negative* shortfall ratio the paper defines.
* :class:`RateContract` (Equation 4 / Example 10) — the consumer can absorb
  at most ``rate`` tuples per interval; both starving and flooding the
  consumer lowers utility.

For the figure-level *satisfaction metric* the per-tuple view is not
enough: an algorithm that reports nothing for an hour produces no tuples to
penalise.  :meth:`PercentPerIntervalContract.satisfaction` therefore scores
every interval from query start until the last result (empty intervals
score the Equation 3 miss value for ``n = 0``, i.e. ``-1``) and averages,
clamped into ``[0, 1]`` — this is what makes blocking strategies score near
zero under C4, as in Figure 9.
"""

from __future__ import annotations

import math

import numpy as np

from repro.contracts.base import Contract, as_timestamp_array
from repro.errors import ContractError


def interval_counts(timestamps: np.ndarray, interval: float) -> "tuple[np.ndarray, np.ndarray]":
    """Map each timestamp to its interval index; return (indices, counts).

    Interval ``j`` (0-based) covers ``(j * interval, (j + 1) * interval]``,
    with time 0 assigned to interval 0.
    """
    ts = as_timestamp_array(timestamps)
    indices = np.maximum(np.ceil(ts / interval) - 1, 0).astype(int)
    counts = np.bincount(indices) if len(indices) else np.zeros(0, dtype=int)
    return indices, counts


class PercentPerIntervalContract(Contract):
    """Equation 3 / C4: ``fraction`` of all results due every ``interval``."""

    def __init__(self, fraction: float = 0.1, interval: float = 1.0):
        if not 0.0 < fraction <= 1.0:
            raise ContractError(f"fraction must be in (0, 1], got {fraction}")
        if interval <= 0:
            raise ContractError(f"interval must be positive, got {interval}")
        self.fraction = float(fraction)
        self.interval = float(interval)
        self.name = f"C4(frac={self.fraction:g}, dt={self.interval:g})"

    def _interval_utility(self, count: float, total: float) -> float:
        """Equation 3 for one interval's result count."""
        total = max(total, 1.0)
        quota = self.fraction * total
        if count / total >= self.fraction:
            return 1.0
        return count / quota - 1.0

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        if len(ts) == 0:
            return np.zeros(0)
        indices, counts = interval_counts(ts, self.interval)
        per_interval = np.array(
            [self._interval_utility(c, total_results) for c in counts]
        )
        return per_interval[indices]

    def satisfaction(
        self,
        timestamps,
        total_results: float,
        horizon: "float | None" = None,
    ) -> float:
        """Fraction of wall intervals (up to the last delivery) in which the
        quota was met, with partial credit for under-quota intervals.

        Equation 3 scores *tuples*; for the figure-level metric every
        interval from query start to the final delivery is scored —
        ``clamp(Eq. 3 value, 0, 1)`` for non-empty intervals, 0 for empty
        ones — and averaged.  A perfectly paced stream scores 1; a strategy
        that blocks for ``k`` intervals and then dumps scores ``~1/k``.
        """
        ts = as_timestamp_array(timestamps)
        if total_results == 0:
            return 1.0
        if len(ts) == 0:
            return 0.0
        _, counts = interval_counts(ts, self.interval)
        scores = [
            max(0.0, min(1.0, self._interval_utility(c, total_results)))
            if c > 0
            else 0.0
            for c in counts
        ]
        return float(np.mean(scores))

    def batch_utility(
        self,
        timestamp: float,
        batch_size: float,
        total_estimate: float,
    ) -> float:
        """Optimizer's estimate: Equation 3 clamped into [0, 1].

        The literal Equation 3 assigns *negative* utility to a sub-quota
        batch, which would teach the optimizer that delivering a few
        results is worse than delivering none — the opposite of what the
        satisfaction metric rewards.  The planning view therefore clamps;
        :meth:`pscore` keeps the paper-literal signed form.
        """
        if batch_size <= 0:
            return 0.0
        per_tuple = max(0.0, min(1.0, self._interval_utility(batch_size, total_estimate)))
        return batch_size * per_tuple

    def batch_utilities(
        self,
        timestamps: np.ndarray,
        batch_sizes: np.ndarray,
        total_estimate: float,
    ) -> np.ndarray:
        batches = np.asarray(batch_sizes, dtype=float)
        total = max(float(total_estimate), 1.0)
        quota = self.fraction * total
        per_tuple = np.clip(
            np.where(batches / total >= self.fraction, 1.0, batches / quota - 1.0),
            0.0,
            1.0,
        )
        return np.where(batches > 0, batches * per_tuple, 0.0)


class RateContract(Contract):
    """Equation 4 / Example 10: the consumer absorbs ``rate`` tuples/interval."""

    def __init__(self, rate: float = 5.0, interval: float = 1.0):
        if rate <= 0:
            raise ContractError(f"rate must be positive, got {rate}")
        if interval <= 0:
            raise ContractError(f"interval must be positive, got {interval}")
        self.rate = float(rate)
        self.interval = float(interval)
        self.name = f"rate({self.rate:g}/{self.interval:g})"

    def _interval_utility(self, count: float) -> float:
        if count <= 0:
            return 0.0
        if count <= self.rate:
            return count / self.rate
        return self.rate / count

    def tuple_utilities(self, timestamps, total_results: float) -> np.ndarray:
        ts = as_timestamp_array(timestamps)
        if len(ts) == 0:
            return np.zeros(0)
        indices, counts = interval_counts(ts, self.interval)
        per_interval = np.array([self._interval_utility(c) for c in counts])
        return per_interval[indices]

    def batch_utility(
        self,
        timestamp: float,
        batch_size: float,
        total_estimate: float,
    ) -> float:
        if batch_size <= 0:
            return 0.0
        return batch_size * self._interval_utility(batch_size)

    def batch_utilities(
        self,
        timestamps: np.ndarray,
        batch_sizes: np.ndarray,
        total_estimate: float,
    ) -> np.ndarray:
        batches = np.asarray(batch_sizes, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_tuple = np.where(
                batches <= self.rate, batches / self.rate, self.rate / batches
            )
        return np.where(batches > 0, batches * per_tuple, 0.0)

    def ideal_intervals(self, total_results: float) -> int:
        """Intervals needed to drain ``total_results`` at the ideal rate."""
        return int(math.ceil(max(total_results, 0.0) / self.rate))


__all__ = ["PercentPerIntervalContract", "RateContract", "interval_counts"]
