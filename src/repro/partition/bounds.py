"""Axis-aligned hyper-rectangles.

Used for quad-tree cells over the input space and for output regions /
output cells in the multi-query output space (Table 1's ``L(l, u)`` and
``R(l, u)`` notation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError


@dataclass(frozen=True)
class HyperRect:
    """Closed axis-aligned box ``[lower, upper]`` in ``d`` dimensions."""

    lower: tuple[float, ...]
    upper: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise PartitionError(
                f"bound arity mismatch: {len(self.lower)} vs {len(self.upper)}"
            )
        if not self.lower:
            raise PartitionError("hyper-rectangle needs at least one dimension")
        for lo, hi in zip(self.lower, self.upper):
            if lo > hi:
                raise PartitionError(f"lower bound {lo} exceeds upper bound {hi}")

    @classmethod
    def from_points(cls, points: np.ndarray) -> "HyperRect":
        """Tightest box around a non-empty ``(n, d)`` point matrix."""
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2 or len(matrix) == 0:
            raise PartitionError(f"need a non-empty 2-d matrix, got shape {matrix.shape}")
        return cls(tuple(matrix.min(axis=0)), tuple(matrix.max(axis=0)))

    @property
    def dimensions(self) -> int:
        return len(self.lower)

    @property
    def center(self) -> tuple[float, ...]:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lower, self.upper))

    def contains(self, point) -> bool:
        vec = np.asarray(point, dtype=float)
        return bool(
            np.all(vec >= np.asarray(self.lower)) and np.all(vec <= np.asarray(self.upper))
        )

    def intersects(self, other: "HyperRect") -> bool:
        for lo_a, hi_a, lo_b, hi_b in zip(self.lower, self.upper, other.lower, other.upper):
            if hi_a < lo_b or hi_b < lo_a:
                return False
        return True

    def volume(self) -> float:
        sides = [hi - lo for lo, hi in zip(self.lower, self.upper)]
        return float(np.prod(sides)) if sides else 0.0

    def split_midpoint(self) -> "list[HyperRect]":
        """All ``2^d`` quadrants around the midpoint (quad-tree split)."""
        mid = self.center
        quadrants: list[HyperRect] = []
        d = self.dimensions
        for code in range(2 ** d):
            lower = []
            upper = []
            for axis in range(d):
                if (code >> axis) & 1:
                    lower.append(mid[axis])
                    upper.append(self.upper[axis])
                else:
                    lower.append(self.lower[axis])
                    upper.append(mid[axis])
            quadrants.append(HyperRect(tuple(lower), tuple(upper)))
        return quadrants

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"[{lo:g},{hi:g}]" for lo, hi in zip(self.lower, self.upper)
        )
        return f"HyperRect({pairs})"


__all__ = ["HyperRect"]
