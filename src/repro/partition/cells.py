"""Leaf cells of the partitioned input space (Table 1's ``L_i^T(l_i, u_i)``).

A :class:`LeafCell` groups a subset of one table's rows and carries exactly
what coarse-level processing needs: the cell's measure-space bounding box
and one join signature per workload join predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.partition.bounds import HyperRect
from repro.partition.signatures import signatures_for_side
from repro.query.predicates import JoinCondition
from repro.relation import Relation


@dataclass(frozen=True)
class LeafCell:
    """A group of rows from one relation plus its coarse metadata."""

    cell_id: int
    relation_name: str
    #: Row indices into the source relation (sorted, unique).
    indices: np.ndarray
    #: Measure attributes the bounds cover, in bound order.
    measure_attrs: tuple[str, ...]
    bounds: HyperRect
    #: Join signatures keyed by join-condition name.
    signatures: "dict[str, frozenset]"

    def __post_init__(self) -> None:
        if len(self.indices) == 0:
            raise PartitionError("a leaf cell must contain at least one tuple")
        if len(self.measure_attrs) != self.bounds.dimensions:
            raise PartitionError(
                f"cell {self.cell_id}: {len(self.measure_attrs)} measure attrs but "
                f"{self.bounds.dimensions}-d bounds"
            )

    @property
    def size(self) -> int:
        return len(self.indices)

    def lower_of(self, attr: str) -> float:
        return self.bounds.lower[self.measure_attrs.index(attr)]

    def upper_of(self, attr: str) -> float:
        return self.bounds.upper[self.measure_attrs.index(attr)]

    def lower_map(self) -> "dict[str, float]":
        return dict(zip(self.measure_attrs, self.bounds.lower))

    def upper_map(self) -> "dict[str, float]":
        return dict(zip(self.measure_attrs, self.bounds.upper))

    def signature(self, condition_name: str) -> frozenset:
        try:
            return self.signatures[condition_name]
        except KeyError:
            raise PartitionError(
                f"cell {self.cell_id} has no signature for join condition "
                f"{condition_name!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"LeafCell(#{self.cell_id} of {self.relation_name}, "
            f"n={self.size}, bounds={self.bounds})"
        )


def make_leaf(
    cell_id: int,
    relation: Relation,
    indices: np.ndarray,
    measure_attrs: "tuple[str, ...]",
    conditions: "tuple[JoinCondition, ...]",
    side: str,
) -> LeafCell:
    """Build a leaf cell: compute bounds and signatures for ``indices``."""
    idx = np.asarray(sorted(set(int(i) for i in indices)), dtype=np.intp)
    if len(idx) == 0:
        raise PartitionError("cannot build a leaf cell over zero rows")
    matrix = np.column_stack([relation.column(a)[idx] for a in measure_attrs]).astype(float)
    return LeafCell(
        cell_id=cell_id,
        relation_name=relation.name,
        indices=idx,
        measure_attrs=tuple(measure_attrs),
        bounds=HyperRect.from_points(matrix),
        signatures=signatures_for_side(relation, idx, conditions, side),
    )


__all__ = ["LeafCell", "make_leaf"]
