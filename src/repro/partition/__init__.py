"""Input-space partitioning: hyper-rectangles, quad-trees, leaf cells, signatures."""

from repro.partition.bounds import HyperRect
from repro.partition.cells import LeafCell, make_leaf
from repro.partition.quadtree import (
    DEFAULT_CAPACITY,
    Partitioning,
    QuadTreeNode,
    grid_partition,
    quadtree_partition,
)
from repro.partition.signatures import (
    common_values,
    signature_of,
    signatures_for_side,
    signatures_intersect,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "HyperRect",
    "LeafCell",
    "Partitioning",
    "QuadTreeNode",
    "common_values",
    "grid_partition",
    "make_leaf",
    "quadtree_partition",
    "signature_of",
    "signatures_for_side",
    "signatures_intersect",
]
