"""Per-cell join signatures (Section 5.1).

Each leaf cell maintains, for every join predicate in the workload, the set
of its member tuples' values over that predicate's attribute — Example 14's
``L[country] = {Brazil, China, Mexico}``.  Coarse-level join evaluation
then reduces to signature intersection: a pair of cells can produce a join
result for ``JC_i`` iff their ``JC_i`` signatures intersect.
"""

from __future__ import annotations

import numpy as np

from repro.query.predicates import JoinCondition
from repro.relation import Relation


def signature_of(relation: Relation, indices: np.ndarray, attr: str) -> frozenset:
    """Distinct values of ``attr`` among the rows ``indices``."""
    values = relation.column(attr)[np.asarray(indices, dtype=np.intp)]
    return frozenset(v.item() if hasattr(v, "item") else v for v in values)


def signatures_for_side(
    relation: Relation,
    indices: np.ndarray,
    conditions: "tuple[JoinCondition, ...]",
    side: str,
) -> "dict[str, frozenset]":
    """Signatures for one table side, keyed by join-condition name.

    ``side`` is ``"left"`` or ``"right"`` — it selects which attribute of
    each condition this relation contributes.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    out: dict[str, frozenset] = {}
    for condition in conditions:
        attr = condition.left_attr if side == "left" else condition.right_attr
        out[condition.name] = signature_of(relation, indices, attr)
    return out


def signatures_intersect(left_sig: frozenset, right_sig: frozenset) -> bool:
    """The coarse join test: can any tuple pair satisfy the predicate?"""
    if len(left_sig) > len(right_sig):
        left_sig, right_sig = right_sig, left_sig
    return any(value in right_sig for value in left_sig)


def common_values(left_sig: frozenset, right_sig: frozenset) -> frozenset:
    return left_sig & right_sig


__all__ = [
    "common_values",
    "signature_of",
    "signatures_for_side",
    "signatures_intersect",
]
