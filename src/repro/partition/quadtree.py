"""d-dimensional quad-tree partitioning of the input tables (Section 5.1).

CAQE "assume[s] the input data sets are partitioned into a d-dimensional
quad tree": starting from the table's bounding box, any node holding more
than ``capacity`` tuples is split into its ``2^d`` midpoint quadrants until
every leaf fits (or ``max_depth`` is hit).  The resulting leaves become the
:class:`~repro.partition.cells.LeafCell` units of coarse processing.

A uniform :func:`grid_partition` is provided as a simpler alternative used
by ablation benches to study partitioning sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.partition.bounds import HyperRect
from repro.partition.cells import LeafCell, make_leaf
from repro.query.predicates import JoinCondition
from repro.relation import Relation

#: Default maximum tuples per leaf.
DEFAULT_CAPACITY = 64
#: Splitting more than ~6 dimensions explodes into 2^d children per node.
MAX_TREE_DIMENSIONS = 6


@dataclass
class QuadTreeNode:
    """Internal tree node (exposed for inspection and tests)."""

    bounds: HyperRect
    indices: np.ndarray
    depth: int
    children: "list[QuadTreeNode]" = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass(frozen=True)
class Partitioning:
    """The coarse view of one table: its leaf cells plus tree metadata."""

    relation_name: str
    leaves: tuple[LeafCell, ...]
    measure_attrs: tuple[str, ...]
    depth: int

    @property
    def cell_count(self) -> int:
        return len(self.leaves)

    def total_tuples(self) -> int:
        return sum(leaf.size for leaf in self.leaves)

    def cell(self, cell_id: int) -> LeafCell:
        for leaf in self.leaves:
            if leaf.cell_id == cell_id:
                return leaf
        raise PartitionError(f"no cell #{cell_id} in partitioning of {self.relation_name!r}")


def _build_tree(
    matrix: np.ndarray,
    indices: np.ndarray,
    bounds: HyperRect,
    capacity: int,
    max_depth: int,
    depth: int = 0,
) -> QuadTreeNode:
    node = QuadTreeNode(bounds=bounds, indices=indices, depth=depth)
    if len(indices) <= capacity or depth >= max_depth:
        return node
    mid = np.asarray(bounds.center)
    d = bounds.dimensions
    points = matrix[indices]
    # Quadrant code per point: bit ``axis`` set iff the point lies in the
    # upper half along that axis.
    codes = np.zeros(len(indices), dtype=np.int64)
    for axis in range(d):
        codes |= (points[:, axis] > mid[axis]).astype(np.int64) << axis
    quadrants = bounds.split_midpoint()
    for code in range(2 ** d):
        member = indices[codes == code]
        if len(member) == 0:
            continue
        node.children.append(
            _build_tree(matrix, member, quadrants[code], capacity, max_depth, depth + 1)
        )
    if len(node.children) == 1 and len(node.children[0].indices) == len(indices):
        # Degenerate split (all points in one quadrant): stop here.
        node.children = []
    return node


def _build_kd_tree(
    matrix: np.ndarray,
    indices: np.ndarray,
    bounds: HyperRect,
    capacity: int,
    max_depth: int,
    depth: int = 0,
) -> QuadTreeNode:
    """Binary median splits on the widest dimension (k-d style).

    Unlike the ``2^d``-way quad split, cell counts grow in powers of two
    and leaves stay balanced on skewed data, which gives the look-ahead a
    much smoother granularity knob (used by the partitioning ablation).
    """
    node = QuadTreeNode(bounds=bounds, indices=indices, depth=depth)
    if len(indices) <= capacity or depth >= max_depth:
        return node
    points = matrix[indices]
    widths = points.max(axis=0) - points.min(axis=0)
    axis = int(np.argmax(widths))
    median = float(np.median(points[:, axis]))
    below = points[:, axis] <= median
    if below.all() or not below.any():
        return node  # all values tied on every axis wide enough to split
    lower_bounds = HyperRect(
        bounds.lower,
        tuple(
            median if i == axis else v for i, v in enumerate(bounds.upper)
        ),
    )
    upper_bounds = HyperRect(
        tuple(median if i == axis else v for i, v in enumerate(bounds.lower)),
        bounds.upper,
    )
    node.children = [
        _build_kd_tree(
            matrix, indices[below], lower_bounds, capacity, max_depth, depth + 1
        ),
        _build_kd_tree(
            matrix, indices[~below], upper_bounds, capacity, max_depth, depth + 1
        ),
    ]
    return node


def _collect_leaves(node: QuadTreeNode) -> "list[QuadTreeNode]":
    if node.is_leaf:
        return [node]
    out: list[QuadTreeNode] = []
    for child in node.children:
        out.extend(_collect_leaves(child))
    return out


def quadtree_partition(
    relation: Relation,
    measure_attrs: "tuple[str, ...]",
    conditions: "tuple[JoinCondition, ...]",
    side: str,
    *,
    capacity: int = DEFAULT_CAPACITY,
    max_depth: int = 12,
    split: str = "quad",
) -> Partitioning:
    """Partition ``relation`` into quad-tree leaf cells.

    ``measure_attrs`` are the columns the tree splits on (the attributes
    feeding the workload's skyline dimensions); ``conditions``/``side``
    drive signature construction.  ``split`` selects the node split policy:
    ``"quad"`` — the paper's ``2^d``-way midpoint split; ``"kd"`` — binary
    median splits on the widest dimension (balanced leaves, smoother cell
    counts; see the partitioning ablation bench).
    """
    if not measure_attrs:
        raise PartitionError("quadtree_partition needs at least one measure attribute")
    if split not in ("quad", "kd"):
        raise PartitionError(f"unknown split policy {split!r}; expected 'quad' or 'kd'")
    if split == "quad" and len(measure_attrs) > MAX_TREE_DIMENSIONS:
        raise PartitionError(
            f"refusing to split on {len(measure_attrs)} dimensions "
            f"(> {MAX_TREE_DIMENSIONS}); a node would have 2^d children"
        )
    if capacity < 1:
        raise PartitionError(f"capacity must be >= 1, got {capacity}")
    if relation.cardinality == 0:
        return Partitioning(relation.name, (), tuple(measure_attrs), depth=0)
    matrix = np.column_stack([relation.column(a) for a in measure_attrs]).astype(float)
    all_indices = np.arange(relation.cardinality, dtype=np.intp)
    root_bounds = HyperRect.from_points(matrix)
    builder = _build_tree if split == "quad" else _build_kd_tree
    root = builder(matrix, all_indices, root_bounds, capacity, max_depth)
    leaf_nodes = _collect_leaves(root)
    leaves = tuple(
        make_leaf(i, relation, node.indices, measure_attrs, conditions, side)
        for i, node in enumerate(leaf_nodes)
    )
    depth = max(node.depth for node in leaf_nodes)
    return Partitioning(relation.name, leaves, tuple(measure_attrs), depth=depth)


def grid_partition(
    relation: Relation,
    measure_attrs: "tuple[str, ...]",
    conditions: "tuple[JoinCondition, ...]",
    side: str,
    *,
    divisions: int = 4,
) -> Partitioning:
    """Equi-width grid partitioning (ablation alternative to the quad-tree)."""
    if divisions < 1:
        raise PartitionError(f"divisions must be >= 1, got {divisions}")
    if relation.cardinality == 0:
        return Partitioning(relation.name, (), tuple(measure_attrs), depth=0)
    matrix = np.column_stack([relation.column(a) for a in measure_attrs]).astype(float)
    lows = matrix.min(axis=0)
    highs = matrix.max(axis=0)
    spans = np.where(highs > lows, highs - lows, 1.0)
    coords = np.floor((matrix - lows) / spans * divisions).astype(int)
    coords = np.minimum(coords, divisions - 1)
    buckets: dict[tuple, list[int]] = {}
    for row, coord in enumerate(map(tuple, coords)):
        buckets.setdefault(coord, []).append(row)
    leaves = tuple(
        make_leaf(i, relation, np.asarray(rows), measure_attrs, conditions, side)
        for i, (_, rows) in enumerate(sorted(buckets.items()))
    )
    return Partitioning(relation.name, leaves, tuple(measure_attrs), depth=1)


__all__ = [
    "DEFAULT_CAPACITY",
    "MAX_TREE_DIMENSIONS",
    "Partitioning",
    "QuadTreeNode",
    "grid_partition",
    "quadtree_partition",
]
