"""Tuple-level shared skyline evaluation over the min-max cuboid.

A :class:`SharedCuboidPlan` holds one incremental skyline window per cuboid
subspace.  Inserting a (join-result) tuple walks the cuboid bottom-up:

* level-0 and unseeded nodes run a normal window insert;
* a node whose *child* subspace already admitted the tuple uses the
  Theorem 1 / Corollary 1 shortcut: under the DVA property the tuple is
  guaranteed to be in the parent skyline too, so the membership half of the
  scan is skipped and only evictions are checked.

This is exactly where the comparison sharing of Section 4.1 happens: a
dominance comparison along the shared dimensions is performed once at the
shared child instead of once per query; the saved work shows up directly in
the Figure 10b metric.

Each query ``Q_i`` reads its current candidate skyline from the window of
its full preference subspace ``P_i`` (a cuboid node by Definition 7,
condition 3).  Because skyline-over-join is non-monotonic, evictions are
reported so executors know which earlier candidates became invalid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.errors import PlanError
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


@dataclass
class InsertReport:
    """What one tuple insert did across the cuboid."""

    key: Hashable
    #: Cuboid masks whose skyline admitted the tuple.
    admitted_masks: "set[int]" = field(default_factory=set)
    #: Keys evicted from each mask's window by this insert.
    evicted_by_mask: "dict[int, list[Hashable]]" = field(default_factory=dict)

    def admitted_for(self, mask: int) -> bool:
        return mask in self.admitted_masks


class SharedCuboidPlan:
    """Shared multi-query skyline state for one workload."""

    def __init__(
        self,
        cuboid: MinMaxCuboid,
        attribute_order: "Sequence[str]",
        counter: "ComparisonCounter | None" = None,
        *,
        assume_dva: bool = True,
        batch_kernel: str = "rounds",
    ) -> None:
        self.cuboid = cuboid
        self.attribute_order = tuple(attribute_order)
        self.counter = counter
        #: Which :meth:`SkylineWindow.insert_batch` kernel batch inserts
        #: use ("rounds" or the parallel layer's "replay") — a pure
        #: execution-strategy switch, bit-identical either way.
        self.batch_kernel = batch_kernel
        #: When False the Theorem 1 shortcut is disabled and every node runs
        #: a full membership scan (correct for data violating DVA).
        self.assume_dva = assume_dva
        table = cuboid.lattice.table
        missing = [d for d in table.dims if d not in self.attribute_order]
        if missing:
            raise PlanError(
                f"attribute order {self.attribute_order} lacks skyline dims {missing}"
            )
        positions = {d: self.attribute_order.index(d) for d in table.dims}
        self._windows: dict[int, SkylineWindow] = {}
        for mask in cuboid.masks:
            dims = tuple(positions[d] for d in table.names(mask))
            self._windows[mask] = SkylineWindow(dims=dims, counter=counter)
        self._query_mask = dict(cuboid.query_nodes)
        # Array-native walk plan (docs/ARCHITECTURE.md §16): each cuboid
        # node gets a position bit in a per-batch int64 "admitted bits"
        # column, and its Theorem-1 seeding test collapses to one AND
        # against the OR of its children's bits.
        self._node_bit = {
            mask: np.int64(1) << np.int64(p)
            for p, mask in enumerate(cuboid.masks)
        }
        self._walk: "list[tuple[int, SkylineWindow, np.int64, np.int64, np.int64]]" = []
        for mask in cuboid.masks:
            node = cuboid.node(mask)
            child_bits = np.int64(0)
            for child in node.children:
                child_bits |= self._node_bit[child]
            self._walk.append(
                (
                    mask,
                    self._windows[mask],
                    np.int64(node.qserve),
                    child_bits,
                    self._node_bit[mask],
                )
            )

    # ------------------------------------------------------------------ #
    def insert(
        self,
        key: Hashable,
        vector: np.ndarray,
        serve_mask: "int | None" = None,
    ) -> InsertReport:
        """Insert one tuple (full output vector) bottom-up; report effects.

        ``serve_mask`` is the tuple's query lineage (the CQL of Section 6):
        when given, only cuboid nodes serving at least one of those queries
        are touched — the paper's restriction of skyline comparisons to
        cells with intersecting lineage.  Skipping a node is sound because
        a tuple whose region cannot contribute to a query is provably
        dominated for that query's subspaces (see coarse skyline /
        discard steps), so omitting it never changes a final skyline.
        """
        vec = np.asarray(vector, dtype=float)
        if len(vec) != len(self.attribute_order):
            raise PlanError(
                f"vector has {len(vec)} values, plan expects {len(self.attribute_order)}"
            )
        report = InsertReport(key=key)
        for mask in self.cuboid.masks:
            node = self.cuboid.node(mask)
            if serve_mask is not None and not (node.qserve & serve_mask):
                continue
            window = self._windows[mask]
            seeded = self.assume_dva and any(
                child in report.admitted_masks for child in node.children
            )
            if seeded:
                outcome = window.insert_known_member(key, vec)
            else:
                outcome = window.insert(key, vec)
            if outcome.admitted:
                report.admitted_masks.add(mask)
            if outcome.evicted:
                report.evicted_by_mask[mask] = [e.key for e in outcome.evicted]
        return report

    def insert_batch(
        self,
        keys: "Sequence[Hashable]",
        vectors: np.ndarray,
        serve_masks: "np.ndarray | None" = None,
    ) -> "list[InsertReport]":
        """Insert a whole batch of tuples; equivalent to sequential inserts.

        ``serve_masks`` carries one query-lineage mask per tuple.  The walk
        is restructured mask-outer/tuple-inner so each cuboid window absorbs
        its share of the batch in one :meth:`SkylineWindow.insert_batch`
        call: windows are independent, and the Theorem 1 seeding decision
        for a tuple at a parent node only reads that same tuple's admission
        at child nodes — which the bottom-up mask order has already
        produced.  Reports, final window contents and charged comparison
        counts are identical to the tuple-at-a-time walk.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != len(self.attribute_order):
            raise PlanError(
                f"batch has shape {vecs.shape}, plan expects "
                f"(n, {len(self.attribute_order)})"
            )
        n = len(keys)
        reports = [InsertReport(key=key) for key in keys]
        if n == 0:
            return reports
        serve = (
            np.asarray(serve_masks, dtype=np.int64)
            if serve_masks is not None
            else None
        )
        admitted_by_mask: "dict[int, np.ndarray]" = {}
        for mask in self.cuboid.masks:
            node = self.cuboid.node(mask)
            if serve is None:
                idx = np.arange(n)
            else:
                idx = np.flatnonzero((serve & node.qserve) != 0)
                if idx.size == 0:
                    continue
            known = np.zeros(len(idx), dtype=bool)
            if self.assume_dva:
                for child in node.children:
                    child_admitted = admitted_by_mask.get(child)
                    if child_admitted is not None:
                        known |= child_admitted[idx]
            outcome = self._windows[mask].insert_batch(
                [keys[i] for i in idx.tolist()],
                vecs[idx],
                known_member=known,
                kernel=self.batch_kernel,
            )
            mask_admitted = np.zeros(n, dtype=bool)
            mask_admitted[idx] = outcome.admitted
            admitted_by_mask[mask] = mask_admitted
            for local, i in enumerate(idx.tolist()):
                if outcome.admitted[local]:
                    reports[i].admitted_masks.add(mask)
                entry_evictions = outcome.evicted[local]
                if entry_evictions:
                    reports[i].evicted_by_mask[mask] = [
                        e.key for e in entry_evictions
                    ]
        return reports

    def node_bit(self, mask: int) -> np.int64:
        """Position bit of a cuboid node in the admitted-bits column."""
        return self._node_bit[mask]

    def insert_batch_arrays(
        self,
        keys: "Sequence[Hashable]",
        vectors: np.ndarray,
        serve_masks: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, dict[int, dict[int, list]]]":
        """:meth:`insert_batch` returning rid-indexed columns, not reports.

        Same cuboid walk, same window calls, same charged comparisons —
        only the *packaging* differs: one int64 **admitted-bits column**
        (row ``i`` has :meth:`node_bit` of every cuboid node that admitted
        tuple ``i``) plus a sparse per-mask ``{row: [evicted keys]}`` map.
        The bits column fuses the whole maintenance kernel: Theorem-1
        seeding is ``bits & child_bits``, the per-node admission scatter
        is one masked OR, and query-level reads downstream are one AND —
        no per-mask boolean arrays, no per-entry dict updates.  Evictions
        can only be caused by admitted entries, so the eviction scatter is
        O(admissions), not O(batch × masks) — this is the plan half of
        the parallel layer's replay commit kernel.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != len(self.attribute_order):
            raise PlanError(
                f"batch has shape {vecs.shape}, plan expects "
                f"(n, {len(self.attribute_order)})"
            )
        n = len(keys)
        admitted_bits = np.zeros(n, dtype=np.int64)
        evicted_by_mask: "dict[int, dict[int, list]]" = {}
        if n == 0:
            return admitted_bits, evicted_by_mask
        # Object-array view of the keys: per-mask key gathers become one
        # C-level fancy index instead of a Python list comprehension.
        keys_arr = np.empty(n, dtype=object)
        keys_arr[:] = list(keys)
        serve = (
            np.asarray(serve_masks, dtype=np.int64)
            if serve_masks is not None
            else None
        )
        dva = self.assume_dva
        kernel = self.batch_kernel
        for mask, window, qserve, child_bits, posbit in self._walk:
            if serve is None:
                idx = None
                sub_keys, sub_vecs = keys_arr, vecs
                known = (
                    (admitted_bits & child_bits) != 0
                    if dva and child_bits
                    else None
                )
            else:
                idx = np.flatnonzero((serve & qserve) != 0)
                if idx.size == 0:
                    continue
                sub_keys = keys_arr[idx]
                sub_vecs = vecs[idx]
                known = (
                    (admitted_bits[idx] & child_bits) != 0
                    if dva and child_bits
                    else None
                )
            outcome = window.insert_batch(
                sub_keys, sub_vecs, known_member=known, kernel=kernel
            )
            admitted = outcome.admitted
            if idx is None:
                admitted_bits[admitted] |= posbit
            else:
                admitted_bits[idx[admitted]] |= posbit
            evictions: "dict[int, list]" = {}
            for local in np.flatnonzero(admitted).tolist():
                entry_evictions = outcome.evicted[local]
                if entry_evictions:
                    row = local if idx is None else int(idx[local])
                    evictions[row] = [e.key for e in entry_evictions]
            if evictions:
                evicted_by_mask[mask] = evictions
        return admitted_bits, evicted_by_mask

    # ------------------------------------------------------------------ #
    # Query-level views
    # ------------------------------------------------------------------ #
    def query_mask(self, query_name: str) -> int:
        try:
            return self._query_mask[query_name]
        except KeyError:
            raise PlanError(f"no query named {query_name!r} in the shared plan") from None

    def window(self, mask: int) -> SkylineWindow:
        try:
            return self._windows[mask]
        except KeyError:
            raise PlanError(f"mask {mask:#x} is not a cuboid subspace") from None

    def current_skyline(self, query_name: str) -> "list[Hashable]":
        return self._windows[self.query_mask(query_name)].keys

    def is_candidate(self, query_name: str, key: Hashable) -> bool:
        return self._windows[self.query_mask(query_name)].contains_key(key)

    def admitted_queries(self, report: InsertReport) -> "list[str]":
        """Names of queries whose candidate skyline admitted the tuple."""
        return [
            name
            for name, mask in self._query_mask.items()
            if mask in report.admitted_masks
        ]

    def evicted_for_query(self, report: InsertReport, query_name: str) -> "list[Hashable]":
        return report.evicted_by_mask.get(self.query_mask(query_name), [])

    def window_sizes(self) -> "dict[int, int]":
        return {mask: len(window) for mask, window in self._windows.items()}


@dataclass
class WorkloadInsertReport:
    """Query-level view of one tuple insert across all plan groups."""

    key: Hashable
    #: Names of queries whose candidate skyline admitted the tuple.
    admitted: "set[str]" = field(default_factory=set)
    #: Per query name: previously-current keys this insert evicted.
    evicted: "dict[str, list[Hashable]]" = field(default_factory=dict)


class WorkloadPlan:
    """Shared skyline plans for a workload with per-query selections.

    The min-max cuboid's comparison sharing presumes queries that differ
    *only* in their skyline dimensions (Section 4.1): window-level
    dominance between two tuples is only meaningful when both tuples are
    join results of the same queries (the CQL-intersection condition of
    Section 6).  This wrapper therefore partitions the workload into
    equivalence classes over ``(join condition, selections)`` and maintains
    one :class:`SharedCuboidPlan` per class — within a class every
    inserted tuple is a genuine join result of every class member, so
    evictions are always valid; across classes nothing is shared at the
    window level because nothing may be.  The paper's benchmark workloads
    collapse to a single class.
    """

    def __init__(
        self,
        workload: Workload,
        attribute_order: "Sequence[str]",
        counter: "ComparisonCounter | None" = None,
        *,
        assume_dva: bool = True,
        batch_kernel: str = "rounds",
    ) -> None:
        from repro.plan.minmax_cuboid import build_minmax_cuboid

        self.workload = workload
        self.query_bits = {q.name: i for i, q in enumerate(workload)}
        groups: dict[tuple, list[str]] = {}
        for query in workload:
            signature = (
                query.join_condition.name,
                query.left_filters,
                query.right_filters,
            )
            groups.setdefault(signature, []).append(query.name)
        self._groups: list[dict] = []
        self._group_of: dict[str, dict] = {}
        for names in groups.values():
            sub = workload.subset(names)
            cuboid = build_minmax_cuboid(sub)
            plan = SharedCuboidPlan(
                cuboid,
                attribute_order,
                counter=counter,
                assume_dva=assume_dva,
                batch_kernel=batch_kernel,
            )
            local_bit = {name: i for i, name in enumerate(names)}
            group = {
                "names": tuple(names),
                "plan": plan,
                # Local (sub-workload) bit per query name.
                "local_bit": local_bit,
                # When local numbering equals the global one (the common
                # single-group workload), global→local mask translation is
                # a single AND with the group's bit union.
                "identity_bits": all(
                    self.query_bits[name] == bit for name, bit in local_bit.items()
                ),
                "all_bits": np.int64(
                    sum(1 << bit for bit in local_bit.values())
                ),
            }
            self._groups.append(group)
            for name in names:
                self._group_of[name] = group

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def insert(
        self, key: Hashable, vector: np.ndarray, serve_mask: "int | None" = None
    ) -> WorkloadInsertReport:
        """Insert into every group the tuple's lineage touches.

        ``serve_mask`` uses *global* workload query bits; it is translated
        to each group's local numbering.
        """
        report = WorkloadInsertReport(key=key)
        for group in self._groups:
            local_mask = 0
            for name in group["names"]:
                if serve_mask is None or (serve_mask >> self.query_bits[name]) & 1:
                    local_mask |= 1 << group["local_bit"][name]
            if local_mask == 0:
                continue
            plan: SharedCuboidPlan = group["plan"]
            sub_report = plan.insert(key, vector, local_mask)
            for name in group["names"]:
                mask = plan.query_mask(name)
                # A tuple may share a cuboid node with queries outside its
                # own lineage and evict their candidates there; admissions
                # only count for queries the tuple actually serves.
                evicted = sub_report.evicted_by_mask.get(mask)
                if evicted:
                    report.evicted.setdefault(name, []).extend(evicted)
                if (local_mask >> group["local_bit"][name]) & 1:
                    if mask in sub_report.admitted_masks:
                        report.admitted.add(name)
        return report

    def insert_batch(
        self,
        keys: "Sequence[Hashable]",
        vectors: np.ndarray,
        serve_masks: "np.ndarray | None" = None,
    ) -> "list[WorkloadInsertReport]":
        """Batch form of :meth:`insert`; one report per tuple, in order."""
        vecs = np.asarray(vectors, dtype=float)
        n = len(keys)
        reports = [WorkloadInsertReport(key=key) for key in keys]
        if n == 0:
            return reports
        serve = (
            np.asarray(serve_masks, dtype=np.int64)
            if serve_masks is not None
            else None
        )
        for group in self._groups:
            local_masks = np.zeros(n, dtype=np.int64)
            for name in group["names"]:
                bit = np.int64(1) << group["local_bit"][name]
                if serve is None:
                    local_masks |= bit
                else:
                    local_masks |= np.where(
                        (serve >> self.query_bits[name]) & 1, bit, np.int64(0)
                    )
            if not np.any(local_masks):
                continue
            plan: SharedCuboidPlan = group["plan"]
            if plan.batch_kernel == "replay":
                # Replay commit kernel (docs/ARCHITECTURE.md §11): same
                # window calls and charges, but the per-tuple × per-query
                # scatter is replaced by per-query array translation over
                # the admitted-bits column and sparse eviction results.
                # Report contents are identical to the scatter loop below.
                admitted_bits, evicted_arr = plan.insert_batch_arrays(
                    keys, vecs, local_masks
                )
                for name in group["names"]:
                    mask = plan.query_mask(name)
                    evictions = evicted_arr.get(mask)
                    if evictions:
                        for i, keys_out in evictions.items():
                            reports[i].evicted.setdefault(name, []).extend(
                                keys_out
                            )
                    posbit = plan.node_bit(mask)
                    bit = np.int64(1) << group["local_bit"][name]
                    rows = np.flatnonzero(
                        ((admitted_bits & posbit) != 0)
                        & ((local_masks & bit) != 0)
                    )
                    for i in rows.tolist():
                        reports[i].admitted.add(name)
                continue
            sub_reports = plan.insert_batch(keys, vecs, local_masks)
            for i, sub in enumerate(sub_reports):
                for name in group["names"]:
                    mask = plan.query_mask(name)
                    evicted = sub.evicted_by_mask.get(mask)
                    if evicted:
                        reports[i].evicted.setdefault(name, []).extend(evicted)
                    if (int(local_masks[i]) >> group["local_bit"][name]) & 1:
                        if mask in sub.admitted_masks:
                            reports[i].admitted.add(name)
        return reports

    def insert_batch_columnar(
        self,
        keys: "Sequence[Hashable]",
        vectors: np.ndarray,
        serve_masks: "np.ndarray | None" = None,
    ) -> "tuple[dict[str, np.ndarray], dict[str, list[Hashable]]]":
        """:meth:`insert_batch` without per-tuple report objects.

        Same group walk, same window calls, same charged comparisons as
        :meth:`insert_batch` — but the result is returned per *query*:
        a row-index array of this batch's admissions (rows into
        ``vectors``/``keys``) and a flat list of evicted keys.  Queries
        with no admissions/evictions are simply absent.  This is the plan
        half of the executor's columnar commit (docs/ARCHITECTURE.md
        §12); each query belongs to exactly one group, so the per-group
        results never need merging.
        """
        vecs = np.asarray(vectors, dtype=float)
        n = len(keys)
        admitted_rows: "dict[str, np.ndarray]" = {}
        evicted_keys: "dict[str, list[Hashable]]" = {}
        if n == 0:
            return admitted_rows, evicted_keys
        serve = (
            np.asarray(serve_masks, dtype=np.int64)
            if serve_masks is not None
            else None
        )
        for group in self._groups:
            if serve is None:
                local_masks = np.full(n, group["all_bits"], dtype=np.int64)
            elif group["identity_bits"]:
                # Single-group workloads: global bits *are* local bits.
                local_masks = serve & group["all_bits"]
            else:
                local_masks = np.zeros(n, dtype=np.int64)
                for name in group["names"]:
                    bit = np.int64(1) << group["local_bit"][name]
                    local_masks |= np.where(
                        (serve >> self.query_bits[name]) & 1, bit, np.int64(0)
                    )
            if not np.any(local_masks):
                continue
            plan: SharedCuboidPlan = group["plan"]
            admitted_bits, evicted_arr = plan.insert_batch_arrays(
                keys, vecs, local_masks
            )
            for name in group["names"]:
                mask = plan.query_mask(name)
                evictions = evicted_arr.get(mask)
                if evictions:
                    out = evicted_keys.setdefault(name, [])
                    for keys_out in evictions.values():
                        out.extend(keys_out)
                posbit = plan.node_bit(mask)
                bit = np.int64(1) << group["local_bit"][name]
                rows = np.flatnonzero(
                    ((admitted_bits & posbit) != 0)
                    & ((local_masks & bit) != 0)
                )
                if rows.size:
                    admitted_rows[name] = rows
        return admitted_rows, evicted_keys

    def is_candidate(self, query_name: str, key: Hashable) -> bool:
        return self._group_of[query_name]["plan"].is_candidate(query_name, key)

    def current_skyline(self, query_name: str) -> "list[Hashable]":
        return self._group_of[query_name]["plan"].current_skyline(query_name)


__all__ = [
    "InsertReport",
    "SharedCuboidPlan",
    "WorkloadInsertReport",
    "WorkloadPlan",
]
