"""The shared min-max cuboid plan (Section 4.1, Definition 7, Figure 6).

Of the ``2^d - 1`` subspaces in the full skycube, the cuboid keeps only
those that earn their place.  A subspace ``U`` (serving at least one query)
is kept iff one of Definition 7's conditions holds:

1. ``|U| = 1`` or ``U`` serves more than one query;
2. no strict superset ``V`` exists with ``Q_Serve(U) subset-of Q_Serve(V)``
   (``U`` is maximal for the queries it serves);
3. ``U`` is the full skyline-dimension set of some workload query.

For the Figure 1 workload this yields exactly Figure 6's three levels:
all four singletons, ``{d1,d2}`` and ``{d2,d3}``, and the two 3-d query
spaces — the minimal subspace set that still maximises sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.plan.lattice import SubspaceLattice
from repro.query.workload import Workload


@dataclass(frozen=True)
class CuboidNode:
    """One retained subspace with its plan-internal wiring."""

    mask: int
    level: int
    qserve: int
    #: Masks of this node's cuboid children: retained strict subsets with no
    #: retained subspace strictly between them and this node.  Child results
    #: seed this node's skyline evaluation (Theorem 1 / Corollary 1).
    children: tuple[int, ...]
    #: Which Definition 7 conditions admitted this node (for explainability).
    reasons: tuple[int, ...]


@dataclass(frozen=True)
class MinMaxCuboid:
    """The pruned subspace lattice CAQE evaluates skylines over."""

    workload: Workload
    lattice: SubspaceLattice
    nodes: "dict[int, CuboidNode]" = field(repr=False)
    #: Mask of each query's full preference subspace, by query name.
    query_nodes: "dict[str, int]"

    @property
    def masks(self) -> "list[int]":
        """All retained masks in bottom-up evaluation order."""
        return sorted(self.nodes, key=lambda m: (m.bit_count(), m))

    @property
    def levels(self) -> "dict[int, list[int]]":
        """Masks grouped by the paper's level numbering (|U| - 1)."""
        out: dict[int, list[int]] = {}
        for mask in self.masks:
            out.setdefault(mask.bit_count() - 1, []).append(mask)
        return out

    def node(self, mask: int) -> CuboidNode:
        try:
            return self.nodes[mask]
        except KeyError:
            raise PlanError(f"subspace mask {mask:#x} is not in the min-max cuboid") from None

    def node_for_query(self, query_name: str) -> CuboidNode:
        return self.node(self.query_nodes[query_name])

    def __len__(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        """Figure 6-style textual rendering, one level per line."""
        table = self.lattice.table
        lines = []
        for level, masks in sorted(self.levels.items()):
            rendered = "  ".join(table.label(m) for m in masks)
            lines.append(f"level {level}: {rendered}")
        return "\n".join(lines)


def build_minmax_cuboid(workload: Workload) -> MinMaxCuboid:
    """Apply Definition 7 to the workload's full subspace lattice."""
    lattice = SubspaceLattice(workload)
    table = lattice.table
    query_masks = lattice.query_masks
    query_mask_set = set(query_masks)

    retained: dict[int, tuple[int, ...]] = {}
    for mask in lattice.masks:
        node = lattice.node(mask)
        if node.qserve == 0:
            continue
        reasons: list[int] = []
        if table.size(mask) == 1 or node.serves_count() > 1:
            reasons.append(1)
        has_absorbing_superset = any(
            other != mask
            and table.is_subset(mask, other)
            and (node.qserve & lattice.qserve(other)) == node.qserve
            for other in lattice.masks
            if lattice.qserve(other) != 0
        )
        if not has_absorbing_superset:
            reasons.append(2)
        if mask in query_mask_set:
            reasons.append(3)
        if reasons:
            retained[mask] = tuple(reasons)

    # Wire children: for each retained node, the retained strict subsets not
    # themselves below another retained strict subset of this node.
    masks_sorted = sorted(retained, key=lambda m: (m.bit_count(), m))
    nodes: dict[int, CuboidNode] = {}
    for mask in masks_sorted:
        subsets = [
            m for m in masks_sorted if m != mask and table.is_subset(m, mask)
        ]
        maximal = [
            m
            for m in subsets
            if not any(
                other != m and table.is_subset(m, other) for other in subsets
            )
        ]
        nodes[mask] = CuboidNode(
            mask=mask,
            level=mask.bit_count() - 1,
            qserve=lattice.qserve(mask),
            children=tuple(sorted(maximal)),
            reasons=retained[mask],
        )

    query_nodes = {
        query.name: query_masks[qi] for qi, query in enumerate(workload)
    }
    for name, mask in query_nodes.items():
        if mask not in nodes:
            raise PlanError(
                f"internal error: query {name!r}'s preference subspace missing "
                "from the cuboid (Definition 7 condition 3 guarantees it)"
            )
    return MinMaxCuboid(
        workload=workload, lattice=lattice, nodes=nodes, query_nodes=query_nodes
    )


__all__ = ["CuboidNode", "MinMaxCuboid", "build_minmax_cuboid"]
