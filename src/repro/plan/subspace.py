"""Bitmask representation of skyline subspaces.

The min-max cuboid and the coarse skyline manipulate many subspaces of the
workload's output dimensions; representing a subspace as a bitmask over a
fixed dimension order makes subset tests and enumeration O(1) bit-ops.
:class:`SubspaceTable` pins down that order for one workload.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PlanError


class SubspaceTable:
    """Bijective mapping between dimension-name sets and bitmasks."""

    __slots__ = ("dims", "_bit_of")

    def __init__(self, dims: "tuple[str, ...]") -> None:
        if not dims:
            raise PlanError("subspace table needs at least one dimension")
        if len(set(dims)) != len(dims):
            raise PlanError(f"duplicate dimensions: {dims}")
        self.dims = tuple(dims)
        self._bit_of = {name: i for i, name in enumerate(dims)}

    @property
    def dimensions(self) -> int:
        return len(self.dims)

    @property
    def full_mask(self) -> int:
        return (1 << len(self.dims)) - 1

    def mask(self, names: Iterable[str]) -> int:
        out = 0
        for name in names:
            try:
                out |= 1 << self._bit_of[name]
            except KeyError:
                raise PlanError(
                    f"dimension {name!r} not in subspace table {self.dims}"
                ) from None
        if out == 0:
            raise PlanError("empty subspace")
        return out

    def names(self, mask: int) -> "tuple[str, ...]":
        self._check(mask)
        return tuple(d for i, d in enumerate(self.dims) if (mask >> i) & 1)

    def positions(self, mask: int) -> "tuple[int, ...]":
        """Bit positions set in ``mask`` (column indices in dim order)."""
        self._check(mask)
        return tuple(i for i in range(len(self.dims)) if (mask >> i) & 1)

    def size(self, mask: int) -> int:
        self._check(mask)
        return mask.bit_count()

    def is_subset(self, inner: int, outer: int) -> bool:
        self._check(inner)
        self._check(outer)
        return (inner & outer) == inner

    def strict_subsets_of(self, mask: int) -> "list[int]":
        """All non-empty strict subsets (ascending popcount then value)."""
        self._check(mask)
        bits = self.positions(mask)
        subsets: list[int] = []
        for code in range(1, (1 << len(bits)) - 1):
            sub = 0
            for i, bit in enumerate(bits):
                if (code >> i) & 1:
                    sub |= 1 << bit
            subsets.append(sub)
        return sorted(subsets, key=lambda m: (m.bit_count(), m))

    def immediate_children(self, mask: int) -> "list[int]":
        """Masks obtained by dropping exactly one dimension (non-empty only)."""
        self._check(mask)
        out = []
        for pos in self.positions(mask):
            child = mask & ~(1 << pos)
            if child:
                out.append(child)
        return out

    def label(self, mask: int) -> str:
        return "{" + ", ".join(self.names(mask)) + "}"

    def _check(self, mask: int) -> None:
        if mask <= 0 or mask > self.full_mask:
            raise PlanError(
                f"mask {mask:#x} out of range for {self.dimensions}-dim table"
            )


__all__ = ["SubspaceTable"]
