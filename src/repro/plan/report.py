"""Workload sharing introspection.

Quantifies how much execution sharing a workload admits before running
anything: which queries overlap in which subspaces, how much the min-max
cuboid shrinks the full skycube, and how tuple-level state will be grouped.
Used by examples and handy when designing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.lattice import SubspaceLattice
from repro.plan.minmax_cuboid import build_minmax_cuboid
from repro.query.workload import Workload


@dataclass(frozen=True)
class SharingReport:
    """Static sharing characteristics of one workload."""

    query_count: int
    skyline_dimensions: int
    #: Subspaces in the full lattice (2^d - 1).
    lattice_size: int
    #: Subspaces the min-max cuboid retains.
    cuboid_size: int
    #: Subspaces serving two or more queries — where comparison sharing pays.
    shared_subspaces: int
    #: (query, query) pairs with at least one common skyline dimension.
    overlapping_pairs: int
    #: Tuple-level plan groups (distinct (join condition, selections)).
    plan_groups: int

    @property
    def cuboid_reduction(self) -> float:
        """Fraction of the lattice the cuboid prunes away."""
        if self.lattice_size == 0:
            return 0.0
        return 1.0 - self.cuboid_size / self.lattice_size

    def describe(self) -> str:
        lines = [
            f"queries: {self.query_count} over {self.skyline_dimensions} skyline dims",
            f"subspace lattice: {self.lattice_size}; min-max cuboid: "
            f"{self.cuboid_size} ({self.cuboid_reduction:.0%} pruned)",
            f"subspaces serving >= 2 queries: {self.shared_subspaces}",
            f"query pairs with overlapping dims: {self.overlapping_pairs}",
            f"tuple-level plan groups: {self.plan_groups}",
        ]
        return "\n".join(lines)


def sharing_report(workload: Workload) -> SharingReport:
    """Analyse the sharing structure of ``workload``."""
    lattice = SubspaceLattice(workload)
    cuboid = build_minmax_cuboid(workload)
    shared = sum(
        1 for node in lattice if node.serves_count() >= 2
    )
    queries = list(workload)
    overlapping = sum(
        1
        for i in range(len(queries))
        for j in range(i + 1, len(queries))
        if set(queries[i].preference.dims) & set(queries[j].preference.dims)
    )
    groups = {
        (q.join_condition.name, q.left_filters, q.right_filters) for q in queries
    }
    return SharingReport(
        query_count=len(workload),
        skyline_dimensions=lattice.table.dimensions,
        lattice_size=len(lattice),
        cuboid_size=len(cuboid),
        shared_subspaces=shared,
        overlapping_pairs=overlapping,
        plan_groups=len(groups),
    )


__all__ = ["SharingReport", "sharing_report"]
