"""The full subspace lattice (the skycube of Figure 5, as a plan object).

Enumerates every non-empty subspace of the workload's skyline dimensions
with the set of queries each serves (Definition 6's ``Q_Serve``).  The
min-max cuboid (Figure 6) is the pruned version built on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import PlanError
from repro.plan.subspace import SubspaceTable
from repro.query.workload import Workload


@dataclass(frozen=True)
class LatticeNode:
    """One subspace with the queries it serves."""

    mask: int
    level: int                 # |U| - 1, matching the paper's level numbering
    #: Bitmask over workload query positions: bit i set iff this subspace
    #: serves workload.queries[i] (Definition 6: U subset-of P_i).
    qserve: int

    def serves_count(self) -> int:
        return self.qserve.bit_count()


class SubspaceLattice:
    """All ``2^d - 1`` subspaces of a workload's skyline dimensions."""

    def __init__(self, workload: Workload) -> None:
        dims = workload.skyline_dims
        if not dims:
            raise PlanError("workload has no skyline dimensions")
        self.workload = workload
        self.table = SubspaceTable(dims)
        self.query_masks: tuple[int, ...] = tuple(
            self.table.mask(q.preference.dims) for q in workload
        )
        nodes: dict[int, LatticeNode] = {}
        for mask in range(1, self.table.full_mask + 1):
            qserve = 0
            for qi, pref_mask in enumerate(self.query_masks):
                if (mask & pref_mask) == mask:
                    qserve |= 1 << qi
            nodes[mask] = LatticeNode(
                mask=mask, level=mask.bit_count() - 1, qserve=qserve
            )
        self._nodes = nodes

    def node(self, mask: int) -> LatticeNode:
        try:
            return self._nodes[mask]
        except KeyError:
            raise PlanError(f"no lattice node for mask {mask:#x}") from None

    def qserve(self, mask: int) -> int:
        return self.node(mask).qserve

    def serving_queries(self, mask: int) -> "tuple[str, ...]":
        qserve = self.qserve(mask)
        return tuple(
            q.name for qi, q in enumerate(self.workload) if (qserve >> qi) & 1
        )

    @property
    def masks(self) -> "list[int]":
        return sorted(self._nodes, key=lambda m: (m.bit_count(), m))

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> "Iterator[LatticeNode]":
        return (self._nodes[m] for m in self.masks)


__all__ = ["LatticeNode", "SubspaceLattice"]
