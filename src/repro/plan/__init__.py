"""Shared query plans: subspace lattice and the min-max cuboid (Section 4.1)."""

from repro.plan.lattice import LatticeNode, SubspaceLattice
from repro.plan.minmax_cuboid import CuboidNode, MinMaxCuboid, build_minmax_cuboid
from repro.plan.report import SharingReport, sharing_report
from repro.plan.shared_plan import (
    InsertReport,
    SharedCuboidPlan,
    WorkloadInsertReport,
    WorkloadPlan,
)
from repro.plan.subspace import SubspaceTable

__all__ = [
    "CuboidNode",
    "InsertReport",
    "LatticeNode",
    "MinMaxCuboid",
    "SharedCuboidPlan",
    "SharingReport",
    "SubspaceLattice",
    "sharing_report",
    "SubspaceTable",
    "WorkloadInsertReport",
    "WorkloadPlan",
    "build_minmax_cuboid",
]
