"""Registry of execution strategies for the experiment harness.

Maps the names used in the paper's figures to strategy factories, and
renders the Table 3 feature matrix from each strategy's declared
capabilities.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import Capabilities, ExecutionStrategy
from repro.baselines.jfsl import JFSL
from repro.baselines.progxe import ProgXePlus
from repro.baselines.roundrobin import RoundRobin
from repro.baselines.sjfsl import SJFSL
from repro.baselines.ssmj import SSMJ
from repro.core.caqe import CAQE, CAQEConfig
from repro.errors import BenchmarkError

#: The five techniques compared throughout Section 7's figures.
FIGURE_STRATEGIES = ("CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ")

#: Table 3, as shipped: the feature matrix of every runnable technique.
TABLE3: "dict[str, Capabilities]" = {
    "CAQE": Capabilities(
        skyline_over_join=True,
        multiple_queries=True,
        progressive=True,
        supports_qos=True,
    ),
    "S-JFSL": Capabilities(
        skyline_over_join=True,
        multiple_queries=True,
        progressive=True,
        supports_qos=False,
    ),
    "JFSL": Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=False,
        supports_qos=False,
    ),
    "ProgXe+": Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=True,
        supports_qos=False,
    ),
    "SSMJ": Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=False,
        supports_qos=False,
    ),
    "RoundRobin": Capabilities(
        skyline_over_join=True,
        multiple_queries=True,
        progressive=False,
        supports_qos=False,
    ),
}


def make_strategy(
    name: str,
    config: "CAQEConfig | None" = None,
) -> ExecutionStrategy:
    """Build a strategy by figure name; ``config`` tunes the shared knobs."""
    cfg = config or CAQEConfig()
    factories: dict[str, Callable[[], ExecutionStrategy]] = {
        "CAQE": lambda: CAQE(cfg),
        "S-JFSL": lambda: SJFSL(cfg),
        "JFSL": lambda: JFSL(cfg.cost_model),
        "ProgXe+": lambda: ProgXePlus(cfg),
        "SSMJ": lambda: SSMJ(cfg.cost_model),
        "RoundRobin": lambda: RoundRobin(cfg.cost_model),
    }
    try:
        return factories[name]()
    except KeyError:
        raise BenchmarkError(
            f"unknown strategy {name!r}; expected one of {sorted(factories)}"
        ) from None


def all_strategy_names() -> "tuple[str, ...]":
    return (*FIGURE_STRATEGIES, "RoundRobin")


def capabilities_of(name: str) -> Capabilities:
    try:
        return TABLE3[name]
    except KeyError:
        raise BenchmarkError(f"unknown strategy {name!r}") from None


def feature_matrix() -> "dict[str, Capabilities]":
    """Table 3's feature matrix for every runnable technique."""
    return dict(TABLE3)


__all__ = [
    "FIGURE_STRATEGIES",
    "TABLE3",
    "all_strategy_names",
    "capabilities_of",
    "feature_matrix",
    "make_strategy",
]
