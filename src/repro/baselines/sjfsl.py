"""S-JFSL — the shared skyline approach the paper proposes as a baseline.

Section 7.1: "we propose a shared skyline approach (S-JFSL) that pipelines
the join tuples over our min-max cuboid plan".  S-JFSL therefore gets the
*sharing* benefits of CAQE — joins evaluated once for all queries, skyline
comparisons shared through the cuboid, progressive output of results that
can no longer be invalidated — but none of the *contract-driven* machinery:
regions are pipelined in plain scan order, no look-ahead pruning discards
dominated regions, no dependency graph orders work, and no satisfaction
feedback re-weights queries.

Comparing S-JFSL against CAQE therefore isolates exactly the contribution
of contract-driven optimization (Figures 9 and 10).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import Capabilities, ExecutionStrategy
from repro.contracts.base import Contract
from repro.core.caqe import CAQE, CAQEConfig, RunResult
from repro.query.workload import Workload
from repro.relation import Relation


class SJFSL(ExecutionStrategy):
    """Shared min-max-cuboid pipeline without contract-driven ordering."""

    name = "S-JFSL"
    capabilities = Capabilities(
        skyline_over_join=True,
        multiple_queries=True,
        progressive=True,
        supports_qos=False,
    )

    def __init__(self, config: "CAQEConfig | None" = None):
        base = config or CAQEConfig()
        self.config = replace(
            base,
            objective="scan",
            enable_feedback=False,
            enable_depgraph=False,
            enable_coarse_pruning=False,
            enable_tuple_discard=False,
            use_priority_weights=False,
        )

    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        self._check_inputs(workload, contracts)
        return CAQE(self.config).run(left, right, workload, contracts)


__all__ = ["SJFSL"]
