"""SSMJ — Skyline Sort-Merge Join (after Jin et al. [14]).

A smarter single-query baseline than JFSL: before joining, each side is
grouped by its join-key and *locally pruned* — within a join group, a tuple
whose contribution to the query's skyline dimensions is dominated by
another tuple of the same group can never produce a skyline join result
(with identical join partners, the dominating tuple's join results dominate
its).  The surviving tuples are joined, and the final skyline is computed
with SFS (sort-filter-skyline) so the merge phase performs far fewer
comparisons than BNL.

Local pruning is sound here because every mapping function is monotone in
its inputs and each side contributes disjoint inputs: if ``l2 <= l1`` on
all left-side inputs of the query's preference dimensions (strict
somewhere), then for any partner ``r``, ``(l2, r)`` dominates ``(l1, r)``.

Like the paper's sort-based techniques (Table 3) SSMJ is *not*
progressive: each query's results are reported only when its evaluation
finishes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Capabilities,
    ExecutionStrategy,
    build_run_result,
    new_stats,
)
from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import RunResult
from repro.core.clock import CostModel
from repro.core.stats import ExecutionStats
from repro.query.evaluate import apply_functions
from repro.query.operators import SkylineJoinQuery
from repro.query.workload import Workload
from repro.relation import Relation
from repro.skyline.sfs import sfs_order
from repro.skyline.window import SkylineWindow


class SSMJ(ExecutionStrategy):
    """Per-query sort-merge skyline join, blocking output."""

    name = "SSMJ"
    capabilities = Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=False,
        supports_qos=False,
    )

    def __init__(self, cost_model: "CostModel | None" = None):
        self.cost_model = cost_model

    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        self._check_inputs(workload, contracts)
        workload.validate(left, right)
        stats = new_stats(self.cost_model)
        logs: dict[str, ResultLog] = {}
        reported: dict[str, set[tuple[int, int]]] = {}
        for query in workload.by_priority():
            pairs = _evaluate_ssmj(query, left, right, stats)
            log = ResultLog(query.name)
            now = stats.clock.now()
            stats.record_outputs(len(pairs))
            log.report_batch(sorted(pairs), now)
            logs[query.name] = log
            reported[query.name] = pairs
        return build_run_result(workload, contracts, stats, logs, reported)


def _side_inputs(query: SkylineJoinQuery, side: str) -> "tuple[str, ...]":
    """Input attributes (for one side) feeding the query's skyline dims."""
    seen: dict[str, None] = {}
    for dim in query.preference.dims:
        fn = query.function_for(dim)
        for attr in fn.left_inputs if side == "left" else fn.right_inputs:
            seen.setdefault(attr, None)
    return tuple(seen)


def _local_prune(
    relation: Relation,
    join_attr: str,
    inputs: "tuple[str, ...]",
    stats: ExecutionStats,
    filters: "tuple" = (),
) -> "dict[object, list[int]]":
    """Select, group rows by join key; keep each group's local skyline."""
    from repro.query.selection import rows_passing

    stats.record_join_probes(relation.cardinality)  # one scan to group
    passing = rows_passing(filters, relation) if filters else None
    groups: dict[object, list[int]] = {}
    values = relation.column(join_attr)
    for row in range(relation.cardinality):
        if passing is not None and not passing[row]:
            continue
        key = values[row].item() if hasattr(values[row], "item") else values[row]
        groups.setdefault(key, []).append(row)
    if not inputs:
        return groups  # this side does not influence the skyline dims
    matrix = np.column_stack([relation.column(a) for a in inputs]).astype(float)
    pruned: dict[object, list[int]] = {}
    for key, rows in groups.items():
        window = SkylineWindow(counter=stats.comparison_counter)
        window.insert_batch(rows, matrix[rows])
        pruned[key] = sorted(window.keys)
    return pruned


def _evaluate_ssmj(
    query: SkylineJoinQuery,
    left: Relation,
    right: Relation,
    stats: ExecutionStats,
) -> "set[tuple[int, int]]":
    condition = query.join_condition
    left_groups = _local_prune(
        left, condition.left_attr, _side_inputs(query, "left"), stats,
        filters=query.left_filters,
    )
    right_groups = _local_prune(
        right, condition.right_attr, _side_inputs(query, "right"), stats,
        filters=query.right_filters,
    )
    left_out: list[int] = []
    right_out: list[int] = []
    for key, left_rows in left_groups.items():
        right_rows = right_groups.get(key)
        if not right_rows:
            continue
        for lr in left_rows:
            for rr in right_rows:
                left_out.append(lr)
                right_out.append(rr)
    left_idx = np.asarray(left_out, dtype=np.intp)
    right_idx = np.asarray(right_out, dtype=np.intp)
    stats.record_join_results(len(left_idx), mapping_functions=len(query.functions))
    matrix = apply_functions(query.functions, left, right, left_idx, right_idx)
    dims = query.preference.positions(query.output_names)
    window = SkylineWindow(dims=dims, counter=stats.comparison_counter)
    if len(matrix):
        stats.clock.charge_sort(len(matrix))  # the "sort" in sort-merge
        order = np.asarray(sfs_order(matrix, dims), dtype=np.intp)
        window.insert_batch([int(r) for r in order], matrix[order])
    return {
        (int(left_idx[row]), int(right_idx[row])) for row in window.keys
    }


__all__ = ["SSMJ"]
