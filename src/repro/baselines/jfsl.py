"""JFSL — Join First, Skyline Later (after Koudas et al. [17]).

The paper's non-sharing, non-progressive baseline: each query is processed
independently, in priority order.  For each query the full equi-join is
materialised, the mapping functions applied, and a block-nested-loop
skyline computed over all join results; only then is the query's complete
answer reported.  Nothing is shared across queries — the same join is
recomputed once per query, which is exactly the redundancy Figure 10a/10b
charges against it.
"""

from __future__ import annotations

from repro.baselines.base import (
    Capabilities,
    ExecutionStrategy,
    build_run_result,
    new_stats,
)
from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import RunResult
from repro.core.clock import CostModel
from repro.core.stats import ExecutionStats
from repro.query.evaluate import apply_functions, hash_join
from repro.query.operators import SkylineJoinQuery
from repro.query.workload import Workload
from repro.relation import Relation
from repro.skyline.window import SkylineWindow


class JFSL(ExecutionStrategy):
    """Per-query join-then-skyline, blocking output."""

    name = "JFSL"
    capabilities = Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=False,
        supports_qos=False,
    )

    def __init__(self, cost_model: "CostModel | None" = None):
        self.cost_model = cost_model

    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        self._check_inputs(workload, contracts)
        workload.validate(left, right)
        stats = new_stats(self.cost_model)
        logs: dict[str, ResultLog] = {}
        reported: dict[str, set[tuple[int, int]]] = {}
        for query in workload.by_priority():
            pairs = _evaluate_blocking(query, left, right, stats)
            log = ResultLog(query.name)
            now = stats.clock.now()
            stats.record_outputs(len(pairs))
            log.report_batch(sorted(pairs), now)
            logs[query.name] = log
            reported[query.name] = pairs
        return build_run_result(workload, contracts, stats, logs, reported)


def _evaluate_blocking(
    query: SkylineJoinQuery,
    left: Relation,
    right: Relation,
    stats: ExecutionStats,
) -> "set[tuple[int, int]]":
    """Select + join + project + BNL skyline for one query, fully charged."""
    from repro.query.selection import rows_passing

    stats.record_join_probes(left.cardinality + right.cardinality)
    left_idx, right_idx = hash_join(left, right, query.join_condition)
    if query.has_filters:
        keep = (
            rows_passing(query.left_filters, left)[left_idx]
            & rows_passing(query.right_filters, right)[right_idx]
        )
        left_idx, right_idx = left_idx[keep], right_idx[keep]
    stats.record_join_results(len(left_idx), mapping_functions=len(query.functions))
    matrix = apply_functions(query.functions, left, right, left_idx, right_idx)
    dims = query.preference.positions(query.output_names)
    window = SkylineWindow(dims=dims, counter=stats.comparison_counter)
    # Batch insertion is charge- and result-identical to the row loop.
    window.insert_batch(list(range(len(matrix))), matrix)
    return {
        (int(left_idx[row]), int(right_idx[row])) for row in window.keys
    }


__all__ = ["JFSL"]
