"""Time-shared multi-query processing (after Narayanan & Waas [22]).

The paper's Section 1.3 describes the *time-shared approach*: total
processing time is divided into slices allocated to queries round-robin,
with no sharing of intermediate results.  The paper dismisses it as
impractical for skyline-over-join workloads; we implement it as an
ablation baseline so the claim can be demonstrated rather than assumed.

Each query runs its own JFSL-style evaluation (join, project, BNL
skyline), expressed as a generator of fixed-size work quanta; the
scheduler interleaves quanta round-robin on the shared virtual clock.  A
query reports its (complete, blocking) answer when its generator
finishes — which, under round-robin, is near the *end* of the whole
workload for every query.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.baselines.base import (
    Capabilities,
    ExecutionStrategy,
    build_run_result,
    new_stats,
)
from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import RunResult
from repro.core.clock import CostModel
from repro.core.stats import ExecutionStats
from repro.query.evaluate import apply_functions, hash_join
from repro.query.operators import SkylineJoinQuery
from repro.query.workload import Workload
from repro.relation import Relation
from repro.skyline.window import SkylineWindow

#: Join results materialised / skyline inserts performed per time slice.
DEFAULT_QUANTUM = 64


class RoundRobin(ExecutionStrategy):
    """Time-sliced independent query processing (no sharing)."""

    name = "RoundRobin"
    capabilities = Capabilities(
        skyline_over_join=True,
        multiple_queries=True,
        progressive=False,
        supports_qos=False,
    )

    def __init__(
        self,
        cost_model: "CostModel | None" = None,
        quantum: int = DEFAULT_QUANTUM,
    ):
        self.cost_model = cost_model
        self.quantum = quantum

    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        self._check_inputs(workload, contracts)
        workload.validate(left, right)
        stats = new_stats(self.cost_model)
        logs = {q.name: ResultLog(q.name) for q in workload}
        reported: dict[str, set[tuple[int, int]]] = {}
        tasks: list[tuple[SkylineJoinQuery, Iterator]] = [
            (q, _query_task(q, left, right, stats, self.quantum))
            for q in workload.by_priority()
        ]
        while tasks:
            still_running: list[tuple[SkylineJoinQuery, Iterator]] = []
            for query, task in tasks:
                try:
                    next(task)
                    still_running.append((query, task))
                except StopIteration as stop:
                    pairs: set[tuple[int, int]] = stop.value
                    now = stats.clock.now()
                    stats.record_outputs(len(pairs))
                    logs[query.name].report_batch(sorted(pairs), now)
                    reported[query.name] = pairs
            tasks = still_running
        return build_run_result(workload, contracts, stats, logs, reported)


def _query_task(
    query: SkylineJoinQuery,
    left: Relation,
    right: Relation,
    stats: ExecutionStats,
    quantum: int,
):
    """Generator yielding once per time slice; returns the skyline pairs."""
    stats.record_join_probes(left.cardinality + right.cardinality)
    yield
    left_idx, right_idx = hash_join(left, right, query.join_condition)
    if query.has_filters:
        from repro.query.selection import rows_passing

        keep = (
            rows_passing(query.left_filters, left)[left_idx]
            & rows_passing(query.right_filters, right)[right_idx]
        )
        left_idx, right_idx = left_idx[keep], right_idx[keep]
    # Materialise join results one quantum at a time.
    for start in range(0, len(left_idx), quantum):
        chunk = min(quantum, len(left_idx) - start)
        stats.record_join_results(chunk, mapping_functions=len(query.functions))
        yield
    matrix = apply_functions(query.functions, left, right, left_idx, right_idx)
    dims = query.preference.positions(query.output_names)
    window = SkylineWindow(dims=dims, counter=stats.comparison_counter)
    for start in range(0, len(matrix), quantum):
        stop = min(start + quantum, len(matrix))
        window.insert_batch(list(range(start, stop)), matrix[start:stop])
        yield
    return {
        (int(left_idx[row]), int(right_idx[row])) for row in window.keys
    }


__all__ = ["DEFAULT_QUANTUM", "RoundRobin"]
