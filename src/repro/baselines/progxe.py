"""ProgXe+ — progressive result generation, one query at a time ([27]).

ProgXe (by the same authors as CAQE) partitions the *output space* of a
single skyline-over-join query and processes output regions in a
count-driven order — maximising how many results can be emitted early —
with progressive reporting.  It neither shares work across queries nor
knows about contracts: queries run sequentially in priority order, each on
its own partitioning, accumulating one virtual clock.

We realise it with the CAQE machinery restricted to a single-query
workload and the ``count`` scheduling objective (regions ranked purely by
progressive-output estimates, no contract utilities, no satisfaction
feedback) — which is precisely the subset of CAQE that ProgXe pioneered.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import (
    Capabilities,
    ExecutionStrategy,
    build_run_result,
    new_stats,
)
from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import CAQE, CAQEConfig, RunResult
from repro.core.clock import CostModel
from repro.query.workload import Workload
from repro.relation import Relation


class ProgXePlus(ExecutionStrategy):
    """Per-query progressive output-space execution, count-driven."""

    name = "ProgXe+"
    capabilities = Capabilities(
        skyline_over_join=True,
        multiple_queries=False,
        progressive=True,
        supports_qos=False,
    )

    def __init__(self, config: "CAQEConfig | None" = None):
        base = config or CAQEConfig()
        self.config = replace(
            base,
            objective="count",
            enable_feedback=False,
            use_priority_weights=False,
        )

    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        self._check_inputs(workload, contracts)
        workload.validate(left, right)
        stats = new_stats(self.config.cost_model)
        logs: dict[str, ResultLog] = {}
        reported: dict[str, set[tuple[int, int]]] = {}
        engine = CAQE(self.config)
        for query in workload.by_priority():
            single = Workload([query])
            sub = engine.run(
                left, right, single, {query.name: contracts[query.name]}, stats
            )
            logs[query.name] = sub.logs[query.name]
            reported[query.name] = sub.reported[query.name]
        return build_run_result(workload, contracts, stats, logs, reported)


__all__ = ["ProgXePlus"]
