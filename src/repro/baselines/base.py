"""Common infrastructure for the competitor execution strategies (§7.1).

Every strategy — CAQE included — implements the same ``run`` contract and
returns the same :class:`~repro.core.caqe.RunResult`, charging all work to
one shared :class:`~repro.core.stats.ExecutionStats` virtual clock, so the
experiment harness can score and compare them uniformly.

The capability flags mirror the paper's Table 3 feature matrix.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.contracts.base import Contract
from repro.contracts.score import ResultLog, SatisfactionTracker
from repro.core.caqe import RunResult
from repro.core.clock import CostModel
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.query.workload import Workload
from repro.relation import Relation


@dataclass(frozen=True)
class Capabilities:
    """Table 3 columns for one technique."""

    skyline_over_join: bool
    multiple_queries: bool
    progressive: bool
    supports_qos: bool


class ExecutionStrategy(abc.ABC):
    """A workload execution technique comparable against CAQE."""

    name: str = "strategy"
    capabilities: Capabilities = Capabilities(False, False, False, False)

    @abc.abstractmethod
    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> RunResult:
        """Execute the workload, returning logs, stats, and reported sets."""

    def _check_inputs(
        self,
        workload: Workload,
        contracts: "dict[str, Contract]",
    ) -> None:
        missing = [q.name for q in workload if q.name not in contracts]
        if missing:
            raise ExecutionError(f"missing contracts for queries: {missing}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def build_run_result(
    workload: Workload,
    contracts: "dict[str, Contract]",
    stats: ExecutionStats,
    logs: "dict[str, ResultLog]",
    reported: "dict[str, set[tuple[int, int]]]",
) -> RunResult:
    return RunResult(
        workload=workload,
        contracts=dict(contracts),
        logs=logs,
        stats=stats,
        horizon=stats.clock.now(),
        reported=reported,
    )


def empty_tracker(
    workload: Workload, contracts: "dict[str, Contract]"
) -> SatisfactionTracker:
    return SatisfactionTracker(
        contracts, {q.name: 1.0 for q in workload}
    )


def new_stats(cost_model: "CostModel | None") -> ExecutionStats:
    return ExecutionStats.with_cost_model(cost_model or CostModel())


__all__ = [
    "Capabilities",
    "ExecutionStrategy",
    "build_run_result",
    "empty_tracker",
    "new_stats",
]
