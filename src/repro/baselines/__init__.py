"""Competitor execution strategies (Section 7.1) and the Table 3 matrix."""

from repro.baselines.base import Capabilities, ExecutionStrategy
from repro.baselines.jfsl import JFSL
from repro.baselines.progxe import ProgXePlus
from repro.baselines.registry import (
    FIGURE_STRATEGIES,
    TABLE3,
    all_strategy_names,
    capabilities_of,
    feature_matrix,
    make_strategy,
)
from repro.baselines.roundrobin import RoundRobin
from repro.baselines.sjfsl import SJFSL
from repro.baselines.ssmj import SSMJ

__all__ = [
    "Capabilities",
    "ExecutionStrategy",
    "FIGURE_STRATEGIES",
    "JFSL",
    "ProgXePlus",
    "RoundRobin",
    "SJFSL",
    "SSMJ",
    "TABLE3",
    "all_strategy_names",
    "capabilities_of",
    "feature_matrix",
    "make_strategy",
]
