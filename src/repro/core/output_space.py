"""The abstract multi-query output space (Section 5).

MQLA evaluates the workload coarsely over a ``d``-dimensional abstraction
of the *output* of the shared plan, where ``d`` is the total number of
skyline dimensions used across the workload.  :class:`OutputGrid` is that
abstraction: a uniform grid over the output-dimension ranges.  Output
*cells* are grid cells (Table 1's ``O_x``); output *regions* are the
hyper-rectangles a pair of input cells maps onto, expressed as coordinate
boxes over the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

import numpy as np

from repro.errors import ExecutionError

#: Default grid resolution per output dimension.
DEFAULT_DIVISIONS = 8


@dataclass(frozen=True)
class OutputGrid:
    """Uniform grid over the workload's output dimensions."""

    dims: tuple[str, ...]
    lows: tuple[float, ...]
    highs: tuple[float, ...]
    divisions: int = DEFAULT_DIVISIONS

    def __post_init__(self) -> None:
        if not self.dims:
            raise ExecutionError("output grid needs at least one dimension")
        if not (len(self.dims) == len(self.lows) == len(self.highs)):
            raise ExecutionError("output grid dims/lows/highs arity mismatch")
        if self.divisions < 1:
            raise ExecutionError(f"divisions must be >= 1, got {self.divisions}")
        for lo, hi in zip(self.lows, self.highs):
            if lo > hi:
                raise ExecutionError(f"grid lower bound {lo} exceeds upper bound {hi}")

    @property
    def dimensions(self) -> int:
        return len(self.dims)

    def _spans(self) -> np.ndarray:
        lows = np.asarray(self.lows)
        highs = np.asarray(self.highs)
        return np.where(highs > lows, highs - lows, 1.0)

    def coord_of(self, vector: np.ndarray) -> tuple[int, ...]:
        """Grid coordinate of an output point (clamped into range)."""
        vec = np.asarray(vector, dtype=float)
        if len(vec) != self.dimensions:
            raise ExecutionError(
                f"point has {len(vec)} dims, grid has {self.dimensions}"
            )
        rel = (vec - np.asarray(self.lows)) / self._spans()
        coords = np.floor(rel * self.divisions).astype(int)
        coords = np.clip(coords, 0, self.divisions - 1)
        return tuple(int(c) for c in coords)

    def cell_lower(self, coord: "tuple[int, ...]") -> np.ndarray:
        self._check_coord(coord)
        widths = self._spans() / self.divisions
        return np.asarray(self.lows) + np.asarray(coord) * widths

    def cell_upper(self, coord: "tuple[int, ...]") -> np.ndarray:
        self._check_coord(coord)
        widths = self._spans() / self.divisions
        return np.asarray(self.lows) + (np.asarray(coord) + 1) * widths

    def cell_lowers(self, coords: np.ndarray) -> np.ndarray:
        """Lower corners of many cells at once; ``coords`` is ``(n, d)``."""
        widths = self._spans() / self.divisions
        return np.asarray(self.lows) + np.asarray(coords) * widths

    def box_of(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> "tuple[tuple[int, ...], tuple[int, ...]]":
        """Coordinate box (inclusive both ends) covering ``[lower, upper]``."""
        return (self.coord_of(lower), self.coord_of(upper))

    @staticmethod
    def box_cell_count(lo: "tuple[int, ...]", hi: "tuple[int, ...]") -> int:
        count = 1
        for a, b in zip(lo, hi):
            if b < a:
                raise ExecutionError(f"invalid coordinate box: {lo} .. {hi}")
            count *= b - a + 1
        return count

    @staticmethod
    def cells_in_box(
        lo: "tuple[int, ...]", hi: "tuple[int, ...]"
    ) -> "Iterator[tuple[int, ...]]":
        ranges = [range(a, b + 1) for a, b in zip(lo, hi)]
        return product(*ranges)

    def _check_coord(self, coord: "tuple[int, ...]") -> None:
        if len(coord) != self.dimensions:
            raise ExecutionError(
                f"coordinate {coord} has wrong arity for {self.dimensions}-d grid"
            )
        for c in coord:
            if not 0 <= c < self.divisions:
                raise ExecutionError(f"coordinate {coord} outside grid")


def grid_for_cells(
    dims: "tuple[str, ...]",
    lower_bounds: "list[np.ndarray]",
    upper_bounds: "list[np.ndarray]",
    divisions: int = DEFAULT_DIVISIONS,
) -> OutputGrid:
    """Build the output grid spanning a set of region bounds."""
    if not lower_bounds:
        raise ExecutionError("cannot size an output grid with no regions")
    lows = np.min(np.vstack(lower_bounds), axis=0)
    highs = np.max(np.vstack(upper_bounds), axis=0)
    return OutputGrid(
        dims=tuple(dims),
        lows=tuple(float(x) for x in lows),
        highs=tuple(float(x) for x in highs),
        divisions=divisions,
    )


__all__ = ["DEFAULT_DIVISIONS", "OutputGrid", "grid_for_cells"]
