"""The abstract multi-query output space (Section 5).

MQLA evaluates the workload coarsely over a ``d``-dimensional abstraction
of the *output* of the shared plan, where ``d`` is the total number of
skyline dimensions used across the workload.  :class:`OutputGrid` is that
abstraction: a uniform grid over the output-dimension ranges.  Output
*cells* are grid cells (Table 1's ``O_x``); output *regions* are the
hyper-rectangles a pair of input cells maps onto, expressed as coordinate
boxes over the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator

import numpy as np

from repro.errors import ExecutionError

#: Default grid resolution per output dimension.
DEFAULT_DIVISIONS = 8


@dataclass(frozen=True)
class OutputGrid:
    """Uniform grid over the workload's output dimensions."""

    dims: tuple[str, ...]
    lows: tuple[float, ...]
    highs: tuple[float, ...]
    divisions: int = DEFAULT_DIVISIONS
    # Derived geometry caches (see __post_init__); excluded from
    # equality/repr so the grid still compares by its defining fields.
    _lows_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _spans_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _widths_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.dims:
            raise ExecutionError("output grid needs at least one dimension")
        if not (len(self.dims) == len(self.lows) == len(self.highs)):
            raise ExecutionError("output grid dims/lows/highs arity mismatch")
        if self.divisions < 1:
            raise ExecutionError(f"divisions must be >= 1, got {self.divisions}")
        for lo, hi in zip(self.lows, self.highs):
            if lo > hi:
                raise ExecutionError(f"grid lower bound {lo} exceeds upper bound {hi}")
        # Geometry is immutable, so the derived arrays every coordinate
        # computation reads are built once (the dataclass is frozen; the
        # caches are non-field attributes, so equality/hash are untouched).
        lows_arr = np.asarray(self.lows)
        highs_arr = np.asarray(self.highs)
        spans = np.where(highs_arr > lows_arr, highs_arr - lows_arr, 1.0)
        object.__setattr__(self, "_lows_arr", lows_arr)
        object.__setattr__(self, "_spans_arr", spans)
        object.__setattr__(self, "_widths_arr", spans / self.divisions)

    @property
    def dimensions(self) -> int:
        return len(self.dims)

    def _spans(self) -> np.ndarray:
        return self._spans_arr

    def coord_of(self, vector: np.ndarray) -> tuple[int, ...]:
        """Grid coordinate of an output point (clamped into range)."""
        vec = np.asarray(vector, dtype=float)
        if len(vec) != self.dimensions:
            raise ExecutionError(
                f"point has {len(vec)} dims, grid has {self.dimensions}"
            )
        rel = (vec - self._lows_arr) / self._spans_arr
        coords = np.floor(rel * self.divisions).astype(int)
        coords = np.clip(coords, 0, self.divisions - 1)
        return tuple(int(c) for c in coords)

    def coords_of(self, vectors: np.ndarray) -> np.ndarray:
        """:meth:`coord_of` for many points at once; ``vectors`` is ``(n, d)``.

        Identical elementwise float operations to the scalar form, so row
        ``i`` equals ``coord_of(vectors[i])`` bit for bit.
        """
        vecs = np.asarray(vectors, dtype=float)
        if vecs.ndim != 2 or vecs.shape[1] != self.dimensions:
            raise ExecutionError(
                f"points have shape {vecs.shape}, grid has {self.dimensions} dims"
            )
        rel = (vecs - self._lows_arr) / self._spans_arr
        coords = np.floor(rel * self.divisions).astype(int)
        return np.clip(coords, 0, self.divisions - 1)

    def cell_lower(self, coord: "tuple[int, ...]") -> np.ndarray:
        self._check_coord(coord)
        return self._lows_arr + np.asarray(coord) * self._widths_arr

    def cell_upper(self, coord: "tuple[int, ...]") -> np.ndarray:
        self._check_coord(coord)
        return self._lows_arr + (np.asarray(coord) + 1) * self._widths_arr

    def cell_lowers(self, coords: np.ndarray) -> np.ndarray:
        """Lower corners of many cells at once; ``coords`` is ``(n, d)``."""
        return self._lows_arr + np.asarray(coords) * self._widths_arr

    def cell_uppers(self, coords: np.ndarray) -> np.ndarray:
        """Upper corners of many cells at once; ``coords`` is ``(n, d)``.

        Row ``i`` equals ``cell_upper(coords[i])`` bit for bit — the
        broadcast performs the same elementwise operations.
        """
        return self._lows_arr + (np.asarray(coords) + 1) * self._widths_arr

    def box_of(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> "tuple[tuple[int, ...], tuple[int, ...]]":
        """Coordinate box (inclusive both ends) covering ``[lower, upper]``."""
        return (self.coord_of(lower), self.coord_of(upper))

    @staticmethod
    def box_cell_count(lo: "tuple[int, ...]", hi: "tuple[int, ...]") -> int:
        count = 1
        for a, b in zip(lo, hi):
            if b < a:
                raise ExecutionError(f"invalid coordinate box: {lo} .. {hi}")
            count *= b - a + 1
        return count

    @staticmethod
    def cells_in_box(
        lo: "tuple[int, ...]", hi: "tuple[int, ...]"
    ) -> "Iterator[tuple[int, ...]]":
        ranges = [range(a, b + 1) for a, b in zip(lo, hi)]
        return product(*ranges)

    @staticmethod
    def box_coords(
        lo: "tuple[int, ...]", hi: "tuple[int, ...]"
    ) -> np.ndarray:
        """All coordinates of a box as one ``(cells, d)`` array.

        Rows appear in :meth:`cells_in_box`'s (row-major) order.
        """
        axes = [np.arange(a, b + 1, dtype=np.intp) for a, b in zip(lo, hi)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([m.ravel() for m in mesh])

    def _check_coord(self, coord: "tuple[int, ...]") -> None:
        if len(coord) != self.dimensions:
            raise ExecutionError(
                f"coordinate {coord} has wrong arity for {self.dimensions}-d grid"
            )
        for c in coord:
            if not 0 <= c < self.divisions:
                raise ExecutionError(f"coordinate {coord} outside grid")


def grid_for_cells(
    dims: "tuple[str, ...]",
    lower_bounds: "list[np.ndarray]",
    upper_bounds: "list[np.ndarray]",
    divisions: int = DEFAULT_DIVISIONS,
) -> OutputGrid:
    """Build the output grid spanning a set of region bounds."""
    if not lower_bounds:
        raise ExecutionError("cannot size an output grid with no regions")
    lows = np.min(np.vstack(lower_bounds), axis=0)
    highs = np.max(np.vstack(upper_bounds), axis=0)
    return OutputGrid(
        dims=tuple(dims),
        lows=tuple(float(x) for x in lows),
        highs=tuple(float(x) for x in highs),
        divisions=divisions,
    )


__all__ = ["DEFAULT_DIVISIONS", "OutputGrid", "grid_for_cells"]
