"""Coarse-level skyline evaluation (Section 5.2, MQLA step 2).

Region-level dominance over the min-max cuboid, bottom-up: a region that is
non-dominated in a child subspace is — by Theorem 1 — non-dominated in the
parent, so it skips the membership test there (Corollary 1's sharing at the
region granularity).

Dominance between two regions is only meaningful when they serve a common
query (Section 5.2).  Because a region's initial lineage is fixed by its
join condition, candidates at a node partition into equal-lineage groups,
within which full dominance is transitive — so the non-dominated set equals
that of a sequential sorted (SFS-style) pass, and we can compute it with
chunked vectorised matrix tests while *charging* the comparison count the
sequential pass would have performed (each unseeded candidate compares
against the surviving regions that precede it in ascending upper-corner
order; a dominator always precedes its victims in that order).

A region fully dominated at a query's preference subspace can never
contribute to that query and loses the query from its active lineage; a
region dominated for *every* query it served is discarded before
tuple-level processing even starts — MQLA's "avoid redundant work".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.query.workload import Workload
from repro.skyline.dominance import dominance_mask

#: Row-chunk size for the pairwise dominance tests (bounds peak memory).
_CHUNK = 512


@dataclass
class CoarseSkylineResult:
    """Non-dominated region ids per cuboid subspace, plus per-query sets."""

    #: mask -> set of region ids non-dominated over that subspace.
    nondominated: "dict[int, set[int]]"
    #: query name -> region ids that can contribute (the paper's REG(Q_j)).
    reg: "dict[str, set[int]]"
    #: Region ids discarded for every query they served.
    discarded: "set[int]"


def _dominated_by(
    upper_dominators: np.ndarray, lower_candidates: np.ndarray
) -> np.ndarray:
    """For each candidate, is it fully dominated by any of the dominators?"""
    flags = np.zeros(len(lower_candidates), dtype=bool)
    for start in range(0, len(upper_dominators), _CHUNK):
        u = upper_dominators[start : start + _CHUNK]
        flags |= dominance_mask(u, lower_candidates).any(axis=0)
    return flags


def dominated_flags(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """``flags[j]`` true iff some region i fully dominates region j.

    ``lower``/``upper`` are already restricted to the subspace columns.
    Full dominance is transitive, so testing in two passes is complete:
    pass 1 kills most regions against the strongest candidates (smallest
    upper-corner sums); pass 2 resolves the remaining survivors among
    themselves — any dominator eliminated in pass 1 is itself dominated by
    a pass-2 participant.
    """
    n = len(lower)
    if n <= 2 * _CHUNK:
        return _dominated_by(upper, lower)
    order = np.argsort(upper.sum(axis=1), kind="stable")
    strongest = order[:_CHUNK]
    flags = _dominated_by(upper[strongest], lower)
    flags[strongest] = False  # pass 1 cannot settle the strongest set itself
    remaining = np.nonzero(~flags)[0]
    # Pass 1 may mark a "strongest" region's victim whose dominator is later
    # itself dominated — harmless, flags stay correct by transitivity.  Now
    # resolve all still-unflagged regions against each other.
    rem_flags = _dominated_by(upper[remaining], lower[remaining])
    flags[remaining[rem_flags]] = True
    # Strongest regions were exempted above only from pass 1; the pass 2 run
    # covered them (they are all in ``remaining``).
    return flags


def sequential_comparison_count(
    upper: np.ndarray, survivors: np.ndarray, charged: np.ndarray
) -> int:
    """Comparisons a sorted sequential pass would perform.

    Candidates are visited in ascending upper-corner-sum order; each charged
    candidate compares against the survivors that precede it (its potential
    dominators all precede it in that order).
    """
    order_rank = np.argsort(np.argsort(upper.sum(axis=1), kind="stable"), kind="stable")
    survivor_ranks = np.sort(order_rank[survivors])
    preceding = np.searchsorted(survivor_ranks, order_rank[charged], side="left")
    return int(preceding.sum())


def coarse_skyline(
    workload: Workload,
    cuboid: MinMaxCuboid,
    regions: "list[OutputRegion]",
    stats: ExecutionStats,
    prunable_queries: "int | None" = None,
) -> CoarseSkylineResult:
    """Populate the cuboid with non-dominated regions, bottom-up.

    ``prunable_queries`` masks which workload queries may lose regions to
    region-level dominance.  Region pruning relies on the dominating
    region being *guaranteed* to produce a join result for the query
    (signature intersection); a per-query selection can filter that
    guaranteed result away, so queries with filters must keep every region
    and rely on tuple-level processing instead.  ``None`` derives the mask
    from the workload (queries without filters).
    """
    if prunable_queries is None:
        prunable_queries = 0
        for qi, query in enumerate(workload):
            if not query.has_filters:
                prunable_queries |= 1 << qi
    output_dims = workload.output_dims
    table = cuboid.lattice.table
    nondominated: dict[int, set[int]] = {}

    region_list = [r for r in regions if not r.is_discarded]
    if region_list:
        lower_all = np.vstack([r.lower for r in region_list])
        upper_all = np.vstack([r.upper for r in region_list])
        rql_all = np.asarray([r.active_rql for r in region_list], dtype=np.int64)
        ids_all = np.asarray([r.region_id for r in region_list])
    else:
        lower_all = upper_all = np.empty((0, len(output_dims)))
        rql_all = ids_all = np.empty(0, dtype=np.int64)

    for mask in cuboid.masks:
        node = cuboid.node(mask)
        positions = [output_dims.index(n) for n in table.names(mask)]
        member = (rql_all & node.qserve) != 0
        cand_idx = np.nonzero(member)[0]
        if len(cand_idx) == 0:
            nondominated[mask] = set()
            continue
        seeded_ids: set[int] = set()
        for child in node.children:
            seeded_ids |= nondominated.get(child, set())
        survivors_here: set[int] = set()
        # Equal-lineage groups: full dominance is transitive inside each.
        for rql_value in np.unique(rql_all[cand_idx]):
            group = cand_idx[rql_all[cand_idx] == rql_value]
            lo = lower_all[np.ix_(group, positions)]
            up = upper_all[np.ix_(group, positions)]
            dominated = dominated_flags(lo, up)
            group_ids = ids_all[group]
            seeded_flags = np.asarray([rid in seeded_ids for rid in group_ids])
            survivor_flags = seeded_flags | ~dominated
            stats.record_coarse_comparisons(
                sequential_comparison_count(
                    up, np.nonzero(survivor_flags)[0], np.nonzero(~seeded_flags)[0]
                )
            )
            survivors_here |= {int(r) for r in group_ids[survivor_flags]}
        nondominated[mask] = survivors_here

    # Per-query contribution sets and lineage shrinking.
    reg: dict[str, set[int]] = {}
    for qi, query in enumerate(workload):
        mask = cuboid.query_nodes[query.name]
        survivors = nondominated[mask]
        prunable = bool((prunable_queries >> qi) & 1)
        contributing = set()
        for r in region_list:
            if not (r.rql & (1 << qi)):
                continue
            if r.region_id in survivors or not prunable:
                contributing.add(r.region_id)
            else:
                r.deactivate_query(qi)
        reg[query.name] = contributing

    discarded = {r.region_id for r in region_list if r.is_discarded}
    for _ in range(len(discarded)):
        stats.record_region_discarded()
    for mask in nondominated:
        nondominated[mask] -= discarded
    for name in reg:
        reg[name] -= discarded
    return CoarseSkylineResult(nondominated=nondominated, reg=reg, discarded=discarded)


__all__ = [
    "CoarseSkylineResult",
    "coarse_skyline",
    "dominated_flags",
    "sequential_comparison_count",
]
