"""The region dependency graph (Section 5.3.2, Definition 9).

A directed edge ``R_i -> R_j`` annotated with query set ``W_{i,j}`` records
that, for those queries, tuples produced by ``R_i`` could dominate output
cells of ``R_j`` — so ``R_i`` should be considered for execution first
(Example 17).  The optimizer schedules only *root* regions (no incoming
edges); processing or discarding a region removes its edges, promoting new
roots (Algorithm 1).

Mutual partial dominance would create 2-cycles in which neither region
precedes the other; we draw an edge only when the advantage is asymmetric
(``R_i`` can reach into ``R_j``'s space but not vice versa) or when the
dominance is full.  Longer cycles are still possible in principle; the
optimizer breaks deadlocks by treating every remaining region as a root
(see :meth:`DependencyGraph.force_roots`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.query.workload import Workload
from repro.skyline.dominance import dominance_mask


@dataclass(frozen=True)
class DependencyEdge:
    source: int
    target: int
    #: Bitmask of workload queries for which source can dominate target.
    queries: int


@dataclass
class DependencyGraph:
    """Mutable edge structure driving Algorithm 1's scheduling order."""

    edges_out: "dict[int, dict[int, int]]" = field(default_factory=dict)
    edges_in: "dict[int, dict[int, int]]" = field(default_factory=dict)
    nodes: "set[int]" = field(default_factory=set)

    def add_node(self, region_id: int) -> None:
        self.nodes.add(region_id)
        self.edges_out.setdefault(region_id, {})
        self.edges_in.setdefault(region_id, {})

    def add_edge(self, source: int, target: int, queries: int) -> None:
        if queries == 0 or source == target:
            return
        self.add_node(source)
        self.add_node(target)
        self.edges_out[source][target] = self.edges_out[source].get(target, 0) | queries
        self.edges_in[target][source] = self.edges_in[target].get(source, 0) | queries

    def roots(self) -> "set[int]":
        return {n for n in self.nodes if not self.edges_in[n]}

    def successors(self, region_id: int) -> "dict[int, int]":
        return dict(self.edges_out.get(region_id, {}))

    def predecessors(self, region_id: int) -> "dict[int, int]":
        return dict(self.edges_in.get(region_id, {}))

    def remove_node(self, region_id: int) -> "set[int]":
        """Remove a processed/discarded region; return newly-rooted nodes."""
        if region_id not in self.nodes:
            return set()
        promoted: set[int] = set()
        for target in list(self.edges_out.get(region_id, {})):
            del self.edges_in[target][region_id]
            if not self.edges_in[target]:
                promoted.add(target)
        for source in list(self.edges_in.get(region_id, {})):
            del self.edges_out[source][region_id]
        self.edges_out.pop(region_id, None)
        self.edges_in.pop(region_id, None)
        self.nodes.discard(region_id)
        return promoted

    def force_roots(self) -> "set[int]":
        """Deadlock breaker: drop all edges among the remaining nodes."""
        for n in self.nodes:
            self.edges_in[n].clear()
            self.edges_out[n].clear()
        return set(self.nodes)

    def edge_count(self) -> int:
        return sum(len(t) for t in self.edges_out.values())

    def __contains__(self, region_id: object) -> bool:
        return region_id in self.nodes


def build_dependency_graph(
    workload: Workload,
    cuboid: MinMaxCuboid,
    regions: "list[OutputRegion]",
    grid: "OutputGrid",
    stats: ExecutionStats,
) -> DependencyGraph:
    """Definition 9 over the surviving (non-discarded) regions (vectorised).

    The edge condition follows Definition 8 case 2 at *cell* granularity:
    ``R_i -> R_j`` for query ``Q`` iff some output cell of ``R_i``, when
    populated, would dominate some output cell of ``R_j`` — i.e. the upper
    corner of ``R_i``'s best (lowest) cell dominates the lower corner of
    ``R_j``'s worst (highest) cell over ``Q``'s subspace.  When the relation
    holds both ways neither region strictly precedes the other, so no edge
    is drawn (avoids trivial 2-cycles among overlapping regions).

    Charged coarse comparisons model a sort-merge evaluation: only pairs
    passing the corner-sum prefilter are counted as examined.
    """
    output_dims = workload.output_dims
    table = cuboid.lattice.table
    graph = DependencyGraph()
    alive = [r for r in regions if not r.is_discarded]
    for r in alive:
        graph.add_node(r.region_id)
    if len(alive) < 2:
        return graph

    # Per-region corner vectors at cell granularity.
    widths = (np.asarray(grid.highs) - np.asarray(grid.lows)) / grid.divisions
    widths = np.where(widths > 0, widths, 1.0)
    lows = np.asarray(grid.lows)
    coord_lo = np.asarray([r.coord_lo for r in alive])
    coord_hi = np.asarray([r.coord_hi for r in alive])
    best_cell_upper = lows + (coord_lo + 1) * widths
    worst_cell_lower = lows + coord_hi * widths
    rql = np.asarray([r.active_rql for r in alive], dtype=np.int64)
    ids = [r.region_id for r in alive]
    n = len(alive)
    edge_queries = np.zeros((n, n), dtype=np.int64)

    for qi, query in enumerate(workload):
        mask = cuboid.query_nodes[query.name]
        positions = [output_dims.index(nm) for nm in table.names(mask)]
        member = ((rql >> qi) & 1).astype(bool)
        idx = np.nonzero(member)[0]
        if len(idx) < 2:
            continue
        u_best = best_cell_upper[np.ix_(idx, positions)]
        l_worst = worst_cell_lower[np.ix_(idx, positions)]
        # can[i, j]: a populated cell of i could dominate a cell of j.
        can = dominance_mask(u_best, l_worst)
        np.fill_diagonal(can, False)
        # Sort-merge-equivalent examined-pair count: pairs passing the
        # corner-sum prefilter sum(u_best_i) < sum(l_worst_j).
        s = np.sort(u_best.sum(axis=1))
        t = l_worst.sum(axis=1)
        stats.record_coarse_comparisons(
            int(np.searchsorted(s, t, side="left").sum())
        )
        edge = can & ~can.T
        src, dst = np.nonzero(edge)
        # (src, dst) pairs are unique, so the fancy-index |= is exact.
        edge_queries[idx[src], idx[dst]] |= np.int64(1) << qi

    # Materialise the edge dicts directly (bulk-building through add_edge
    # costs a function call per edge; dense workloads create 10^5+ edges).
    # np.nonzero scans row-major, so src arrives sorted: slice per source.
    src, dst = np.nonzero(edge_queries)
    masks = edge_queries[src, dst].tolist()
    id_arr = np.asarray(ids, dtype=object)
    src_ids = id_arr[src].tolist()
    dst_ids = id_arr[dst].tolist()
    uniq_s, start_s = np.unique(src, return_index=True)
    bounds_s = np.append(start_s, len(src)).tolist()
    for k, s_row in enumerate(uniq_s.tolist()):
        a, b = bounds_s[k], bounds_s[k + 1]
        graph.edges_out[ids[s_row]] = dict(zip(dst_ids[a:b], masks[a:b]))
    order = np.argsort(dst, kind="stable")
    dst_sorted = dst[order]
    src_by_dst = [src_ids[i] for i in order.tolist()]
    masks_by_dst = [masks[i] for i in order.tolist()]
    uniq_t, start_t = np.unique(dst_sorted, return_index=True)
    bounds_t = np.append(start_t, len(dst)).tolist()
    for k, t_row in enumerate(uniq_t.tolist()):
        a, b = bounds_t[k], bounds_t[k + 1]
        graph.edges_in[ids[t_row]] = dict(zip(src_by_dst[a:b], masks_by_dst[a:b]))
    return graph


__all__ = ["DependencyEdge", "DependencyGraph", "build_dependency_graph"]
