"""Execution statistics (the paper's Figure 10 metrics).

One :class:`ExecutionStats` instance accompanies each run of any execution
strategy; it owns the run's :class:`~repro.core.clock.VirtualClock` and the
shared :class:`~repro.skyline.dominance.ComparisonCounter` so skyline
comparisons both count toward Figure 10b *and* advance virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clock import CostModel, VirtualClock
from repro.skyline.dominance import ComparisonCounter


@dataclass
class ExecutionStats:
    """Counters for one workload execution."""

    clock: VirtualClock = field(default_factory=VirtualClock)
    join_results: int = 0
    join_probes: int = 0
    tuples_inserted: int = 0
    regions_processed: int = 0
    regions_discarded: int = 0
    coarse_comparisons: int = 0
    results_reported: int = 0
    #: Robustness-layer counters (docs/ARCHITECTURE.md §9); all stay zero
    #: unless faults fire or degradation triggers.
    tuples_quarantined: int = 0
    region_retries: int = 0
    regions_quarantined: int = 0
    degraded_reports: int = 0
    straggler_penalty: float = 0.0
    #: Region ids in processing order (when callers pass them) — the
    #: schedule trace the scheduler-equivalence tests compare.
    region_trace: "list[int]" = field(default_factory=list)
    #: Phase-level profiling (docs/ARCHITECTURE.md §11.4).  Off by
    #: default; when on, the executor marks virtual-clock deltas per
    #: phase (join / map / sort / skyline / report) so the breakdown is
    #: deterministic and free of wall-clock reads.
    profile_phases: bool = False
    #: Per region (in commit order): ``{"region": id, phase: seconds}``.
    region_phases: "list[dict]" = field(default_factory=list)
    #: Per-region virtual durations in commit order — the input to the
    #: :meth:`wall_parallel` lane simulation.  Durations are identical
    #: across worker counts (charges are bit-identical), so recording
    #: them never perturbs an observable.
    region_durations: "list[float]" = field(default_factory=list)
    #: Lanes used by :meth:`wall_parallel` when the engine ran a worker
    #: pool (0 = serial run, no parallel channel).
    parallel_lanes: int = 0
    #: Supervision snapshot of the run's region pool (docs/ARCHITECTURE.md
    #: §14), populated at the end of parallel runs.  A wall-channel like
    #: ``region_durations``: deliberately excluded from :meth:`summary`
    #: (and from checkpoint snapshots) so crashed, respawned or poisoned
    #: workers can never move a run fingerprint.
    pool_health: "dict[str, object] | None" = None
    #: Structured one-line environment warnings (e.g. a worker pool on a
    #: single-core host).  A wall-channel like ``pool_health``: excluded
    #: from :meth:`summary` and from snapshots, surfaced to operators by
    #: harnesses that choose to print it — never written to stdout here.
    runtime_warnings: "list[dict]" = field(default_factory=list)

    def __post_init__(self) -> None:
        self.comparison_counter = ComparisonCounter(
            on_increment=self.clock.charge_skyline_comparisons
        )
        self._phase_mark = 0.0

    @classmethod
    def with_cost_model(cls, cost_model: CostModel) -> "ExecutionStats":
        return cls(clock=VirtualClock(cost_model=cost_model))

    # ------------------------------------------------------------------ #
    @property
    def skyline_comparisons(self) -> int:
        return self.comparison_counter.comparisons

    @property
    def elapsed(self) -> float:
        """Total virtual execution time (Figure 10c)."""
        return self.clock.now()

    def record_join_probes(self, count: int) -> None:
        self.join_probes += count
        self.clock.charge_join_probes(count)

    def record_join_results(self, count: int, mapping_functions: int = 0) -> None:
        self.join_results += count
        self.clock.charge_join_results(count)
        if mapping_functions:
            self.clock.charge_mappings(count * mapping_functions)

    def record_region_processed(self, region_id: "int | None" = None) -> None:
        self.regions_processed += 1
        if region_id is not None:
            self.region_trace.append(region_id)
        self.clock.charge_region_overhead()

    def record_region_discarded(self) -> None:
        self.regions_discarded += 1

    def record_coarse_comparisons(self, count: int) -> None:
        self.coarse_comparisons += count
        self.clock.charge_coarse_comparisons(count)

    def record_outputs(self, count: int) -> None:
        self.results_reported += count
        self.clock.charge_outputs(count)

    # -- robustness layer ---------------------------------------------- #
    def record_tuples_quarantined(self, count: int) -> None:
        """Corrupted base tuples dropped by the sanitizer (uncharged: the
        validation scan elides modelled work, it does not add any)."""
        self.tuples_quarantined += count

    def record_region_retry(self, backoff: float) -> None:
        """One failed region attempt; the backoff wait burns virtual time."""
        self.region_retries += 1
        self.clock.charge_retry_backoff(backoff)

    def record_region_quarantined(self) -> None:
        self.regions_quarantined += 1

    def record_degraded_reports(self, count: int) -> None:
        """Approximate (MQLA-bound) answers issued; each costs one output."""
        self.degraded_reports += count
        self.clock.charge_outputs(count)

    def record_straggler_penalty(self, units: float) -> None:
        self.straggler_penalty += units
        self.clock.charge_straggler_penalty(units)

    def record_runtime_warning(self, kind: str, **detail: "object") -> None:
        """Queue one structured environment warning on the stats channel."""
        self.runtime_warnings.append({"kind": kind, **detail})

    # -- parallel layer (docs/ARCHITECTURE.md §11) ----------------------- #
    def begin_region_phases(self, region_id: int) -> None:
        """Open a per-region phase record (no-op unless profiling)."""
        if not self.profile_phases:
            return
        self.region_phases.append({"region": region_id})
        self._phase_mark = self.clock.now()

    def mark_phase(self, name: str) -> None:
        """Charge the virtual time since the last mark to ``name``."""
        if not self.profile_phases or not self.region_phases:
            return
        now = self.clock.now()
        current = self.region_phases[-1]
        current[name] = current.get(name, 0.0) + (now - self._phase_mark)
        self._phase_mark = now

    def phase_totals(self) -> "dict[str, float]":
        """Aggregate per-phase virtual time across all profiled regions."""
        totals: "dict[str, float]" = {}
        for record in self.region_phases:
            for name, value in record.items():
                if name != "region":
                    totals[name] = totals.get(name, 0.0) + value
        return totals

    def record_region_duration(self, duration: float) -> None:
        """One committed region's virtual duration (commit order)."""
        self.region_durations.append(float(duration))

    def wall_parallel(self, lanes: "int | None" = None) -> float:
        """Simulated makespan of the region durations under ``lanes``.

        Greedy earliest-free-lane list scheduling in commit order — an
        optimistic model (it ignores dependency stalls), deterministic
        because it reads only virtual durations.  ``lanes`` defaults to
        the run's ``parallel_lanes``; with fewer than two lanes the
        makespan is simply the serial sum.
        """
        lanes = self.parallel_lanes if lanes is None else lanes
        if lanes <= 1:
            return float(sum(self.region_durations))
        free = [0.0] * lanes
        for duration in self.region_durations:
            slot = min(range(lanes), key=lambda i: free[i])
            free[slot] += duration
        return float(max(free)) if free else 0.0

    def parallel_summary(self) -> "dict[str, float]":
        """The ``wall_parallel`` channel — reported separately from
        :meth:`summary` so serial observables stay bit-identical."""
        return {
            "lanes": float(self.parallel_lanes),
            "wall_serial": float(sum(self.region_durations)),
            "wall_parallel": self.wall_parallel(),
            "regions_timed": float(len(self.region_durations)),
        }

    def summary(self) -> "dict[str, float]":
        return {
            "join_results": self.join_results,
            "join_probes": self.join_probes,
            "skyline_comparisons": self.skyline_comparisons,
            "coarse_comparisons": self.coarse_comparisons,
            "regions_processed": self.regions_processed,
            "regions_discarded": self.regions_discarded,
            "results_reported": self.results_reported,
            "tuples_quarantined": self.tuples_quarantined,
            "region_retries": self.region_retries,
            "regions_quarantined": self.regions_quarantined,
            "degraded_reports": self.degraded_reports,
            "straggler_penalty": self.straggler_penalty,
            "virtual_time": self.elapsed,
        }


__all__ = ["ExecutionStats"]
