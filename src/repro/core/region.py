"""Output regions and region-level dominance (Section 5.2, Definition 8).

An :class:`OutputRegion` is the image, under the workload's mapping
functions, of one ``(left cell, right cell, join condition)`` triple — the
unit of work CAQE's optimizer schedules.  Its *region query lineage*
(``RQL``, Table 1) starts as the queries whose join signatures intersected
(Section 5.1) and shrinks as tuple-level results of other regions dominate
it for individual queries.

Region dominance over a subspace ``V`` (Definition 8) compares bound
corners:

* ``R_i`` **dominates** ``R_j``  iff ``u_i <=_V l_j`` — every possible
  point of ``R_i`` dominates every possible point of ``R_j``;
* ``R_i`` **partially dominates** ``R_j`` iff some point of ``R_i`` *could*
  dominate some point of ``R_j`` (``l_i <=_V u_j`` with a strict dimension)
  — the condition under which the dependency graph draws an edge;
* otherwise the regions are incomparable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.skyline.dominance import dominates


class RegionDominance(enum.Enum):
    DOMINATES = "dominates"
    PARTIAL = "partial"
    INCOMPARABLE = "incomparable"


@dataclass
class OutputRegion:
    """One schedulable unit of tuple-level work."""

    region_id: int
    left_cell_id: int
    right_cell_id: int
    condition_name: str
    #: Output-space bounds over the grid's dimensions (full output space).
    lower: np.ndarray
    upper: np.ndarray
    #: Query-lineage bitmask at creation time (bit i = workload query i).
    rql: int
    #: Coordinate box on the output grid (inclusive).
    coord_lo: tuple[int, ...]
    coord_hi: tuple[int, ...]
    #: Estimated number of join results this region will materialise.
    est_join_count: float
    #: Sizes of the contributing input cells (for Equation 9).
    left_size: int = 0
    right_size: int = 0
    #: Queries the region can still contribute to (shrinks at run time).
    active_rql: int = field(default=0)

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise ExecutionError("region bound arity mismatch")
        if np.any(self.lower > self.upper):
            raise ExecutionError(
                f"region #{self.region_id}: lower bound exceeds upper bound"
            )
        if self.rql == 0:
            raise ExecutionError(f"region #{self.region_id} serves no query")
        if self.active_rql == 0:
            self.active_rql = self.rql

    @cached_property
    def cell_count(self) -> int:
        """Total grid cells of the coordinate box.

        The scheduler reads this on every exact-vs-sampled branch test;
        the box is fixed once scheduling starts, so the first read's value
        is kept for the region's lifetime.
        """
        count = 1
        for a, b in zip(self.coord_lo, self.coord_hi):
            count *= b - a + 1
        return count

    def serves(self, query_bit: int) -> bool:
        return bool(self.active_rql & (1 << query_bit))

    def deactivate_query(self, query_bit: int) -> None:
        self.active_rql &= ~(1 << query_bit)

    @property
    def is_discarded(self) -> bool:
        return self.active_rql == 0

    def __repr__(self) -> str:
        return (
            f"OutputRegion(#{self.region_id}, cells=({self.left_cell_id},"
            f"{self.right_cell_id}), jc={self.condition_name}, "
            f"rql={self.active_rql:#x})"
        )


def region_dominance(
    r_i: OutputRegion,
    r_j: OutputRegion,
    positions: "Sequence[int]",
) -> RegionDominance:
    """Definition 8 over the subspace given by column ``positions``."""
    pos = list(positions)
    if dominates(r_i.upper[pos], r_j.lower[pos]):
        return RegionDominance.DOMINATES
    if dominates(r_i.lower[pos], r_j.upper[pos]):
        return RegionDominance.PARTIAL
    return RegionDominance.INCOMPARABLE


def point_dominates_region(
    point: np.ndarray,
    region: OutputRegion,
    positions: "Sequence[int]",
) -> bool:
    """True iff ``point`` dominates *every* possible point of ``region``.

    Used when tuple-level results discard not-yet-processed regions: a
    confirmed result at or below the region's lower corner makes the whole
    region unable to contribute.
    """
    pos = list(positions)
    vec = np.asarray(point, dtype=float)[pos]
    return dominates(vec, region.lower[pos])


def point_could_be_dominated_by_region(
    point: np.ndarray,
    region: OutputRegion,
    positions: "Sequence[int]",
) -> bool:
    """True iff some future tuple of ``region`` could dominate ``point``.

    The progressive-reporting safety test (Section 6): a candidate result
    may only be emitted once no remaining region can produce a dominating
    tuple.  Future tuples of the region lie inside its bounds, and the most
    dominating one is the lower corner.
    """
    pos = list(positions)
    vec = np.asarray(point, dtype=float)[pos]
    return dominates(region.lower[pos], vec)


__all__ = [
    "OutputRegion",
    "RegionDominance",
    "point_could_be_dominated_by_region",
    "point_dominates_region",
    "region_dominance",
]
