"""Continuous CAQE: contract-driven processing over growing base tables.

The paper processes a finite input; its motivating applications (stock
tickers, travel feeds) are append-only streams.  This module provides the
natural extension: an epoch-based executor that accepts batches of new
base tuples and maintains every query's skyline incrementally on the same
shared structures.

Semantics per epoch:

* the *delta join* — new-left x all-right plus old-left x new-right — is
  partitioned into regions and processed through the persistent shared
  skyline plan (largest expected contribution first);
* **new results**: tuples that entered a query's candidate skyline and are
  reported at epoch end (no future-epoch knowledge exists, so epoch end is
  the earliest sound reporting point for the epoch's survivors);
* **retractions**: previously reported results dominated by newer data.
  Finite-input CAQE never retracts (it only reports finalised results); a
  stream cannot offer that guarantee, so consumers receive a changelog.

Invariant (verified by the tests): after any number of epochs, for every
query ``reported-so-far minus retracted`` equals the reference skyline of
the cumulative tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import CAQEConfig, partition_attrs
from repro.core.coarse_join import coarse_join
from repro.core.executor import JoinResultStore, RegionExecutor
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError, RegionFailure
from repro.partition.cells import LeafCell
from repro.partition.quadtree import Partitioning, quadtree_partition
from repro.plan.shared_plan import WorkloadPlan
from repro.query.predicates import JoinCondition
from repro.query.workload import Workload
from repro.relation import Relation, concat
from repro.robustness.recovery import RETRY, RegionSupervisor
from repro.robustness.sanitize import QuarantineReport, sanitize_relation


def _shift_cells(
    partitioning: Partitioning, row_offset: int, id_offset: int
) -> "list[LeafCell]":
    """Rebase a delta partitioning onto cumulative row/cell numbering."""
    shifted = []
    for leaf in partitioning.leaves:
        shifted.append(
            LeafCell(
                cell_id=leaf.cell_id + id_offset,
                relation_name=leaf.relation_name,
                indices=leaf.indices + row_offset,
                measure_attrs=leaf.measure_attrs,
                bounds=leaf.bounds,
                signatures=leaf.signatures,
            )
        )
    return shifted


@dataclass
class EpochResult:
    """Changelog for one processed epoch."""

    epoch: int
    #: Per query: result identities newly reported this epoch.
    new_results: "dict[str, set[tuple[int, int]]]"
    #: Per query: previously reported identities retracted this epoch.
    retracted: "dict[str, set[tuple[int, int]]]"
    virtual_time: float
    #: Failed region evaluations replayed this epoch (recovery layer).
    region_retries: int = 0
    #: Regions that exhausted their retries and were quarantined.
    regions_quarantined: int = 0

    def net_change(self, query_name: str) -> int:
        return len(self.new_results[query_name]) - len(self.retracted[query_name])


class ContinuousCAQE:
    """Epoch-based contract-driven execution over append-only tables."""

    def __init__(
        self,
        workload: Workload,
        contracts: "dict[str, Contract]",
        config: "CAQEConfig | None" = None,
        *,
        _fresh: bool = True,
    ) -> None:
        missing = [q.name for q in workload if q.name not in contracts]
        if missing:
            raise ExecutionError(f"missing contracts for queries: {missing}")
        self.workload = workload
        self.contracts = dict(contracts)
        self.config = config or CAQEConfig()
        self.stats = ExecutionStats.with_cost_model(self.config.cost_model)
        self.plan = WorkloadPlan(
            workload,
            workload.output_dims,
            counter=self.stats.comparison_counter,
            assume_dva=self.config.assume_dva,
        )
        self.store = JoinResultStore()
        self.logs = {q.name: ResultLog(q.name) for q in workload}
        self._reported: dict[str, set[int]] = {q.name: set() for q in workload}
        self._left: "Relation | None" = None
        self._right: "Relation | None" = None
        self._left_cells: list[LeafCell] = []
        self._right_cells: list[LeafCell] = []
        self._epoch = 0
        # Robustness layer (docs/ARCHITECTURE.md §9): the supervisor's
        # failure history persists across epochs (region ids are unique
        # run-wide), so a region quarantined in one epoch stays out.
        self._supervisor = (
            RegionSupervisor(self.config.retry_policy)
            if self.config.enable_recovery
            else None
        )
        plan = self.config.fault_plan
        self._inject = plan is not None and plan.active
        #: Sanitizer reports keyed "side@epochN", only for dirty deltas.
        self.quarantine: dict[str, QuarantineReport] = {}
        # Durability layer (docs/ARCHITECTURE.md §10): one journal record
        # per completed region, snapshots on cadence plus at every epoch
        # boundary (the stream's natural recovery point).
        self._seq = 0
        self._rng_cursor = 0
        self._durability = None
        self._fingerprint = ""
        if self.config.enable_journal and _fresh:
            self._init_durability()

    def _init_durability(self) -> None:
        from repro.durability.checkpoint import write_snapshot
        from repro.durability.journal import (
            RegionJournal,
            continuous_fingerprint,
        )
        from repro.durability.runtime import RunDurability

        directory = self.config.journal_dir
        fingerprint = continuous_fingerprint(self.config, self.workload)
        journal = RegionJournal.create(directory, fingerprint)
        self._fingerprint = fingerprint
        self._durability = RunDurability(
            journal,
            directory,
            fingerprint,
            self.config.checkpoint_every_regions,
        )
        # Seq-0 snapshot of the empty engine: resume works even when the
        # process dies before its first epoch completes a region.
        write_snapshot(directory, 0, fingerprint, self._dump_state(None))

    def close(self) -> None:
        """Release the journal file handle (no-op when journal is off)."""
        if self._durability is not None:
            self._durability.close()

    def _fault_hook(self, region: OutputRegion) -> None:
        """Chaos-testing injection point (see :class:`RegionExecutor`)."""
        attempt = (
            self._supervisor.next_attempt(region.region_id)
            if self._supervisor is not None
            else 1
        )
        self._rng_cursor += 1
        if self.config.fault_plan.region_fails(region.region_id, attempt):
            raise RegionFailure(region.region_id, attempt, "injected fault")

    # ------------------------------------------------------------------ #
    @property
    def left(self) -> "Relation | None":
        return self._left

    @property
    def right(self) -> "Relation | None":
        return self._right

    def current_skyline(self, query_name: str) -> "set[tuple[int, int]]":
        return {
            self.store.identity(k).as_tuple()
            for k in self.plan.current_skyline(query_name)
        }

    # ------------------------------------------------------------------ #
    def process_epoch(
        self,
        left_delta: "Relation | None" = None,
        right_delta: "Relation | None" = None,
    ) -> EpochResult:
        """Append deltas, process their join contribution, emit a changelog."""
        if left_delta is None and right_delta is None:
            raise ExecutionError("an epoch needs at least one delta")
        self._epoch += 1
        conditions = self.workload.join_conditions

        new_left_cells = self._append(left_delta, "left", conditions)
        new_right_cells = self._append(right_delta, "right", conditions)
        self.workload.validate(self._left, self._right)

        # Delta join: every cell pair touching at least one new cell.
        new_left_ids = {c.cell_id for c in new_left_cells}
        new_right_ids = {c.cell_id for c in new_right_cells}
        old_left = [c for c in self._left_cells if c.cell_id not in new_left_ids]
        regions = []
        if new_left_cells and self._right_cells:
            regions += self._regions_for(
                new_left_cells, self._right_cells, conditions
            )
        if old_left and new_right_cells:
            regions += self._regions_for(old_left, new_right_cells, conditions)

        executor = RegionExecutor(
            self.workload,
            self._left,
            self._right,
            self.plan,
            self.store,
            self.stats,
            fault_hook=self._fault_hook if self._inject else None,
        )
        cells_l = {c.cell_id: c for c in self._left_cells}
        cells_r = {c.cell_id: c for c in self._right_cells}
        # Largest expected contribution first: a cheap greedy stand-in for
        # the full CSM (the finite-run optimizer owns that machinery).
        ordered = sorted(regions, key=lambda r: -r.est_join_count)
        retried, quarantined = self._process_with_replay(
            executor, ordered, cells_l, cells_r
        )

        result = self._emit_changelog(retried, quarantined)
        self._journal_epoch_end()
        return result

    def _process_with_replay(
        self,
        executor: RegionExecutor,
        ordered: "list[OutputRegion]",
        cells_l: "dict[int, LeafCell]",
        cells_r: "dict[int, LeafCell]",
        epoch_state: "tuple[list[OutputRegion], list[OutputRegion], int, int] | None" = None,
    ) -> "tuple[int, int]":
        """Epoch-level replay of the epoch's failed remainder.

        Region failures raise at executor entry (before any shared-plan
        mutation), so the failed subset of an epoch can be replayed
        wholesale: each replay pass re-runs every still-failing region
        after its backoff was charged to the virtual clock.  Regions that
        exhaust the retry policy are quarantined — the epoch still
        completes and emits its changelog rather than wedging the stream.

        ``epoch_state`` is a resumed epoch's mid-flight position
        ``(pending, failed, retried, quarantined)``; fresh epochs start
        from ``ordered``.  Every completed (processed or quarantined)
        region is journalled with the exact in-flight remainder, so a
        mid-epoch snapshot can restart this loop at the same position.
        """
        if epoch_state is None:
            pending = list(ordered)
            failed: "list[OutputRegion]" = []
            retried = 0
            quarantined = 0
        else:
            pending, failed, retried, quarantined = epoch_state
        while pending or failed:
            if not pending:
                # Next replay pass: re-run this pass's failures in order.
                pending, failed = failed, []
            region = pending.pop(0)
            try:
                executor.process(
                    region,
                    cells_l[region.left_cell_id],
                    cells_r[region.right_cell_id],
                )
            except RegionFailure:
                if self._supervisor is None:
                    raise
                if self._supervisor.record_failure(region.region_id) == RETRY:
                    self.stats.record_region_retry(
                        self._supervisor.backoff_for(region.region_id)
                    )
                    retried += 1
                    failed.append(region)
                    continue
                self.stats.record_region_quarantined()
                quarantined += 1
                self._journal_epoch_region(
                    region, "quarantined", pending, failed, retried, quarantined
                )
                continue
            self._journal_epoch_region(
                region, "processed", pending, failed, retried, quarantined
            )
        return retried, quarantined

    # -- durability hooks (docs/ARCHITECTURE.md §10.5) ------------------- #
    def _journal_record(self, event: str, region_id: int, rql: int) -> "dict":
        self._seq += 1
        return {
            "seq": self._seq,
            "epoch": self._epoch,
            "event": event,
            "region": region_id,
            "rql": rql,
            "comparisons": int(self.stats.skyline_comparisons),
            "clock": float(self.stats.clock.now()),
            "reported": [
                len(self._reported[q.name]) for q in self.workload
            ],
            "rng": self._rng_cursor,
        }

    def _journal_epoch_region(
        self,
        region: OutputRegion,
        event: str,
        pending: "list[OutputRegion]",
        failed: "list[OutputRegion]",
        retried: int,
        quarantined: int,
    ) -> None:
        record = self._journal_record(event, region.region_id, region.rql)
        if self._durability is None:
            return
        from repro.durability import checkpoint as cp

        inflight = {
            "pending": [cp.dump_region(r) for r in pending],
            "failed": [cp.dump_region(r) for r in failed],
            "retried": retried,
            "quarantined": quarantined,
        }
        self._durability.on_region_complete(
            record, lambda: self._dump_state(inflight)
        )

    def _journal_epoch_end(self) -> None:
        record = self._journal_record("epoch_end", -1, 0)
        if self._durability is None:
            return
        self._durability.on_region_complete(
            record, lambda: self._dump_state(None)
        )
        # Epoch boundaries always checkpoint, cadence or not — they are
        # the recovery points that need no delta re-feeding.
        self._durability.checkpoint_now(
            int(record["seq"]), lambda: self._dump_state(None)
        )

    def _dump_state(self, inflight: "dict | None") -> "dict":
        """Full engine state; ``inflight`` carries a mid-epoch position."""
        from repro.durability import checkpoint as cp

        return {
            "epoch": self._epoch,
            "region_seq": getattr(self, "_region_seq", 0),
            "seq": self._seq,
            "rng": self._rng_cursor,
            "stats": cp.dump_stats(self.stats),
            "left": (
                cp.dump_relation(self._left) if self._left is not None else None
            ),
            "right": (
                cp.dump_relation(self._right)
                if self._right is not None
                else None
            ),
            "left_cells": [cp.dump_cell(c) for c in self._left_cells],
            "right_cells": [cp.dump_cell(c) for c in self._right_cells],
            "windows": cp.dump_plan_windows(self.plan),
            "store": cp.dump_store(self.store),
            "logs": cp.dump_logs(self.logs),
            "reported": {
                name: sorted(keys) for name, keys in self._reported.items()
            },
            "supervisor": cp.dump_supervisor(self._supervisor),
            "quarantine": cp.dump_quarantine(self.quarantine),
            "inflight": inflight,
        }

    def _restore_state(self, state: "dict") -> None:
        from repro.durability import checkpoint as cp

        cp.load_stats(self.stats, state["stats"])
        self._left = (
            cp.load_relation(state["left"]) if state["left"] is not None else None
        )
        self._right = (
            cp.load_relation(state["right"])
            if state["right"] is not None
            else None
        )
        self._left_cells = [cp.load_cell(c) for c in state["left_cells"]]
        self._right_cells = [cp.load_cell(c) for c in state["right_cells"]]
        cp.load_store(self.store, state["store"])
        cp.load_plan_windows(self.plan, state["windows"])
        self.logs = cp.load_logs(state["logs"])
        self._reported = {
            name: {int(k) for k in keys}
            for name, keys in state["reported"].items()
        }
        cp.load_supervisor(self._supervisor, state["supervisor"])
        self.quarantine = cp.load_quarantine(state["quarantine"])
        self._epoch = int(state["epoch"])
        self._region_seq = int(state["region_seq"])
        self._seq = int(state["seq"])
        self._rng_cursor = int(state["rng"])

    def _finish_epoch(self, inflight: "dict") -> EpochResult:
        """Complete the epoch a snapshot interrupted mid-flight."""
        from repro.durability import checkpoint as cp

        pending = [cp.load_region(r) for r in inflight["pending"]]
        failed = [cp.load_region(r) for r in inflight["failed"]]
        executor = RegionExecutor(
            self.workload,
            self._left,
            self._right,
            self.plan,
            self.store,
            self.stats,
            fault_hook=self._fault_hook if self._inject else None,
        )
        cells_l = {c.cell_id: c for c in self._left_cells}
        cells_r = {c.cell_id: c for c in self._right_cells}
        retried, quarantined = self._process_with_replay(
            executor,
            [],
            cells_l,
            cells_r,
            epoch_state=(
                pending,
                failed,
                int(inflight["retried"]),
                int(inflight["quarantined"]),
            ),
        )
        result = self._emit_changelog(retried, quarantined)
        self._journal_epoch_end()
        return result

    @classmethod
    def resume(
        cls,
        workload: Workload,
        contracts: "dict[str, Contract]",
        config: "CAQEConfig",
    ) -> "tuple[ContinuousCAQE, EpochResult | None]":
        """Reconstruct a killed continuous run from its journal directory.

        Returns ``(engine, epoch_result)`` where ``epoch_result`` is the
        changelog of the epoch the crash interrupted (finished here via
        verified replay) or ``None`` when the crash fell on an epoch
        boundary.  Journal records newer than the snapshot that belong to
        epochs whose deltas were never checkpointed stay queued: re-feed
        the same deltas and they verify record for record
        (:class:`~repro.errors.ResumeMismatch` on any divergence).
        """
        from repro.durability import checkpoint as cp
        from repro.durability.journal import (
            RegionJournal,
            continuous_fingerprint,
        )
        from repro.durability.runtime import RunDurability
        from repro.errors import DurabilityError

        if not config.enable_journal or not config.journal_dir:
            raise DurabilityError(
                "continuous resume requires enable_journal=True and a "
                "journal_dir"
            )
        fingerprint = continuous_fingerprint(config, workload)
        journal, records = RegionJournal.open_resume(
            config.journal_dir, fingerprint
        )
        max_seq = int(records[-1]["seq"]) if records else None
        snapshot = cp.latest_snapshot(
            config.journal_dir, fingerprint, max_seq=max_seq
        )
        if snapshot is None:
            journal.close()
            raise DurabilityError(
                "no intact snapshot to resume from (the seq-0 snapshot is "
                "written at engine construction — is this the right "
                "journal_dir?)"
            )
        engine = cls(workload, contracts, config, _fresh=False)
        engine._restore_state(snapshot["state"])
        expected = [
            r for r in records if int(r["seq"]) > int(snapshot["seq"])
        ]
        engine._fingerprint = fingerprint
        engine._durability = RunDurability(
            journal,
            config.journal_dir,
            fingerprint,
            config.checkpoint_every_regions,
            expected,
        )
        inflight = snapshot["state"].get("inflight")
        result = engine._finish_epoch(inflight) if inflight is not None else None
        return engine, result

    # ------------------------------------------------------------------ #
    def _append(
        self,
        delta: "Relation | None",
        side: str,
        conditions: "tuple[JoinCondition, ...]",
    ) -> "list[LeafCell]":
        if delta is None or delta.cardinality == 0:
            return []
        if self.config.enable_sanitize:
            delta, report = sanitize_relation(
                delta, domain_limit=self.config.sanitize_domain_limit
            )
            if report:
                self.quarantine[f"{side}@epoch{self._epoch}"] = report
                self.stats.record_tuples_quarantined(report.rows_dropped)
            if delta.cardinality == 0:
                return []
        current = self._left if side == "left" else self._right
        offset = current.cardinality if current is not None else 0
        merged = delta if current is None else concat(current.name, [current, delta])
        attrs = partition_attrs(self.workload, side)
        if not attrs:
            attrs = delta.schema.measure_names
        part = quadtree_partition(
            delta,
            attrs,
            conditions,
            side,
            capacity=self.config.capacity_for(delta.cardinality),
            split=self.config.partition_split,
        )
        cells = self._left_cells if side == "left" else self._right_cells
        id_offset = (max((c.cell_id for c in cells), default=-1)) + 1
        new_cells = _shift_cells(part, offset, id_offset)
        cells.extend(new_cells)
        if side == "left":
            self._left = merged
        else:
            self._right = merged
        return new_cells

    def _regions_for(
        self,
        left_cells: "list[LeafCell]",
        right_cells: "list[LeafCell]",
        conditions: "tuple[JoinCondition, ...]",
    ) -> "list[OutputRegion]":
        left_part = Partitioning(
            self._left.name, tuple(left_cells),
            left_cells[0].measure_attrs, depth=0,
        )
        right_part = Partitioning(
            self._right.name, tuple(right_cells),
            right_cells[0].measure_attrs, depth=0,
        )
        try:
            result = coarse_join(
                self.workload, left_part, right_part, self.stats,
                divisions=self.config.divisions,
            )
        except ExecutionError:
            return []  # no cell pair joins in this delta block
        # Region ids must stay unique across the run's epochs.
        offset = getattr(self, "_region_seq", 0)
        for region in result.regions:
            region.region_id = offset
            offset += 1
        self._region_seq = offset
        return result.regions

    def _emit_changelog(
        self, retried: int = 0, quarantined: int = 0
    ) -> EpochResult:
        now = self.stats.clock.now()
        new_results: dict[str, set[tuple[int, int]]] = {}
        retracted: dict[str, set[tuple[int, int]]] = {}
        for query in self.workload:
            name = query.name
            current = set(self.plan.current_skyline(name))
            previously = self._reported[name]
            fresh = current - previously
            gone = previously - current
            new_results[name] = {
                self.store.identity(k).as_tuple() for k in fresh
            }
            retracted[name] = {self.store.identity(k).as_tuple() for k in gone}
            self.logs[name].report_batch(
                sorted(self.store.identity(k).as_tuple() for k in fresh), now
            )
            self.stats.record_outputs(len(fresh))
            self._reported[name] = current
        return EpochResult(
            epoch=self._epoch,
            new_results=new_results,
            retracted=retracted,
            virtual_time=now,
            region_retries=retried,
            regions_quarantined=quarantined,
        )


__all__ = ["ContinuousCAQE", "EpochResult"]
