"""The contract-driven cost/benefit model (Section 5.3).

For each candidate region the optimizer needs, at current virtual time
``t_curr``:

* ``t_c`` — the estimated virtual time tuple-level processing will take
  (the *cost* of considering the region);
* ``ProgEst(R_c, Q_i, t_c)`` (Equation 10) — how many results the region
  can *progressively* output for each query: the Buchta cardinality
  estimate of Equation 9 scaled by the fraction of the region's output
  cells that no other region can dominate (Definition 11's progressive
  cell count);
* ``CSM(R_c)`` (Equation 8) — the weighted sum over queries of the
  estimated utility those results would earn under each query's contract
  at time ``t_curr + t_c``.

Progressive cell counts are exact when the region's coordinate box is
small (:func:`prog_count_exact`, Definition 11/Example 18 semantics) and
fall back to a volume-ratio approximation for large boxes — estimation
error is acceptable here because the optimizer re-ranks after every region
anyway (Section 5.3's feedback-driven iteration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.contracts.base import Contract
from repro.core.clock import CostModel
from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.errors import ExecutionError
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.query.workload import Workload
from repro.skyline.estimate import buchta_skyline_size

#: Above this many output cells the exact progressive count switches to the
#: volume approximation.
EXACT_CELL_LIMIT = 256
#: Above this many potential dominators the exact count is skipped too.
EXACT_DOMINATOR_LIMIT = 16


def prog_count_exact(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
    grid: OutputGrid,
) -> "tuple[int, int]":
    """Definition 11: (non-dominatable cells, total cells) of ``region``.

    A cell of ``region`` is at risk for the examined query iff some other
    contributing region has a cell whose upper corner dominates this cell's
    lower corner (Definition 8 case 2 at cell granularity); the most
    dominating cell any region can populate is the one at its coordinate
    lower corner.
    """
    pos = list(positions)
    threat_uppers = [
        grid.cell_upper(d.coord_lo)[pos] for d in dominators if d.region_id != region.region_id
    ]
    total = 0
    safe = 0
    for coord in OutputGrid.cells_in_box(region.coord_lo, region.coord_hi):
        total += 1
        cell_lower = grid.cell_lower(coord)[pos]
        at_risk = any(
            bool(np.all(u <= cell_lower) and np.any(u < cell_lower))
            for u in threat_uppers
        )
        if not at_risk:
            safe += 1
    return safe, total


def prog_ratio_volume(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
) -> float:
    """Volume approximation of ``ProgCount / CellCount``.

    For each potential dominator, the at-risk part of the region's box is
    the sub-box strictly above the dominator's lower corner; assuming
    independent overlaps, the safe fraction is the product of per-dominator
    safe fractions.  With many overlapping dominators the independence
    assumption over-counts and the product collapses toward zero, so the
    benefit model prefers :func:`prog_ratio_sampled`; this form is kept for
    the cheap two-dominator cases and as the documented naive baseline.
    """
    pos = list(positions)
    lo = region.lower[pos]
    hi = region.upper[pos]
    width = np.maximum(hi - lo, 1e-12)
    others = [d for d in dominators if d.region_id != region.region_id]
    if not others:
        return 1.0
    other_lo = np.vstack([d.lower[pos] for d in others])
    reach = np.all(other_lo < hi, axis=1)  # can the dominator enter the box?
    if not np.any(reach):
        return 1.0
    fracs = np.prod(
        np.clip((hi - np.maximum(lo, other_lo[reach])) / width, 0.0, 1.0), axis=1
    )
    safe = float(np.prod(1.0 - fracs))
    return max(safe, 0.0)


#: Lattice resolution per dimension for the sampled progressive ratio.
_SAMPLES_PER_DIM = 3


def _sample_lattice(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """A deterministic lattice of cell-center points inside ``[lo, hi]``."""
    d = len(lo)
    k = _SAMPLES_PER_DIM if d <= 4 else 2
    axes = [
        np.linspace(lo[i] + (hi[i] - lo[i]) / (2 * k),
                    hi[i] - (hi[i] - lo[i]) / (2 * k), k)
        for i in range(d)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.column_stack([m.ravel() for m in mesh])


def prog_ratio_sampled(
    lower: np.ndarray,
    upper: np.ndarray,
    dominator_lowers: np.ndarray,
) -> float:
    """Sampled estimate of the non-dominated fraction of a region's box.

    The at-risk part of the box is the *union* of upper-orthants above the
    dominators' lower corners (the staircase of Definition 11); a fixed
    lattice of sample points estimates that union's share directly, without
    the independence assumption that breaks the product form.
    """
    if len(dominator_lowers) == 0:
        return 1.0
    samples = _sample_lattice(lower, upper)  # (S, d)
    le = np.all(
        dominator_lowers[:, None, :] <= samples[None, :, :], axis=2
    )
    lt = np.any(dominator_lowers[:, None, :] < samples[None, :, :], axis=2)
    dominated = (le & lt).any(axis=0)
    return float(1.0 - dominated.mean())


@dataclass
class RegionEstimate:
    """Cached per-region estimates feeding the CSM."""

    t_c: float
    #: ProgEst per workload-query bit (len == |S_Q|).
    prog_est: np.ndarray


class BenefitModel:
    """Computes and caches CSM inputs for Algorithm 1."""

    def __init__(
        self,
        workload: Workload,
        cuboid: MinMaxCuboid,
        grid: OutputGrid,
        contracts: "dict[str, Contract]",
        cost_model: CostModel,
        *,
        exact_cell_limit: int = EXACT_CELL_LIMIT,
    ):
        self.workload = workload
        self.grid = grid
        self.cost_model = cost_model
        self.exact_cell_limit = exact_cell_limit
        self.contracts = [contracts[q.name] for q in workload]
        output_dims = workload.output_dims
        table = cuboid.lattice.table
        self.query_positions: list[tuple[int, ...]] = [
            tuple(output_dims.index(n) for n in table.names(cuboid.query_nodes[q.name]))
            for q in workload
        ]
        self.query_dims = [len(p) for p in self.query_positions]
        self._estimates: dict[int, RegionEstimate] = {}
        #: Estimated final result count per query (needed by cardinality
        #: contracts); populated via :meth:`set_result_estimates`.
        self.result_estimates = np.ones(len(workload))
        # Global region arrays for vectorised ProgCount estimation; filled by
        # :meth:`attach_regions` and kept in sync via note_* callbacks.
        self._lower_all: "np.ndarray | None" = None
        self._rql_all: "np.ndarray | None" = None
        self._active_all: "np.ndarray | None" = None
        self._regions_by_id: "dict[int, OutputRegion]" = {}

    def set_result_estimates(self, totals: "dict[str, float]") -> None:
        for qi, query in enumerate(self.workload):
            self.result_estimates[qi] = max(totals.get(query.name, 1.0), 1.0)

    # ------------------------------------------------------------------ #
    # Region-array bookkeeping
    # ------------------------------------------------------------------ #
    def attach_regions(self, regions: "list[OutputRegion]") -> None:
        """Register the run's alive regions for vectorised estimation."""
        if not regions:
            self._lower_all = np.empty((0, len(self.workload.output_dims)))
            self._rql_all = np.empty(0, dtype=np.int64)
            self._active_all = np.empty(0, dtype=bool)
            self._regions_by_id = {}
            return
        max_id = max(r.region_id for r in regions)
        self._lower_all = np.zeros((max_id + 1, len(self.workload.output_dims)))
        self._rql_all = np.zeros(max_id + 1, dtype=np.int64)
        self._active_all = np.zeros(max_id + 1, dtype=bool)
        self._regions_by_id = {}
        for r in regions:
            self._lower_all[r.region_id] = r.lower
            self._rql_all[r.region_id] = r.active_rql
            self._active_all[r.region_id] = True
            self._regions_by_id[r.region_id] = r

    def note_removed(self, region_id: int) -> None:
        """A region was processed or fully discarded."""
        if self._active_all is not None and region_id < len(self._active_all):
            self._active_all[region_id] = False
        self._estimates.pop(region_id, None)

    def note_deactivation(self, region_id: int, query_bit: int) -> None:
        """A region lost one query from its lineage."""
        if self._rql_all is not None and region_id < len(self._rql_all):
            self._rql_all[region_id] &= ~(np.int64(1) << query_bit)
        self._estimates.pop(region_id, None)

    # ------------------------------------------------------------------ #
    # Cost side
    # ------------------------------------------------------------------ #
    def estimate_cost(self, region: OutputRegion) -> float:
        """Estimated virtual time ``t_c`` to process ``region``."""
        cm = self.cost_model
        est_join = max(region.est_join_count, 0.0)
        scan = cm.join_probe * (region.left_size + region.right_size)
        materialise = (cm.join_result + cm.mapping * len(self.workload.output_dims)) * est_join
        # Each inserted tuple pays roughly one window scan per cuboid level;
        # ln(est_join) approximates the window size it meets.
        per_insert = max(1.0, math.log(max(est_join, 2.0)))
        skyline = cm.skyline_comparison * est_join * per_insert
        return cm.region_overhead + scan + materialise + skyline

    # ------------------------------------------------------------------ #
    # Benefit side
    # ------------------------------------------------------------------ #
    def cardinality(self, region: OutputRegion, qi: int) -> float:
        """Equation 9 for one region and query."""
        d = self.query_dims[qi]
        return buchta_skyline_size(region.est_join_count, d)

    def prog_ratio(self, region: OutputRegion, qi: int) -> float:
        """``ProgCount / CellCount`` against the currently active regions."""
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before estimation")
        positions = list(self.query_positions[qi])
        member = self._active_all & (((self._rql_all >> qi) & 1).astype(bool))
        if region.region_id < len(member):
            member = member.copy()
            member[region.region_id] = False
        dominator_lowers = self._lower_all[member][:, positions]
        if len(dominator_lowers) == 0:
            return 1.0
        if (
            region.cell_count <= self.exact_cell_limit
            and len(dominator_lowers) <= EXACT_DOMINATOR_LIMIT
        ):
            dominators = [
                self._regions_by_id[int(rid)] for rid in np.nonzero(member)[0]
            ]
            safe, total = prog_count_exact(
                region, dominators, tuple(positions), self.grid
            )
            return safe / total if total else 0.0
        lo = region.lower[positions]
        hi = region.upper[positions]
        reach = np.all(dominator_lowers < hi, axis=1)
        if not np.any(reach):
            return 1.0
        return prog_ratio_sampled(lo, hi, dominator_lowers[reach])

    def estimate(self, region: OutputRegion) -> RegionEstimate:
        """Compute (and cache) ``t_c`` and per-query ProgEst for a region."""
        prog = np.zeros(len(self.workload))
        for qi in range(len(self.workload)):
            if not (region.active_rql >> qi) & 1:
                continue
            ratio = self.prog_ratio(region, qi)
            prog[qi] = ratio * self.cardinality(region, qi)
        est = RegionEstimate(t_c=self.estimate_cost(region), prog_est=prog)
        self._estimates[region.region_id] = est
        return est

    def cached_estimate(self, region_id: int) -> "RegionEstimate | None":
        return self._estimates.get(region_id)

    def invalidate(self, region_ids) -> None:
        for rid in region_ids:
            self._estimates.pop(rid, None)

    # ------------------------------------------------------------------ #
    # Equation 8
    # ------------------------------------------------------------------ #
    def csm(
        self,
        region: OutputRegion,
        estimate: RegionEstimate,
        weights: np.ndarray,
        now: float,
    ) -> float:
        """Cumulative Satisfaction Metric at virtual time ``now``."""
        if len(weights) != len(self.workload):
            raise ExecutionError("weight vector arity mismatch")
        report_time = now + estimate.t_c
        total = 0.0
        for qi in range(len(self.workload)):
            batch = float(estimate.prog_est[qi])
            if batch <= 0.0 or weights[qi] == 0.0:
                continue
            total += weights[qi] * self.contracts[qi].batch_utility(
                report_time, batch, float(self.result_estimates[qi])
            )
        return total

    def csm_batch(
        self,
        estimates: "list[RegionEstimate]",
        weights: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Equation 8 for many candidate regions at once (one optimizer
        iteration scores every root; this keeps that scoring vectorised)."""
        if not estimates:
            return np.zeros(0)
        times = now + np.asarray([e.t_c for e in estimates])
        prog = np.vstack([e.prog_est for e in estimates])  # (R, Q)
        total = np.zeros(len(estimates))
        for qi in range(len(self.workload)):
            if weights[qi] == 0.0:
                continue
            utilities = self.contracts[qi].batch_utilities(
                times, prog[:, qi], float(self.result_estimates[qi])
            )
            total += weights[qi] * utilities
        return total


__all__ = [
    "EXACT_CELL_LIMIT",
    "BenefitModel",
    "RegionEstimate",
    "prog_count_exact",
    "prog_ratio_sampled",
    "prog_ratio_volume",
]
