"""The contract-driven cost/benefit model (Section 5.3).

For each candidate region the optimizer needs, at current virtual time
``t_curr``:

* ``t_c`` — the estimated virtual time tuple-level processing will take
  (the *cost* of considering the region);
* ``ProgEst(R_c, Q_i, t_c)`` (Equation 10) — how many results the region
  can *progressively* output for each query: the Buchta cardinality
  estimate of Equation 9 scaled by the fraction of the region's output
  cells that no other region can dominate (Definition 11's progressive
  cell count);
* ``CSM(R_c)`` (Equation 8) — the weighted sum over queries of the
  estimated utility those results would earn under each query's contract
  at time ``t_curr + t_c``.

Progressive cell counts are exact when the region's coordinate box is
small (:func:`prog_count_exact`, Definition 11/Example 18 semantics) and
fall back to a volume-ratio approximation for large boxes — estimation
error is acceptable here because the optimizer re-ranks after every region
anyway (Section 5.3's feedback-driven iteration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.contracts.base import Contract
from repro.core.clock import CostModel
from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.errors import ExecutionError
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.query.workload import Workload
from repro.skyline.dominance import dominance_broadcast, dominance_mask
from repro.skyline.estimate import buchta_skyline_size

#: Above this many output cells the exact progressive count switches to the
#: volume approximation.
EXACT_CELL_LIMIT = 256
#: Above this many potential dominators the exact count is skipped too.
EXACT_DOMINATOR_LIMIT = 16


def prog_count_exact(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
    grid: OutputGrid,
    cell_lowers: "np.ndarray | None" = None,
) -> "tuple[int, int]":
    """Definition 11: (non-dominatable cells, total cells) of ``region``.

    A cell of ``region`` is at risk for the examined query iff some other
    contributing region has a cell whose upper corner dominates this cell's
    lower corner (Definition 8 case 2 at cell granularity); the most
    dominating cell any region can populate is the one at its coordinate
    lower corner.

    ``cell_lowers`` optionally carries the precomputed full-dimension
    lower corners of the region's box (``grid.cell_lowers`` over
    ``OutputGrid.box_coords``) — pure immutable geometry, so a memoised
    copy is bit-identical to recomputing it.
    """
    pos = list(positions)
    threats = [d for d in dominators if d.region_id != region.region_id]
    total = OutputGrid.box_cell_count(region.coord_lo, region.coord_hi)
    if not threats:
        return total, total
    threat_uppers = grid.cell_uppers(
        np.asarray([d.coord_lo for d in threats], dtype=np.intp)
    )[:, pos]
    if cell_lowers is None:
        cell_lowers = grid.cell_lowers(
            OutputGrid.box_coords(region.coord_lo, region.coord_hi)
        )
    at_risk = dominance_mask(threat_uppers, cell_lowers[:, pos]).any(axis=0)
    return int(total - int(at_risk.sum())), total


def prog_ratio_volume(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
) -> float:
    """Volume approximation of ``ProgCount / CellCount``.

    For each potential dominator, the at-risk part of the region's box is
    the sub-box strictly above the dominator's lower corner; assuming
    independent overlaps, the safe fraction is the product of per-dominator
    safe fractions.  With many overlapping dominators the independence
    assumption over-counts and the product collapses toward zero, so the
    benefit model prefers :func:`prog_ratio_sampled`; this form is kept for
    the cheap two-dominator cases and as the documented naive baseline.
    """
    pos = list(positions)
    lo = region.lower[pos]
    hi = region.upper[pos]
    width = np.maximum(hi - lo, 1e-12)
    others = [d for d in dominators if d.region_id != region.region_id]
    if not others:
        return 1.0
    other_lo = np.vstack([d.lower[pos] for d in others])
    reach = np.all(other_lo < hi, axis=1)  # can the dominator enter the box?
    if not np.any(reach):
        return 1.0
    fracs = np.prod(
        np.clip((hi - np.maximum(lo, other_lo[reach])) / width, 0.0, 1.0), axis=1
    )
    safe = float(np.prod(1.0 - fracs))
    return max(safe, 0.0)


#: Lattice resolution per dimension for the sampled progressive ratio.
_SAMPLES_PER_DIM = 3


#: Cartesian index grids for :func:`_sample_lattice`, keyed by ``(k, d)``.
_LATTICE_IDX: "dict[tuple[int, int], np.ndarray]" = {}


def _sample_lattice(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """A deterministic lattice of cell-center points inside ``[lo, hi]``.

    One array-endpoint ``linspace`` call builds every axis at once —
    elementwise it performs the same arithmetic as a per-dimension
    ``linspace``, so the points are bit-identical to the scalar form —
    and a cached cartesian index grid expands the axes to sample rows in
    ``meshgrid``'s row-major order.
    """
    d = len(lo)
    k = _SAMPLES_PER_DIM if d <= 4 else 2
    pad = (hi - lo) / (2 * k)
    axes = np.linspace(lo + pad, hi - pad, k, axis=0)  # (k, d)
    idx = _LATTICE_IDX.get((k, d))
    if idx is None:
        ranges = [np.arange(k, dtype=np.intp)] * d
        mesh = np.meshgrid(*ranges, indexing="ij")
        idx = np.column_stack([m.ravel() for m in mesh])
        _LATTICE_IDX[(k, d)] = idx
    return axes[idx, np.arange(d, dtype=np.intp)[None, :]]


def prog_ratio_sampled(
    lower: np.ndarray,
    upper: np.ndarray,
    dominator_lowers: np.ndarray,
) -> float:
    """Sampled estimate of the non-dominated fraction of a region's box.

    The at-risk part of the box is the *union* of upper-orthants above the
    dominators' lower corners (the staircase of Definition 11); a fixed
    lattice of sample points estimates that union's share directly, without
    the independence assumption that breaks the product form.
    """
    if len(dominator_lowers) == 0:
        return 1.0
    return _sampled_ratio(_sample_lattice(lower, upper), dominator_lowers)


def _sampled_ratio(samples: np.ndarray, dominator_lowers: np.ndarray) -> float:
    """The sampled non-dominated fraction over a precomputed lattice."""
    dominated = dominance_mask(dominator_lowers, samples).any(axis=0)
    return float(1.0 - dominated.mean())


@dataclass
class RegionEstimate:
    """Cached per-region estimates feeding the CSM."""

    t_c: float
    #: ProgEst per workload-query bit (len == |S_Q|).
    prog_est: np.ndarray


class _SampleCounts:
    """Per-query incremental dominator counts over region sample lattices.

    Row ``slot[rid]`` holds, for each lattice sample of region ``rid``, how
    many *currently reaching* same-lineage regions dominate that sample.
    The sampled progressive ratio is then ``1 - mean(counts > 0)`` — read in
    O(S) — and stays exact under Algorithm 1's only membership events
    (region removal and lineage loss) via one vectorised subtraction of the
    departing region's domination mask per event.
    """

    __slots__ = (
        "samples", "counts", "uppers", "slot_arr", "rids", "live", "size",
    )

    def __init__(self, n_samples: int, width: int, n_ids: int) -> None:
        cap = 64
        self.samples = np.empty((cap, n_samples, width))
        self.counts = np.zeros((cap, n_samples), dtype=np.int32)
        self.uppers = np.empty((cap, width))
        #: ``slot_arr[region_id]`` is the row index, or -1 when absent —
        #: an array so batched lookups stay loop-free.
        self.slot_arr = np.full(n_ids, -1, dtype=np.int64)
        #: Row → owning region id (stale for tombstoned rows, which the
        #: ``live`` mask filters out of every batched read).
        self.rids = np.zeros(cap, dtype=np.intp)
        #: Rows whose region still owns them.  Dropped rows are tombstoned
        #: (never reused, never read), so event maintenance skips them.
        self.live = np.zeros(cap, dtype=bool)
        self.size = 0

    def slot(self, region_id: int) -> int:
        if region_id >= len(self.slot_arr):
            return -1
        return int(self.slot_arr[region_id])

    def drop(self, region_id: int) -> None:
        if region_id < len(self.slot_arr):
            row = self.slot_arr[region_id]
            if row >= 0:
                self.live[row] = False
            self.slot_arr[region_id] = -1

    def add(
        self,
        region_id: int,
        samples: np.ndarray,
        upper: np.ndarray,
        counts: np.ndarray,
    ) -> int:
        if self.size == len(self.samples):
            def grown(arr: np.ndarray) -> np.ndarray:
                out = np.empty((2 * len(arr), *arr.shape[1:]), dtype=arr.dtype)
                out[: self.size] = arr[: self.size]
                return out

            self.samples = grown(self.samples)
            self.counts = grown(self.counts)
            self.uppers = grown(self.uppers)
            grown_rids = np.zeros(2 * len(self.rids), dtype=np.intp)
            grown_rids[: self.size] = self.rids[: self.size]
            self.rids = grown_rids
            grown_live = np.zeros(2 * len(self.live), dtype=bool)
            grown_live[: self.size] = self.live[: self.size]
            self.live = grown_live
        if region_id >= len(self.slot_arr):
            wider = np.full(
                max(region_id + 1, 2 * len(self.slot_arr)), -1, dtype=np.int64
            )
            wider[: len(self.slot_arr)] = self.slot_arr
            self.slot_arr = wider
        row = self.size
        self.samples[row] = samples
        self.counts[row] = counts
        self.uppers[row] = upper
        self.slot_arr[region_id] = row
        self.rids[row] = region_id
        self.live[row] = True
        self.size += 1
        return row


class _CellCounts:
    """Per-query incremental threat counts over regions' exact cell boxes.

    The exact-branch analogue of :class:`_SampleCounts`: row ``slot[rid]``
    holds, for each grid cell of region ``rid``'s box (first ``ncells``
    entries; the rest is padding), how many currently reaching same-lineage
    regions could dominate that cell.  Definition 11's progressive count is
    then ``total - count_nonzero(counts > 0)`` — read in O(cells) — and the
    same removal/deactivation events that keep the sample counts current
    subtract the departing region's per-cell domination mask here.
    """

    __slots__ = (
        "cells", "counts", "uppers", "ncells", "slot_arr", "rids", "live",
        "size", "limit", "arange",
    )

    def __init__(self, limit: int, width: int, n_ids: int) -> None:
        cap = 64
        self.limit = limit
        self.arange = np.arange(limit)
        self.cells = np.zeros((cap, limit, width))
        self.counts = np.zeros((cap, limit), dtype=np.int32)
        self.uppers = np.empty((cap, width))
        self.ncells = np.zeros(cap, dtype=np.intp)
        self.slot_arr = np.full(n_ids, -1, dtype=np.int64)
        self.rids = np.zeros(cap, dtype=np.intp)
        #: Same tombstone discipline as :class:`_SampleCounts`.
        self.live = np.zeros(cap, dtype=bool)
        self.size = 0

    def slot(self, region_id: int) -> int:
        if region_id >= len(self.slot_arr):
            return -1
        return int(self.slot_arr[region_id])

    def drop(self, region_id: int) -> None:
        if region_id < len(self.slot_arr):
            row = self.slot_arr[region_id]
            if row >= 0:
                self.live[row] = False
            self.slot_arr[region_id] = -1

    def add(
        self,
        region_id: int,
        cells: np.ndarray,
        upper: np.ndarray,
        counts: np.ndarray,
    ) -> int:
        if self.size == len(self.cells):
            def grown(arr: np.ndarray) -> np.ndarray:
                out = np.zeros((2 * len(arr), *arr.shape[1:]), dtype=arr.dtype)
                out[: self.size] = arr[: self.size]
                return out

            self.cells = grown(self.cells)
            self.counts = grown(self.counts)
            self.uppers = grown(self.uppers)
            self.ncells = grown(self.ncells)
            self.rids = grown(self.rids)
            self.live = grown(self.live)
        if region_id >= len(self.slot_arr):
            wider = np.full(
                max(region_id + 1, 2 * len(self.slot_arr)), -1, dtype=np.int64
            )
            wider[: len(self.slot_arr)] = self.slot_arr
            self.slot_arr = wider
        row = self.size
        n = len(cells)
        self.cells[row, :n] = cells
        self.cells[row, n:] = 0.0
        self.counts[row, :n] = counts
        self.counts[row, n:] = 0
        self.uppers[row] = upper
        self.ncells[row] = n
        self.slot_arr[region_id] = row
        self.rids[row] = region_id
        self.live[row] = True
        self.size += 1
        return row


class _ById:
    """Candidate-index view over attached regions, resolved lazily by id.

    Lets the scheduler hand :meth:`BenefitModel.estimate_roots_arrays` a
    bare id array without materialising a region-object list per
    iteration; only the scalar fallback paths ever index into this.
    """

    __slots__ = ("_by_id", "_ids")

    def __init__(self, by_id: "dict[int, OutputRegion]", ids: np.ndarray):
        self._by_id = by_id
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, k: int) -> "OutputRegion":
        return self._by_id[int(self._ids[k])]


class BenefitModel:
    """Computes and caches CSM inputs for Algorithm 1."""

    def __init__(
        self,
        workload: Workload,
        cuboid: MinMaxCuboid,
        grid: OutputGrid,
        contracts: "dict[str, Contract]",
        cost_model: CostModel,
        *,
        exact_cell_limit: int = EXACT_CELL_LIMIT,
    ) -> None:
        self.workload = workload
        self.grid = grid
        self.cost_model = cost_model
        self.exact_cell_limit = exact_cell_limit
        self.contracts = [contracts[q.name] for q in workload]
        # Homogeneous-workload fast path: when every contract is the same
        # class, Eq. 8 utilities for all queries come from one fused
        # broadcast (bit-identical per row to the per-contract calls).
        contract_types = {type(c) for c in self.contracts}
        self._fused_contract_type = (
            contract_types.pop() if len(contract_types) == 1 else None
        )
        output_dims = workload.output_dims
        table = cuboid.lattice.table
        self.query_positions: list[tuple[int, ...]] = [
            tuple(output_dims.index(n) for n in table.names(cuboid.query_nodes[q.name]))
            for q in workload
        ]
        self.query_dims = [len(p) for p in self.query_positions]
        # Memoised time-invariant inputs: ``t_c``, the Buchta cardinality
        # vector and the sample lattice depend only on a region's immutable
        # geometry, so they survive every change to the progressive term.
        self._costs: dict[int, float] = {}
        self._cards: dict[int, np.ndarray] = {}
        self._lattices: "dict[tuple[int, int], np.ndarray]" = {}
        # Full-dimension cell lower corners of each region's coordinate
        # box — immutable geometry the exact branch re-reads on every
        # recomputation, so one copy per region is kept for its lifetime.
        self._boxes: "dict[int, np.ndarray]" = {}
        # Event-driven ProgEst cache, ``(region_id, qi)`` indexed.  A
        # candidate's ProgEst is a pure function of its *reach set* (the
        # active same-lineage regions whose lower corner enters its box),
        # so an entry stays valid until some reaching region departs —
        # :meth:`note_removed`/:meth:`note_deactivation` evict exactly the
        # entries whose reach set the event changed, in one masked store.
        self._prog_val: "np.ndarray | None" = None
        self._prog_ok: "np.ndarray | None" = None
        # Sampled-branch incremental state, one structure per query; rows
        # are created lazily at a region's first sampled estimate and kept
        # current by :meth:`note_removed`/:meth:`note_deactivation`.
        self._scounts: "dict[int, _SampleCounts]" = {}
        # Exact-branch incremental state, same lifecycle.
        self._ecounts: "dict[int, _CellCounts]" = {}
        # Departure events queued by note_removed/note_deactivation and
        # applied in one vectorised pass per query at the next read
        # (:meth:`_flush_events`) — count subtraction commutes, so the
        # batch equals replaying the events one at a time.
        self._pending: "list[tuple[int, int]]" = []
        # Per-query active-membership snapshot ``(ids, lowers)`` reused
        # between events: membership changes always queue an event for the
        # affected query, so the flush is a complete invalidation point.
        self._member_cache: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
        #: Estimated final result count per query (needed by cardinality
        #: contracts); populated via :meth:`set_result_estimates`.
        self.result_estimates = np.ones(len(workload))
        # Global region arrays for vectorised ProgCount estimation; filled by
        # :meth:`attach_regions` and kept in sync via note_* callbacks.
        self._lower_all: "np.ndarray | None" = None
        self._upper_all: "np.ndarray | None" = None
        self._cupper_all: "np.ndarray | None" = None
        # Contiguous per-query-subspace views of the three corner
        # matrices, rebuilt by :meth:`attach_regions`.
        self._lower_q: "list[np.ndarray]" = []
        self._upper_q: "list[np.ndarray]" = []
        self._cupper_q: "list[np.ndarray]" = []
        self._rql_all: "np.ndarray | None" = None
        self._active_all: "np.ndarray | None" = None
        # Regions registered by attach_regions — only their events are
        # tracked, so only they may hold ProgEst cache entries.  Unlike
        # ``_active_all`` this never flips back off.
        self._attached_all: "np.ndarray | None" = None
        # Static per-region scalars (Buchta cardinalities, t_c, cell
        # counts) precomputed at attach time with the same scalar
        # functions the lazy memos use, so batched gathers replace
        # per-iteration dict lookups.
        self._cards_all: "np.ndarray | None" = None
        self._cost_all: "np.ndarray | None" = None
        self._ccnt_all: "np.ndarray | None" = None
        self._regions_by_id: "dict[int, OutputRegion]" = {}

    def set_result_estimates(self, totals: "dict[str, float]") -> None:
        for qi, query in enumerate(self.workload):
            self.result_estimates[qi] = max(totals.get(query.name, 1.0), 1.0)

    # ------------------------------------------------------------------ #
    # Region-array bookkeeping
    # ------------------------------------------------------------------ #
    def attach_regions(self, regions: "list[OutputRegion]") -> None:
        """Register the run's alive regions for vectorised estimation."""
        self._costs.clear()
        self._cards.clear()
        self._lattices.clear()
        self._boxes.clear()
        self._scounts.clear()
        self._ecounts.clear()
        self._pending.clear()
        self._member_cache.clear()
        n_q = len(self.workload)
        if not regions:
            self._lower_all = np.empty((0, len(self.workload.output_dims)))
            self._upper_all = np.empty((0, len(self.workload.output_dims)))
            self._cupper_all = np.empty((0, len(self.workload.output_dims)))
            self._rql_all = np.empty(0, dtype=np.int64)
            self._active_all = np.empty(0, dtype=bool)
            self._attached_all = np.empty(0, dtype=bool)
            self._prog_val = np.empty((0, n_q))
            self._prog_ok = np.empty((0, n_q), dtype=bool)
            self._cards_all = np.empty((0, n_q))
            self._cost_all = np.empty(0)
            self._ccnt_all = np.empty(0, dtype=np.int64)
            self._regions_by_id = {}
            self._subspace_cols()
            return
        max_id = max(r.region_id for r in regions)
        self._lower_all = np.zeros((max_id + 1, len(self.workload.output_dims)))
        self._upper_all = np.zeros((max_id + 1, len(self.workload.output_dims)))
        self._cupper_all = np.zeros((max_id + 1, len(self.workload.output_dims)))
        self._rql_all = np.zeros(max_id + 1, dtype=np.int64)
        self._active_all = np.zeros(max_id + 1, dtype=bool)
        self._attached_all = np.zeros(max_id + 1, dtype=bool)
        self._prog_val = np.zeros((max_id + 1, n_q))
        self._prog_ok = np.zeros((max_id + 1, n_q), dtype=bool)
        self._cards_all = np.zeros((max_id + 1, n_q))
        self._cost_all = np.zeros(max_id + 1)
        self._ccnt_all = np.zeros(max_id + 1, dtype=np.int64)
        self._regions_by_id = {}
        for r in regions:
            self._lower_all[r.region_id] = r.lower
            self._upper_all[r.region_id] = r.upper
            self._rql_all[r.region_id] = r.active_rql
            self._active_all[r.region_id] = True
            self._attached_all[r.region_id] = True
            # Same scalar computations the lazy memos run, done once.
            self._cards_all[r.region_id] = self._cards_for(r)
            self._cost_all[r.region_id] = self._cost_for(r)
            self._ccnt_all[r.region_id] = r.cell_count
            self._regions_by_id[r.region_id] = r
        # Upper corner of each region's lowest cell — the corner Definition
        # 11's threat test compares; one broadcast covers every region.
        ids = np.asarray(sorted(self._regions_by_id), dtype=np.intp)
        coords = np.asarray(
            [self._regions_by_id[int(i)].coord_lo for i in ids], dtype=np.intp
        )
        self._cupper_all[ids] = self.grid.cell_uppers(coords)
        self._subspace_cols()

    def _subspace_cols(self) -> None:
        """Per-query contiguous corner matrices over each query subspace.

        Geometry is immutable after :meth:`attach_regions`, so slicing the
        query-subspace columns once replaces a fancy gather per estimator
        call and per event flush.
        """
        self._lower_q = []
        self._upper_q = []
        self._cupper_q = []
        for qi in range(len(self.workload)):
            p = list(self.query_positions[qi])
            self._lower_q.append(np.ascontiguousarray(self._lower_all[:, p]))
            self._upper_q.append(np.ascontiguousarray(self._upper_all[:, p]))
            self._cupper_q.append(np.ascontiguousarray(self._cupper_all[:, p]))

    def note_removed(self, region_id: int) -> None:
        """A region was processed or fully discarded."""
        if self._rql_all is not None and region_id < len(self._rql_all):
            rql = int(self._rql_all[region_id])
            for qi in range(len(self.workload)):
                if (rql >> qi) & 1:
                    self._pending.append((region_id, qi))
        if self._active_all is not None and region_id < len(self._active_all):
            self._active_all[region_id] = False
            self._prog_ok[region_id, :] = False
        self._costs.pop(region_id, None)
        self._cards.pop(region_id, None)
        self._boxes.pop(region_id, None)
        for qi in range(len(self.workload)):
            self._lattices.pop((region_id, qi), None)
            sc = self._scounts.get(qi)
            if sc is not None:
                sc.drop(region_id)
            ec = self._ecounts.get(qi)
            if ec is not None:
                ec.drop(region_id)

    def note_deactivation(self, region_id: int, query_bit: int) -> None:
        """A region lost one query from its lineage."""
        self._pending.append((region_id, query_bit))
        if self._rql_all is not None and region_id < len(self._rql_all):
            self._rql_all[region_id] &= ~(np.int64(1) << query_bit)
            self._prog_ok[region_id, query_bit] = False
        # The region's own count rows for this query are dead from here on
        # (rql bits never come back), so event maintenance may skip them.
        sc = self._scounts.get(query_bit)
        if sc is not None:
            sc.drop(region_id)
        ec = self._ecounts.get(query_bit)
        if ec is not None:
            ec.drop(region_id)

    def _flush_events(self) -> None:
        """Apply queued departure events in one vectorised pass per query.

        Each event subtracts the departing region's domination contribution
        from every initialised count row it reaches and evicts the ProgEst
        cache entries whose reach set it changed.  Geometry is immutable
        and events fire exactly once per ``(region, query)``, so integer
        subtraction commutes: applying a batch together equals replaying
        the events one at a time.  Rows belonging to departed regions are
        tombstoned (never read again), so their drift is unobservable.
        """
        if not self._pending or self._lower_all is None:
            self._pending.clear()
            return
        events = self._pending
        self._pending = []
        by_qi: "dict[int, list[int]]" = {}
        for rid, qi in events:
            by_qi.setdefault(qi, []).append(rid)
        for qi, rids in by_qi.items():
            self._member_cache.pop(qi, None)
            rid_arr = np.asarray(rids, dtype=np.intp)
            lowers = self._lower_q[qi][rid_arr]  # (E, p)
            # One (events, regions) reach broadcast serves everything in
            # this flush: a candidate's ProgEst entry dies iff some
            # departing region's lower corner enters its box over the
            # subspace, and the count-table targets gather the same mask
            # through their row -> region-id maps (a count row's upper
            # corner *is* its region's upper corner).
            reach_all = (
                lowers[:, None, :] < self._upper_q[qi][None, :, :]
            ).all(axis=2)
            if self._prog_ok is not None:
                self._prog_ok[reach_all.any(axis=0), qi] = False
            sc = self._scounts.get(qi)
            if sc is not None and sc.size:
                n = sc.size
                ridx = sc.rids[:n]
                if int(ridx.max(initial=0)) < reach_all.shape[1]:
                    reach = reach_all[:, ridx]
                else:
                    # Rows owned by never-attached regions (detached
                    # estimates) sit outside the geometry arrays.
                    reach = (
                        lowers[:, None, :] < sc.uppers[None, :n, :]
                    ).all(axis=2)
                reach &= sc.live[None, :n]
                covered = rid_arr < len(sc.slot_arr)
                own = np.where(
                    covered, sc.slot_arr[np.where(covered, rid_arr, 0)], -1
                )
                valid = np.flatnonzero((own >= 0) & (own < n))
                if valid.size:
                    reach[valid, own[valid]] = False
                rows = np.flatnonzero(reach.any(axis=0))
                if rows.size:
                    dom = dominance_broadcast(
                        lowers[:, None, None, :],
                        sc.samples[rows][None, :, :, :],
                        axis=3,
                    )
                    sc.counts[rows] -= (dom & reach[:, rows, None]).sum(
                        axis=0, dtype=np.int32
                    )
            ec = self._ecounts.get(qi)
            if ec is not None and ec.size:
                n = ec.size
                ridx = ec.rids[:n]
                if int(ridx.max(initial=0)) < reach_all.shape[1]:
                    reach = reach_all[:, ridx]
                else:
                    reach = (
                        lowers[:, None, :] < ec.uppers[None, :n, :]
                    ).all(axis=2)
                reach &= ec.live[None, :n]
                covered = rid_arr < len(ec.slot_arr)
                own = np.where(
                    covered, ec.slot_arr[np.where(covered, rid_arr, 0)], -1
                )
                valid = np.flatnonzero((own >= 0) & (own < n))
                if valid.size:
                    reach[valid, own[valid]] = False
                rows = np.flatnonzero(reach.any(axis=0))
                if rows.size:
                    corners = self._cupper_q[qi][rid_arr]
                    cells = ec.cells[rows]
                    # Chunk the (events, rows, cells) broadcast to bound the
                    # temporary at ~8 * rows * limit * width floats.
                    for a in range(0, len(rids), 8):
                        b = min(a + 8, len(rids))
                        sub = reach[a:b][:, rows]
                        if not sub.any():
                            continue
                        dom = dominance_broadcast(
                            corners[a:b, None, None, :],
                            cells[None, :, :, :],
                            axis=3,
                        )
                        ec.counts[rows] -= (dom & sub[:, :, None]).sum(
                            axis=0, dtype=np.int32
                        )

    def active_serving(self, qi: int) -> "tuple[np.ndarray, np.ndarray]":
        """Ids and projected lower corners of alive regions serving ``qi``.

        Array-native replacement for scanning the executor's alive dict:
        ``note_removed``/``note_deactivation`` keep ``_active_all`` and the
        rql bits current eagerly, so the membership mask is exact at any
        point in the step.  Queued departure events are flushed first so
        the per-query member cache (shared with the estimator) is fresh.
        """
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before queries")
        if self._pending:
            self._flush_events()
        cached = self._member_cache.get(qi)
        if cached is not None:
            return cached
        member = self._active_all & (((self._rql_all >> qi) & 1).astype(bool))
        ids_all = np.flatnonzero(member)
        lowers_all = self._lower_q[qi][ids_all]
        self._member_cache[qi] = (ids_all, lowers_all)
        return ids_all, lowers_all

    # ------------------------------------------------------------------ #
    # Cost side
    # ------------------------------------------------------------------ #
    def estimate_cost(self, region: OutputRegion) -> float:
        """Estimated virtual time ``t_c`` to process ``region``."""
        cm = self.cost_model
        est_join = max(region.est_join_count, 0.0)
        scan = cm.join_probe * (region.left_size + region.right_size)
        materialise = (cm.join_result + cm.mapping * len(self.workload.output_dims)) * est_join
        # Each inserted tuple pays roughly one window scan per cuboid level;
        # ln(est_join) approximates the window size it meets.
        per_insert = max(1.0, math.log(max(est_join, 2.0)))
        skyline = cm.skyline_comparison * est_join * per_insert
        return cm.region_overhead + scan + materialise + skyline

    # ------------------------------------------------------------------ #
    # Benefit side
    # ------------------------------------------------------------------ #
    def cardinality(self, region: OutputRegion, qi: int) -> float:
        """Equation 9 for one region and query."""
        d = self.query_dims[qi]
        return buchta_skyline_size(region.est_join_count, d)

    def _reaching_dominators(
        self, region: OutputRegion, qi: int
    ) -> "tuple[np.ndarray, np.ndarray, list[int]]":
        """Active same-lineage regions whose lower corner reaches into
        ``region``'s box over query ``qi``'s subspace.

        Only these can lower the progressive ratio (a corner at or above the
        box's upper bound in some dimension threatens no cell), so both the
        exact and the sampled estimators are evaluated over this set — which
        makes the set the *complete* input fingerprint of a cached ratio.
        """
        positions = list(self.query_positions[qi])
        member = self._active_all & (((self._rql_all >> qi) & 1).astype(bool))
        if region.region_id < len(member):
            member = member.copy()
            member[region.region_id] = False
        ids = np.flatnonzero(member)
        lowers = self._lower_all[ids][:, positions]
        if len(ids):
            reach = np.all(lowers < region.upper[positions], axis=1)
            ids = ids[reach]
            lowers = lowers[reach]
        return ids, lowers, positions

    def prog_ratio(self, region: OutputRegion, qi: int) -> float:
        """``ProgCount / CellCount`` against the currently active regions."""
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before estimation")
        if self._pending:
            self._flush_events()
        ids, dominator_lowers, positions = self._reaching_dominators(region, qi)
        if len(ids) == 0:
            return 1.0
        if (
            region.cell_count <= self.exact_cell_limit
            and len(ids) <= EXACT_DOMINATOR_LIMIT
        ):
            dominators = [self._regions_by_id[int(rid)] for rid in ids]
            safe, total = prog_count_exact(
                region,
                dominators,
                tuple(positions),
                self.grid,
                cell_lowers=self._cell_lowers_for(region),
            )
            return safe / total if total else 0.0
        lo = region.lower[positions]
        hi = region.upper[positions]
        return prog_ratio_sampled(lo, hi, dominator_lowers)

    def _cell_lowers_for(self, region: OutputRegion) -> np.ndarray:
        """Full-dimension lower corners of the region's box cells (memoised)."""
        lowers = self._boxes.get(region.region_id)
        if lowers is None:
            lowers = self.grid.cell_lowers(
                OutputGrid.box_coords(region.coord_lo, region.coord_hi)
            )
            self._boxes[region.region_id] = lowers
        return lowers

    def _cards_for(self, region: OutputRegion) -> np.ndarray:
        cards = self._cards.get(region.region_id)
        if cards is None:
            cards = np.array(
                [self.cardinality(region, qi) for qi in range(len(self.workload))]
            )
            self._cards[region.region_id] = cards
        return cards

    def _cost_for(self, region: OutputRegion) -> float:
        t_c = self._costs.get(region.region_id)
        if t_c is None:
            t_c = self.estimate_cost(region)
            self._costs[region.region_id] = t_c
        return t_c

    def _lattice_for(
        self, region: OutputRegion, qi: int, positions: "list[int]"
    ) -> np.ndarray:
        key = (region.region_id, qi)
        samples = self._lattices.get(key)
        if samples is None:
            samples = _sample_lattice(
                region.lower[positions], region.upper[positions]
            )
            self._lattices[key] = samples
        return samples

    def _ratio_value(
        self,
        region: OutputRegion,
        qi: int,
        ids: np.ndarray,
        lowers: np.ndarray,
        positions: "list[int]",
        use_cache: bool,
    ) -> float:
        """Progressive ratio for one (region, query) given its reach set.

        ``ids``/``lowers`` are the reaching dominators — the ratio's entire
        input besides immutable region geometry.  With ``use_cache`` on,
        both branches read incrementally maintained dominator counts
        (:class:`_CellCounts` for the exact branch, :class:`_SampleCounts`
        for the sampled one); with it off everything is recomputed from
        scratch (the naive-rescan mode the regression tests compare
        against).  Both modes return bit-identical values.
        """
        if len(ids) == 0:
            return 1.0
        if (
            region.cell_count <= self.exact_cell_limit
            and len(ids) <= EXACT_DOMINATOR_LIMIT
        ):
            if not use_cache:
                dominators = [self._regions_by_id[int(r)] for r in ids]
                safe, total = prog_count_exact(
                    region,
                    dominators,
                    tuple(positions),
                    self.grid,
                    cell_lowers=self._cell_lowers_for(region),
                )
                return safe / total if total else 0.0
            ec = self._ecounts.get(qi)
            if ec is None:
                ec = _CellCounts(
                    self.exact_cell_limit, len(positions), len(self._rql_all)
                )
                self._ecounts[qi] = ec
            row = ec.slot(region.region_id)
            if row < 0:
                cell_lowers = self._cell_lowers_for(region)[:, positions]
                threat_uppers = self._cupper_all[ids][:, positions]
                counts = dominance_mask(threat_uppers, cell_lowers).sum(
                    axis=0, dtype=np.int32
                )
                row = ec.add(
                    region.region_id,
                    cell_lowers,
                    region.upper[positions],
                    counts,
                )
            total = region.cell_count
            n = int(ec.ncells[row])
            safe = total - int((ec.counts[row, :n] > 0).sum())
            return safe / total if total else 0.0
        samples = self._lattice_for(region, qi, positions)
        if not use_cache:
            return _sampled_ratio(samples, lowers)
        sc = self._scounts.get(qi)
        if sc is None:
            sc = _SampleCounts(
                len(samples), len(positions), len(self._rql_all)
            )
            self._scounts[qi] = sc
        row = sc.slot(region.region_id)
        if row < 0:
            counts = dominance_mask(lowers, samples).sum(axis=0, dtype=np.int32)
            row = sc.add(
                region.region_id,
                samples,
                region.upper[positions],
                counts,
            )
        return float(1.0 - (sc.counts[row] > 0).mean())

    def estimate(self, region: OutputRegion) -> RegionEstimate:
        """``t_c`` and per-query ProgEst for one region."""
        return self.estimate_roots([region])[0]

    def estimate_roots(
        self,
        regions: "list[OutputRegion]",
        *,
        use_cache: bool = True,
    ) -> "list[RegionEstimate]":
        """:meth:`estimate_roots_arrays` packaged per region."""
        t_c, prog = self.estimate_roots_arrays(regions, use_cache=use_cache)
        return [
            RegionEstimate(t_c=float(t_c[k]), prog_est=prog[k])
            for k in range(len(regions))
        ]

    def estimate_roots_arrays(
        self,
        regions: "list[OutputRegion] | None" = None,
        *,
        use_cache: bool = True,
        rid_arr: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Estimates for one optimizer iteration's candidate set.

        Returns ``(t_c, prog)`` — the cost vector and the ``(regions,
        queries)`` ProgEst matrix.  The reach test — which active
        same-lineage regions can lower each candidate's progressive ratio —
        runs as one broadcast per query over the whole candidate set; per
        candidate only a changed reach set triggers an estimator call.
        Results are bit-identical to calling the estimators from scratch
        per candidate.

        The hot caller (the scheduler loop) passes ``rid_arr`` — a sorted
        ``intp`` array of *attached* region ids — and no object list; the
        few scalar fallback paths then resolve regions by id.
        """
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before estimation")
        if self._pending:
            self._flush_events()
        n_q = len(self.workload)
        if rid_arr is None:
            if not regions:
                return np.zeros(0), np.zeros((0, n_q))
            rid_arr = np.asarray([r.region_id for r in regions], dtype=np.intp)
        elif not rid_arr.size:
            return np.zeros(0), np.zeros((0, n_q))
        prog = np.zeros((len(rid_arr), n_q))
        # Caching requires every candidate to be attached — only attached
        # geometry participates in the eviction events.
        attached = int(rid_arr.max()) < len(self._attached_all) and bool(
            self._attached_all[rid_arr].all()
        )
        if regions is None:
            if not attached:
                raise ExecutionError(
                    "estimate_roots_arrays(rid_arr=...) requires attached regions"
                )
            regions = _ById(self._regions_by_id, rid_arr)
        if attached:
            cards_m = self._cards_all[rid_arr]
            ccnt = self._ccnt_all[rid_arr]
            arql = self._rql_all[rid_arr]
        else:
            cards_m = np.vstack([self._cards_for(r) for r in regions])
            ccnt = np.asarray([r.cell_count for r in regions], dtype=np.int64)
            arql = np.asarray([r.active_rql for r in regions], dtype=np.int64)
        # One (candidates, queries) membership matrix; cached ProgEst values
        # are copied out in a single gather, so the per-query loop only
        # touches queries with at least one cache miss.
        bits = ((arql[:, None] >> np.arange(n_q, dtype=np.int64)[None, :]) & 1).astype(bool)
        if use_cache and attached:
            hit_m = bits & self._prog_ok[rid_arr]
            np.copyto(prog, self._prog_val[rid_arr], where=hit_m)
            miss_m = bits & ~hit_m
        else:
            miss_m = bits
        for qi in np.flatnonzero(miss_m.any(axis=0)).tolist():
            miss = np.flatnonzero(miss_m[:, qi])
            cacheable = use_cache and attached
            mrids = rid_arr[miss]
            sc = self._scounts.get(qi) if use_cache else None
            ec = self._ecounts.get(qi) if use_cache else None
            small = ccnt[miss] <= self.exact_cell_limit
            # Rows that already hold a count row skip the reach broadcast
            # entirely: the exact/sampled branch choice is monotone (an
            # exact row stays exact because ``n_dom`` only shrinks and the
            # cell count is fixed; an over-limit box can never turn exact),
            # and a row whose reach set emptied reads ratio 1.0 — exactly
            # the empty-reach shortcut value.
            if attached and ec is not None:
                eslots = ec.slot_arr[mrids]
            else:
                eslots = np.full(len(miss), -1, dtype=np.int64)
            if attached and sc is not None:
                sslots = sc.slot_arr[mrids]
            else:
                sslots = np.full(len(miss), -1, dtype=np.int64)
            e_read = (eslots >= 0) & small
            s_read = (sslots >= 0) & ~small
            if e_read.any():
                er = np.flatnonzero(e_read)
                es = eslots[er]
                counts = ec.counts[es] > 0
                counts &= ec.arange[None, :] < ec.ncells[es][:, None]
                at_risk = counts.sum(axis=1)
                totals = ccnt[miss[er]]
                vals = ((totals - at_risk) / totals) * cards_m[miss[er], qi]
                prog[miss[er], qi] = vals
                if cacheable:
                    self._prog_val[mrids[er], qi] = vals
                    self._prog_ok[mrids[er], qi] = True
            if s_read.any():
                sr = np.flatnonzero(s_read)
                ss = sslots[sr]
                ratios = 1.0 - (sc.counts[ss] > 0).mean(axis=1)
                vals = ratios * cards_m[miss[sr], qi]
                prog[miss[sr], qi] = vals
                if cacheable:
                    self._prog_val[mrids[sr], qi] = vals
                    self._prog_ok[mrids[sr], qi] = True
            rest = np.flatnonzero(~(e_read | s_read))
            if not rest.size:
                continue
            positions = list(self.query_positions[qi])
            rrids = mrids[rest]
            cached_member = self._member_cache.get(qi)
            if cached_member is None:
                member = self._active_all & (
                    ((self._rql_all >> qi) & 1).astype(bool)
                )
                ids_all = np.flatnonzero(member)
                lowers_all = self._lower_q[qi][ids_all]
                self._member_cache[qi] = (ids_all, lowers_all)
            else:
                ids_all, lowers_all = cached_member
            if len(ids_all) == 0:
                rrows = miss[rest]
                prog[rrows, qi] = cards_m[rrows, qi]
                if cacheable:
                    self._prog_val[rrids, qi] = prog[rrows, qi]
                    self._prog_ok[rrids, qi] = True
                continue
            if attached:
                # Attached geometry is immutable, so these rows hold the
                # same float64 values as each region's own ``upper``.
                uppers = self._upper_q[qi][rrids]
            else:
                uppers = np.vstack(
                    [regions[int(k)].upper[positions] for k in miss[rest]]
                )
            # reach[r, i]: active member i can lower rest-row r's ratio.
            reach_r = (lowers_all[None, :, :] < uppers[:, None, :]).all(axis=2)
            reach_r &= ids_all[None, :] != rrids[:, None]
            n_dom_r = reach_r.sum(axis=1)
            # Scatter the rest-local data back to miss-local indexing so
            # the branch code below reads one coordinate system.
            reach = np.zeros((len(miss), len(ids_all)), dtype=bool)
            reach[rest] = reach_r
            n_dom = np.zeros(len(miss), dtype=n_dom_r.dtype)
            n_dom[rest] = n_dom_r
            zero_r = n_dom_r == 0
            if zero_r.any():
                zrows = miss[rest[zero_r]]
                prog[zrows, qi] = cards_m[zrows, qi]
                if cacheable:
                    self._prog_val[rrids[zero_r], qi] = prog[zrows, qi]
                    self._prog_ok[rrids[zero_r], qi] = True
            exact = np.zeros(len(miss), dtype=bool)
            exact[rest] = small[rest] & (n_dom_r <= EXACT_DOMINATOR_LIMIT) & ~zero_r
            scalar = rest[~zero_r]
            if use_cache and attached:
                sinit = [j for j in scalar.tolist() if not exact[j]]
                scalar = scalar[exact[scalar]]
                if sinit and sc is not None:
                    # Small-box rows that stayed sampled (n_dom still over
                    # the exact limit) already hold a live count row —
                    # batched read, not a re-init.
                    sj = np.asarray(sinit, dtype=np.intp)
                    slots2 = sc.slot_arr[mrids[sj]]
                    have = slots2 >= 0
                    if have.any():
                        sr2 = sj[have]
                        ss2 = slots2[have]
                        ratios = 1.0 - (sc.counts[ss2] > 0).mean(axis=1)
                        vals = ratios * cards_m[miss[sr2], qi]
                        prog[miss[sr2], qi] = vals
                        self._prog_val[mrids[sr2], qi] = vals
                        self._prog_ok[mrids[sr2], qi] = True
                        sinit = sj[~have].tolist()
            else:
                sinit = []
            if sinit:
                # Sampled-branch first touches, initialised in one padded
                # broadcast: threat rows are padded with +inf corners,
                # which dominate nothing, so the per-row counts equal the
                # unpadded scalar initialisation exactly.
                latts = [
                    self._lattice_for(regions[int(miss[j])], qi, positions)
                    for j in sinit
                ]
                if sc is None:
                    sc = _SampleCounts(
                        len(latts[0]), len(positions), len(self._rql_all)
                    )
                    self._scounts[qi] = sc
                tmax = max(int(n_dom[j]) for j in sinit)
                thr = np.full((len(sinit), tmax, len(positions)), np.inf)
                for b, j in enumerate(sinit):
                    lw = lowers_all[reach[j]]
                    thr[b, : len(lw)] = lw
                samp = np.stack(latts)
                counts = dominance_broadcast(
                    thr[:, :, None, :], samp[:, None, :, :], axis=3
                ).sum(axis=1, dtype=np.int32)
                ratios = 1.0 - (counts > 0).mean(axis=1)
                for b, j in enumerate(sinit):
                    k = int(miss[j])
                    rid = regions[k].region_id
                    sc.add(
                        rid,
                        latts[b],
                        self._upper_q[qi][rid],
                        counts[b],
                    )
                    prog[k, qi] = ratios[b] * cards_m[k, qi]
                    self._prog_val[rid, qi] = prog[k, qi]
                    self._prog_ok[rid, qi] = True
            if cacheable and scalar.size and ec is None:
                ec = _CellCounts(
                    self.exact_cell_limit, len(positions), len(self._rql_all)
                )
                self._ecounts[qi] = ec
            if cacheable and scalar.size:
                # Exact-branch first touches (every cached exact row was
                # already read above, so these are all row-less).  Cell
                # lattices pad to the widest box — padded columns are
                # sliced off before the count rows are stored — and threat
                # rows pad with +inf corners, which dominate nothing.
                sl = scalar.tolist()
                cls = [
                    self._cell_lowers_for(regions[int(miss[j])])[:, positions]
                    for j in sl
                ]
                ncl = [len(c) for c in cls]
                cmax = max(ncl)
                cellp = np.full((len(sl), cmax, len(positions)), np.inf)
                tmax = max(int(n_dom[j]) for j in sl)
                thr = np.full((len(sl), tmax, len(positions)), np.inf)
                for b, j in enumerate(sl):
                    cellp[b, : ncl[b]] = cls[b]
                    tu = self._cupper_q[qi][ids_all[reach[j]]]
                    thr[b, : len(tu)] = tu
                counts = dominance_broadcast(
                    thr[:, :, None, :], cellp[:, None, :, :], axis=3
                ).sum(axis=1, dtype=np.int32)
                for b, j in enumerate(sl):
                    k = int(miss[j])
                    region = regions[k]
                    rid = region.region_id
                    row = ec.add(
                        rid,
                        cls[b],
                        self._upper_q[qi][rid],
                        counts[b, : ncl[b]],
                    )
                    total = region.cell_count
                    safe = total - int((ec.counts[row, : ncl[b]] > 0).sum())
                    ratio = safe / total if total else 0.0
                    prog[k, qi] = ratio * cards_m[k, qi]
                    self._prog_val[rid, qi] = prog[k, qi]
                    self._prog_ok[rid, qi] = True
                continue
            for j in scalar.tolist():
                k = int(miss[j])
                region = regions[k]
                row = reach[j]
                ratio = self._ratio_value(
                    region,
                    qi,
                    ids_all[row],
                    lowers_all[row],
                    positions,
                    use_cache,
                )
                prog[k, qi] = ratio * cards_m[k, qi]
                if cacheable:
                    self._prog_val[region.region_id, qi] = prog[k, qi]
                    self._prog_ok[region.region_id, qi] = True
        if attached:
            t_c = self._cost_all[rid_arr]
        else:
            t_c = np.asarray([self._cost_for(r) for r in regions])
        return t_c, prog

    # ------------------------------------------------------------------ #
    # Equation 8
    # ------------------------------------------------------------------ #
    def csm(
        self,
        region: OutputRegion,
        estimate: RegionEstimate,
        weights: np.ndarray,
        now: float,
    ) -> float:
        """Cumulative Satisfaction Metric at virtual time ``now``."""
        if len(weights) != len(self.workload):
            raise ExecutionError("weight vector arity mismatch")
        report_time = now + estimate.t_c
        total = 0.0
        for qi in range(len(self.workload)):
            batch = float(estimate.prog_est[qi])
            if batch <= 0.0 or weights[qi] <= 0.0:
                continue
            total += weights[qi] * self.contracts[qi].batch_utility(
                report_time, batch, float(self.result_estimates[qi])
            )
        return total

    def csm_batch(
        self,
        estimates: "list[RegionEstimate]",
        weights: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Equation 8 for many candidate regions at once (one optimizer
        iteration scores every root; this keeps that scoring vectorised)."""
        if not estimates:
            return np.zeros(0)
        t_c = np.asarray([e.t_c for e in estimates])
        prog = np.vstack([e.prog_est for e in estimates])  # (R, Q)
        return self.csm_batch_arrays(t_c, prog, weights, now)

    def csm_batch_arrays(
        self,
        t_c: np.ndarray,
        prog: np.ndarray,
        weights: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """:meth:`csm_batch` over the array form estimate_roots_arrays
        returns — no per-region object packaging in between."""
        if not len(t_c):
            return np.zeros(0)
        times = now + t_c
        total = np.zeros(len(t_c))
        fused = (
            self._fused_contract_type.fused_tuple_utilities(
                self.contracts, times
            )
            if self._fused_contract_type is not None
            else None
        )
        for qi in range(len(self.workload)):
            if weights[qi] <= 0.0:
                continue
            if fused is not None:
                # Same elementwise ops and accumulation order as the
                # per-contract branch — the utilities matrix is just
                # computed in one broadcast.
                batches = prog[:, qi]
                utilities = np.where(batches > 0, batches * fused[qi], 0.0)
            else:
                utilities = self.contracts[qi].batch_utilities(
                    times, prog[:, qi], float(self.result_estimates[qi])
                )
            total += weights[qi] * utilities
        return total


# --------------------------------------------------------------------- #
# Cross-tenant ranking (docs/ARCHITECTURE.md §15.2)
# --------------------------------------------------------------------- #
# Equation 8 already prices a region's marginal benefit in a currency
# that is comparable *across queries* (contract utility per unit virtual
# time); summing over a workload keeps the unit, so the same currency is
# comparable across whole submissions — and hence across tenants.  The
# serving scheduler extends the model with exactly two tenant-level
# terms: a fair-share weight scaling the benefit, and a deficit-round-
# robin correction that pulls starved tenants forward.


@dataclass(frozen=True)
class TenantOffer:
    """One tenant's bid in the cross-tenant region auction.

    ``csm`` is the tenant's best root CSM (Eq. 8 via Eq. 10 progressive
    estimates) from :meth:`repro.core.caqe.LiveRun.peek_best_csm`;
    ``deficit`` is virtual time the tenant is owed under its fair share
    (entitled minus received service).
    """

    tenant: str
    csm: float
    weight: float = 1.0
    deficit: float = 0.0
    tier: int = 1


def cross_tenant_scores(
    offers: "Sequence[TenantOffer]", fairness_pressure: float = 0.0
) -> np.ndarray:
    """Score each offer: ``weight * csm + pressure * max(deficit, 0)``.

    The first term is Eq. 8 scaled by the tenant's fair-share weight;
    the second converts owed virtual time into the same benefit currency
    at a configured exchange rate, so a starved tenant's offer rises
    linearly with its deficit and eventually wins any auction (bounded
    starvation).  Pure and vectorised — the scheduler calls this once
    per region pick.
    """
    if not offers:
        return np.zeros(0)
    csm = np.asarray([o.csm for o in offers], dtype=float)
    weight = np.asarray([o.weight for o in offers], dtype=float)
    deficit = np.asarray([o.deficit for o in offers], dtype=float)
    return weight * csm + float(fairness_pressure) * np.maximum(deficit, 0.0)


def rank_offers(
    offers: "Sequence[TenantOffer]", fairness_pressure: float = 0.0
) -> "list[int]":
    """Offer indices best-first; ties break toward the earlier offer.

    The stable descending sort mirrors :meth:`CAQE._rank_regions`'s
    tie-break discipline, so the cross-tenant pick is deterministic for
    any fixed submission order.
    """
    if not offers:
        return []
    scores = cross_tenant_scores(offers, fairness_pressure)
    return np.argsort(-scores, kind="stable").tolist()


__all__ = [
    "EXACT_CELL_LIMIT",
    "BenefitModel",
    "RegionEstimate",
    "TenantOffer",
    "cross_tenant_scores",
    "prog_count_exact",
    "prog_ratio_sampled",
    "prog_ratio_volume",
    "rank_offers",
]
