"""The contract-driven cost/benefit model (Section 5.3).

For each candidate region the optimizer needs, at current virtual time
``t_curr``:

* ``t_c`` — the estimated virtual time tuple-level processing will take
  (the *cost* of considering the region);
* ``ProgEst(R_c, Q_i, t_c)`` (Equation 10) — how many results the region
  can *progressively* output for each query: the Buchta cardinality
  estimate of Equation 9 scaled by the fraction of the region's output
  cells that no other region can dominate (Definition 11's progressive
  cell count);
* ``CSM(R_c)`` (Equation 8) — the weighted sum over queries of the
  estimated utility those results would earn under each query's contract
  at time ``t_curr + t_c``.

Progressive cell counts are exact when the region's coordinate box is
small (:func:`prog_count_exact`, Definition 11/Example 18 semantics) and
fall back to a volume-ratio approximation for large boxes — estimation
error is acceptable here because the optimizer re-ranks after every region
anyway (Section 5.3's feedback-driven iteration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.contracts.base import Contract
from repro.core.clock import CostModel
from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.errors import ExecutionError
from repro.plan.minmax_cuboid import MinMaxCuboid
from repro.query.workload import Workload
from repro.skyline.dominance import dominance_broadcast, dominance_mask
from repro.skyline.estimate import buchta_skyline_size

#: Above this many output cells the exact progressive count switches to the
#: volume approximation.
EXACT_CELL_LIMIT = 256
#: Above this many potential dominators the exact count is skipped too.
EXACT_DOMINATOR_LIMIT = 16


def prog_count_exact(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
    grid: OutputGrid,
) -> "tuple[int, int]":
    """Definition 11: (non-dominatable cells, total cells) of ``region``.

    A cell of ``region`` is at risk for the examined query iff some other
    contributing region has a cell whose upper corner dominates this cell's
    lower corner (Definition 8 case 2 at cell granularity); the most
    dominating cell any region can populate is the one at its coordinate
    lower corner.
    """
    pos = list(positions)
    threats = [d for d in dominators if d.region_id != region.region_id]
    total = OutputGrid.box_cell_count(region.coord_lo, region.coord_hi)
    if not threats:
        return total, total
    threat_uppers = np.vstack([grid.cell_upper(d.coord_lo)[pos] for d in threats])
    coords = np.array(
        list(OutputGrid.cells_in_box(region.coord_lo, region.coord_hi)),
        dtype=np.intp,
    )
    cell_lowers = grid.cell_lowers(coords)[:, pos]  # (cells, |pos|)
    at_risk = dominance_mask(threat_uppers, cell_lowers).any(axis=0)
    return int(total - int(at_risk.sum())), total


def prog_ratio_volume(
    region: OutputRegion,
    dominators: "list[OutputRegion]",
    positions: "tuple[int, ...]",
) -> float:
    """Volume approximation of ``ProgCount / CellCount``.

    For each potential dominator, the at-risk part of the region's box is
    the sub-box strictly above the dominator's lower corner; assuming
    independent overlaps, the safe fraction is the product of per-dominator
    safe fractions.  With many overlapping dominators the independence
    assumption over-counts and the product collapses toward zero, so the
    benefit model prefers :func:`prog_ratio_sampled`; this form is kept for
    the cheap two-dominator cases and as the documented naive baseline.
    """
    pos = list(positions)
    lo = region.lower[pos]
    hi = region.upper[pos]
    width = np.maximum(hi - lo, 1e-12)
    others = [d for d in dominators if d.region_id != region.region_id]
    if not others:
        return 1.0
    other_lo = np.vstack([d.lower[pos] for d in others])
    reach = np.all(other_lo < hi, axis=1)  # can the dominator enter the box?
    if not np.any(reach):
        return 1.0
    fracs = np.prod(
        np.clip((hi - np.maximum(lo, other_lo[reach])) / width, 0.0, 1.0), axis=1
    )
    safe = float(np.prod(1.0 - fracs))
    return max(safe, 0.0)


#: Lattice resolution per dimension for the sampled progressive ratio.
_SAMPLES_PER_DIM = 3


def _sample_lattice(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """A deterministic lattice of cell-center points inside ``[lo, hi]``."""
    d = len(lo)
    k = _SAMPLES_PER_DIM if d <= 4 else 2
    axes = [
        np.linspace(lo[i] + (hi[i] - lo[i]) / (2 * k),
                    hi[i] - (hi[i] - lo[i]) / (2 * k), k)
        for i in range(d)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.column_stack([m.ravel() for m in mesh])


def prog_ratio_sampled(
    lower: np.ndarray,
    upper: np.ndarray,
    dominator_lowers: np.ndarray,
) -> float:
    """Sampled estimate of the non-dominated fraction of a region's box.

    The at-risk part of the box is the *union* of upper-orthants above the
    dominators' lower corners (the staircase of Definition 11); a fixed
    lattice of sample points estimates that union's share directly, without
    the independence assumption that breaks the product form.
    """
    if len(dominator_lowers) == 0:
        return 1.0
    return _sampled_ratio(_sample_lattice(lower, upper), dominator_lowers)


def _sampled_ratio(samples: np.ndarray, dominator_lowers: np.ndarray) -> float:
    """The sampled non-dominated fraction over a precomputed lattice."""
    dominated = dominance_mask(dominator_lowers, samples).any(axis=0)
    return float(1.0 - dominated.mean())


@dataclass
class RegionEstimate:
    """Cached per-region estimates feeding the CSM."""

    t_c: float
    #: ProgEst per workload-query bit (len == |S_Q|).
    prog_est: np.ndarray


class _SampleCounts:
    """Per-query incremental dominator counts over region sample lattices.

    Row ``slot[rid]`` holds, for each lattice sample of region ``rid``, how
    many *currently reaching* same-lineage regions dominate that sample.
    The sampled progressive ratio is then ``1 - mean(counts > 0)`` — read in
    O(S) — and stays exact under Algorithm 1's only membership events
    (region removal and lineage loss) via one vectorised subtraction of the
    departing region's domination mask per event.
    """

    __slots__ = ("samples", "counts", "uppers", "slot", "size")

    def __init__(self, n_samples: int, width: int) -> None:
        cap = 64
        self.samples = np.empty((cap, n_samples, width))
        self.counts = np.zeros((cap, n_samples), dtype=np.int32)
        self.uppers = np.empty((cap, width))
        self.slot: dict[int, int] = {}
        self.size = 0

    def add(
        self,
        region_id: int,
        samples: np.ndarray,
        upper: np.ndarray,
        counts: np.ndarray,
    ) -> int:
        if self.size == len(self.samples):
            def grown(arr: np.ndarray) -> np.ndarray:
                out = np.empty((2 * len(arr), *arr.shape[1:]), dtype=arr.dtype)
                out[: self.size] = arr[: self.size]
                return out

            self.samples = grown(self.samples)
            self.counts = grown(self.counts)
            self.uppers = grown(self.uppers)
        row = self.size
        self.samples[row] = samples
        self.counts[row] = counts
        self.uppers[row] = upper
        self.slot[region_id] = row
        self.size += 1
        return row


class BenefitModel:
    """Computes and caches CSM inputs for Algorithm 1."""

    def __init__(
        self,
        workload: Workload,
        cuboid: MinMaxCuboid,
        grid: OutputGrid,
        contracts: "dict[str, Contract]",
        cost_model: CostModel,
        *,
        exact_cell_limit: int = EXACT_CELL_LIMIT,
    ) -> None:
        self.workload = workload
        self.grid = grid
        self.cost_model = cost_model
        self.exact_cell_limit = exact_cell_limit
        self.contracts = [contracts[q.name] for q in workload]
        output_dims = workload.output_dims
        table = cuboid.lattice.table
        self.query_positions: list[tuple[int, ...]] = [
            tuple(output_dims.index(n) for n in table.names(cuboid.query_nodes[q.name]))
            for q in workload
        ]
        self.query_dims = [len(p) for p in self.query_positions]
        # Memoised time-invariant inputs: ``t_c``, the Buchta cardinality
        # vector and the sample lattice depend only on a region's immutable
        # geometry, so they survive every change to the progressive term.
        self._costs: dict[int, float] = {}
        self._cards: dict[int, np.ndarray] = {}
        self._lattices: "dict[tuple[int, int], np.ndarray]" = {}
        # Exact-branch ratio memo with *lazy validation*: each entry stores
        # the exact reaching-dominator id set (as bytes) the ratio was
        # computed from; a lookup reuses the value iff the current reach set
        # matches — region geometry is immutable, so an unchanged id set
        # implies bit-identical estimator inputs.
        self._ratios: "dict[tuple[int, int], tuple[bytes, float]]" = {}
        # Sampled-branch incremental state, one structure per query; rows
        # are created lazily at a region's first sampled estimate and kept
        # current by :meth:`note_removed`/:meth:`note_deactivation`.
        self._scounts: "dict[int, _SampleCounts]" = {}
        #: Estimated final result count per query (needed by cardinality
        #: contracts); populated via :meth:`set_result_estimates`.
        self.result_estimates = np.ones(len(workload))
        # Global region arrays for vectorised ProgCount estimation; filled by
        # :meth:`attach_regions` and kept in sync via note_* callbacks.
        self._lower_all: "np.ndarray | None" = None
        self._rql_all: "np.ndarray | None" = None
        self._active_all: "np.ndarray | None" = None
        self._regions_by_id: "dict[int, OutputRegion]" = {}

    def set_result_estimates(self, totals: "dict[str, float]") -> None:
        for qi, query in enumerate(self.workload):
            self.result_estimates[qi] = max(totals.get(query.name, 1.0), 1.0)

    # ------------------------------------------------------------------ #
    # Region-array bookkeeping
    # ------------------------------------------------------------------ #
    def attach_regions(self, regions: "list[OutputRegion]") -> None:
        """Register the run's alive regions for vectorised estimation."""
        self._costs.clear()
        self._cards.clear()
        self._lattices.clear()
        self._ratios.clear()
        self._scounts.clear()
        if not regions:
            self._lower_all = np.empty((0, len(self.workload.output_dims)))
            self._rql_all = np.empty(0, dtype=np.int64)
            self._active_all = np.empty(0, dtype=bool)
            self._regions_by_id = {}
            return
        max_id = max(r.region_id for r in regions)
        self._lower_all = np.zeros((max_id + 1, len(self.workload.output_dims)))
        self._rql_all = np.zeros(max_id + 1, dtype=np.int64)
        self._active_all = np.zeros(max_id + 1, dtype=bool)
        self._regions_by_id = {}
        for r in regions:
            self._lower_all[r.region_id] = r.lower
            self._rql_all[r.region_id] = r.active_rql
            self._active_all[r.region_id] = True
            self._regions_by_id[r.region_id] = r

    def note_removed(self, region_id: int) -> None:
        """A region was processed or fully discarded."""
        if self._rql_all is not None and region_id < len(self._rql_all):
            rql = int(self._rql_all[region_id])
            for qi in range(len(self.workload)):
                if (rql >> qi) & 1:
                    self._retire_threat(region_id, qi)
        if self._active_all is not None and region_id < len(self._active_all):
            self._active_all[region_id] = False
        self._costs.pop(region_id, None)
        self._cards.pop(region_id, None)
        for qi in range(len(self.workload)):
            self._lattices.pop((region_id, qi), None)
            self._ratios.pop((region_id, qi), None)
            sc = self._scounts.get(qi)
            if sc is not None:
                sc.slot.pop(region_id, None)

    def note_deactivation(self, region_id: int, query_bit: int) -> None:
        """A region lost one query from its lineage."""
        self._retire_threat(region_id, query_bit)
        if self._rql_all is not None and region_id < len(self._rql_all):
            self._rql_all[region_id] &= ~(np.int64(1) << query_bit)
        self._ratios.pop((region_id, query_bit), None)

    def _retire_threat(self, region_id: int, qi: int) -> None:
        """Subtract a departing region's domination contribution from every
        initialised sample-count row of query ``qi`` it reaches.

        Geometry is immutable, so the reach test and domination mask
        recomputed here are exactly what the row's initialisation counted —
        the subtraction leaves each row equal to a from-scratch count over
        the post-event membership.
        """
        sc = self._scounts.get(qi)
        if sc is None or sc.size == 0 or self._lower_all is None:
            return
        positions = list(self.query_positions[qi])
        lower = self._lower_all[region_id][positions]
        n = sc.size
        reach = np.all(lower[None, :] < sc.uppers[:n], axis=1)
        own = sc.slot.get(region_id)
        if own is not None:
            reach[own] = False
        rows = np.flatnonzero(reach)
        if not rows.size:
            return
        samp = sc.samples[rows]
        sc.counts[rows] -= dominance_broadcast(lower, samp, axis=2).astype(
            np.int32
        )

    # ------------------------------------------------------------------ #
    # Cost side
    # ------------------------------------------------------------------ #
    def estimate_cost(self, region: OutputRegion) -> float:
        """Estimated virtual time ``t_c`` to process ``region``."""
        cm = self.cost_model
        est_join = max(region.est_join_count, 0.0)
        scan = cm.join_probe * (region.left_size + region.right_size)
        materialise = (cm.join_result + cm.mapping * len(self.workload.output_dims)) * est_join
        # Each inserted tuple pays roughly one window scan per cuboid level;
        # ln(est_join) approximates the window size it meets.
        per_insert = max(1.0, math.log(max(est_join, 2.0)))
        skyline = cm.skyline_comparison * est_join * per_insert
        return cm.region_overhead + scan + materialise + skyline

    # ------------------------------------------------------------------ #
    # Benefit side
    # ------------------------------------------------------------------ #
    def cardinality(self, region: OutputRegion, qi: int) -> float:
        """Equation 9 for one region and query."""
        d = self.query_dims[qi]
        return buchta_skyline_size(region.est_join_count, d)

    def _reaching_dominators(
        self, region: OutputRegion, qi: int
    ) -> "tuple[np.ndarray, np.ndarray, list[int]]":
        """Active same-lineage regions whose lower corner reaches into
        ``region``'s box over query ``qi``'s subspace.

        Only these can lower the progressive ratio (a corner at or above the
        box's upper bound in some dimension threatens no cell), so both the
        exact and the sampled estimators are evaluated over this set — which
        makes the set the *complete* input fingerprint of a cached ratio.
        """
        positions = list(self.query_positions[qi])
        member = self._active_all & (((self._rql_all >> qi) & 1).astype(bool))
        if region.region_id < len(member):
            member = member.copy()
            member[region.region_id] = False
        ids = np.flatnonzero(member)
        lowers = self._lower_all[ids][:, positions]
        if len(ids):
            reach = np.all(lowers < region.upper[positions], axis=1)
            ids = ids[reach]
            lowers = lowers[reach]
        return ids, lowers, positions

    def prog_ratio(self, region: OutputRegion, qi: int) -> float:
        """``ProgCount / CellCount`` against the currently active regions."""
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before estimation")
        ids, dominator_lowers, positions = self._reaching_dominators(region, qi)
        if len(ids) == 0:
            return 1.0
        if (
            region.cell_count <= self.exact_cell_limit
            and len(ids) <= EXACT_DOMINATOR_LIMIT
        ):
            dominators = [self._regions_by_id[int(rid)] for rid in ids]
            safe, total = prog_count_exact(
                region, dominators, tuple(positions), self.grid
            )
            return safe / total if total else 0.0
        lo = region.lower[positions]
        hi = region.upper[positions]
        return prog_ratio_sampled(lo, hi, dominator_lowers)

    def _cards_for(self, region: OutputRegion) -> np.ndarray:
        cards = self._cards.get(region.region_id)
        if cards is None:
            cards = np.array(
                [self.cardinality(region, qi) for qi in range(len(self.workload))]
            )
            self._cards[region.region_id] = cards
        return cards

    def _cost_for(self, region: OutputRegion) -> float:
        t_c = self._costs.get(region.region_id)
        if t_c is None:
            t_c = self.estimate_cost(region)
            self._costs[region.region_id] = t_c
        return t_c

    def _lattice_for(
        self, region: OutputRegion, qi: int, positions: "list[int]"
    ) -> np.ndarray:
        key = (region.region_id, qi)
        samples = self._lattices.get(key)
        if samples is None:
            samples = _sample_lattice(
                region.lower[positions], region.upper[positions]
            )
            self._lattices[key] = samples
        return samples

    def _ratio_value(
        self,
        region: OutputRegion,
        qi: int,
        ids: np.ndarray,
        lowers: np.ndarray,
        positions: "list[int]",
        use_cache: bool,
    ) -> float:
        """Progressive ratio for one (region, query) given its reach set.

        ``ids``/``lowers`` are the reaching dominators — the ratio's entire
        input besides immutable region geometry.  With ``use_cache`` on,
        exact-branch values are memoised against the id set and
        sampled-branch values are read from the incrementally maintained
        dominator counts; with it off everything is recomputed from scratch
        (the naive-rescan mode the regression tests compare against).
        Both modes return bit-identical values.
        """
        if len(ids) == 0:
            return 1.0
        key = (region.region_id, qi)
        if (
            region.cell_count <= self.exact_cell_limit
            and len(ids) <= EXACT_DOMINATOR_LIMIT
        ):
            fingerprint = ids.tobytes()
            if use_cache:
                hit = self._ratios.get(key)
                if hit is not None and hit[0] == fingerprint:
                    return hit[1]
            dominators = [self._regions_by_id[int(r)] for r in ids]
            safe, total = prog_count_exact(
                region, dominators, tuple(positions), self.grid
            )
            ratio = safe / total if total else 0.0
            self._ratios[key] = (fingerprint, ratio)
            return ratio
        samples = self._lattice_for(region, qi, positions)
        if not use_cache:
            return _sampled_ratio(samples, lowers)
        sc = self._scounts.get(qi)
        if sc is None:
            sc = _SampleCounts(len(samples), len(positions))
            self._scounts[qi] = sc
        row = sc.slot.get(region.region_id)
        if row is None:
            counts = dominance_mask(lowers, samples).sum(axis=0, dtype=np.int32)
            row = sc.add(
                region.region_id, samples, region.upper[positions], counts
            )
        return float(1.0 - (sc.counts[row] > 0).mean())

    def estimate(self, region: OutputRegion) -> RegionEstimate:
        """``t_c`` and per-query ProgEst for one region."""
        return self.estimate_roots([region])[0]

    def estimate_roots(
        self,
        regions: "list[OutputRegion]",
        *,
        use_cache: bool = True,
    ) -> "list[RegionEstimate]":
        """Estimates for one optimizer iteration's candidate set.

        The reach test — which active same-lineage regions can lower each
        candidate's progressive ratio — runs as one broadcast per query over
        the whole candidate set; per candidate only a changed reach set
        triggers an estimator call.  Results are bit-identical to calling
        the estimators from scratch per candidate.
        """
        if self._active_all is None:
            raise ExecutionError("attach_regions() must run before estimation")
        n_q = len(self.workload)
        prog = np.zeros((len(regions), n_q))
        cards = [self._cards_for(r) for r in regions]
        for qi in range(n_q):
            rows = [k for k, r in enumerate(regions) if (r.active_rql >> qi) & 1]
            if not rows:
                continue
            positions = list(self.query_positions[qi])
            member = self._active_all & (((self._rql_all >> qi) & 1).astype(bool))
            ids_all = np.flatnonzero(member)
            if len(ids_all) == 0:
                for k in rows:
                    prog[k, qi] = cards[k][qi]
                continue
            lowers_all = self._lower_all[ids_all][:, positions]
            uppers = np.vstack([regions[k].upper[positions] for k in rows])
            reach = np.all(lowers_all[None, :, :] < uppers[:, None, :], axis=2)
            rids = np.asarray([regions[k].region_id for k in rows])
            reach &= ids_all[None, :] != rids[:, None]
            n_dom = reach.sum(axis=1)
            # Sampled-branch reads batch into one pass over the count rows;
            # everything else (empty reach, exact branch, uninitialised
            # count rows) goes through the scalar path.
            sc = self._scounts.get(qi) if use_cache else None
            batched: "list[int]" = []
            batched_slots: "list[int]" = []
            for j, k in enumerate(rows):
                region = regions[k]
                if n_dom[j] == 0:
                    prog[k, qi] = cards[k][qi]
                    continue
                if sc is not None and not (
                    region.cell_count <= self.exact_cell_limit
                    and n_dom[j] <= EXACT_DOMINATOR_LIMIT
                ):
                    slot = sc.slot.get(region.region_id)
                    if slot is not None:
                        batched.append(k)
                        batched_slots.append(slot)
                        continue
                row = reach[j]
                ratio = self._ratio_value(
                    region,
                    qi,
                    ids_all[row],
                    lowers_all[row],
                    positions,
                    use_cache,
                )
                prog[k, qi] = ratio * cards[k][qi]
            if batched:
                ratios = 1.0 - (sc.counts[batched_slots] > 0).mean(axis=1)
                for k, ratio in zip(batched, ratios.tolist()):
                    prog[k, qi] = ratio * cards[k][qi]
        return [
            RegionEstimate(t_c=self._cost_for(r), prog_est=prog[k])
            for k, r in enumerate(regions)
        ]

    # ------------------------------------------------------------------ #
    # Equation 8
    # ------------------------------------------------------------------ #
    def csm(
        self,
        region: OutputRegion,
        estimate: RegionEstimate,
        weights: np.ndarray,
        now: float,
    ) -> float:
        """Cumulative Satisfaction Metric at virtual time ``now``."""
        if len(weights) != len(self.workload):
            raise ExecutionError("weight vector arity mismatch")
        report_time = now + estimate.t_c
        total = 0.0
        for qi in range(len(self.workload)):
            batch = float(estimate.prog_est[qi])
            if batch <= 0.0 or weights[qi] <= 0.0:
                continue
            total += weights[qi] * self.contracts[qi].batch_utility(
                report_time, batch, float(self.result_estimates[qi])
            )
        return total

    def csm_batch(
        self,
        estimates: "list[RegionEstimate]",
        weights: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Equation 8 for many candidate regions at once (one optimizer
        iteration scores every root; this keeps that scoring vectorised)."""
        if not estimates:
            return np.zeros(0)
        times = now + np.asarray([e.t_c for e in estimates])
        prog = np.vstack([e.prog_est for e in estimates])  # (R, Q)
        total = np.zeros(len(estimates))
        for qi in range(len(self.workload)):
            if weights[qi] <= 0.0:
                continue
            utilities = self.contracts[qi].batch_utilities(
                times, prog[:, qi], float(self.result_estimates[qi])
            )
            total += weights[qi] * utilities
        return total


__all__ = [
    "EXACT_CELL_LIMIT",
    "BenefitModel",
    "RegionEstimate",
    "prog_count_exact",
    "prog_ratio_sampled",
    "prog_ratio_volume",
]
