"""The satisfaction-based feedback mechanism (Section 6, Equation 11).

After each region's tuple-level processing, each query's run-time
satisfaction metric ``v(Q_i)`` is compared against the best-satisfied
query's metric ``v_curr_max``; lagging queries get their CSM weight bumped
proportionally so the optimizer next favours regions that serve them:

    w'_i = w_i + (v_max - v_i) / sum_j (v_max - v_j)

When every query is equally satisfied the denominator vanishes and weights
stay unchanged (everyone is on track — Example 20's normalisation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


def update_weights(
    weights: np.ndarray,
    satisfactions: np.ndarray,
) -> np.ndarray:
    """Equation 11 applied to the whole weight vector at once."""
    w = np.asarray(weights, dtype=float)
    v = np.asarray(satisfactions, dtype=float)
    if w.shape != v.shape:
        raise ExecutionError(
            f"weights shape {w.shape} does not match satisfactions {v.shape}"
        )
    if len(w) == 0:
        return w.copy()
    v_max = float(np.max(v))
    gaps = v_max - v
    denom = float(np.sum(gaps))
    if denom <= 0.0:
        return w.copy()
    return w + gaps / denom


__all__ = ["update_weights"]
