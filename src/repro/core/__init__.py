"""CAQE core: virtual clock, MQLA, benefit model, optimizer loop, executor."""

from repro.core.benefit import BenefitModel, prog_count_exact, prog_ratio_volume
from repro.core.caqe import CAQE, CAQEConfig, RunResult, run_caqe
from repro.core.clock import CostModel, VirtualClock
from repro.core.continuous import ContinuousCAQE, EpochResult
from repro.core.topk import TopKEngine, TopKJoinQuery, TopKRunResult, reference_topk
from repro.core.coarse_join import CoarseJoinResult, coarse_join
from repro.core.coarse_skyline import CoarseSkylineResult, coarse_skyline
from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.executor import (
    JoinResultStore,
    RegionExecutor,
    RegionOutcome,
    ResultIdentity,
)
from repro.core.feedback import update_weights
from repro.core.output_space import DEFAULT_DIVISIONS, OutputGrid, grid_for_cells
from repro.core.region import (
    OutputRegion,
    RegionDominance,
    point_could_be_dominated_by_region,
    point_dominates_region,
    region_dominance,
)
from repro.core.stats import ExecutionStats

__all__ = [
    "CAQE",
    "CAQEConfig",
    "BenefitModel",
    "CoarseJoinResult",
    "CoarseSkylineResult",
    "ContinuousCAQE",
    "CostModel",
    "EpochResult",
    "DEFAULT_DIVISIONS",
    "DependencyGraph",
    "ExecutionStats",
    "JoinResultStore",
    "OutputGrid",
    "OutputRegion",
    "RegionDominance",
    "RegionExecutor",
    "RegionOutcome",
    "ResultIdentity",
    "RunResult",
    "TopKEngine",
    "TopKJoinQuery",
    "TopKRunResult",
    "VirtualClock",
    "reference_topk",
    "build_dependency_graph",
    "coarse_join",
    "coarse_skyline",
    "grid_for_cells",
    "point_could_be_dominated_by_region",
    "point_dominates_region",
    "prog_count_exact",
    "prog_ratio_volume",
    "region_dominance",
    "run_caqe",
    "update_weights",
]
