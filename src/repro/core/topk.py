"""Contract-driven Top-K-over-join processing (extension).

Section 1.2 claims CAQE's principles "are general and can be extended to
other classes of queries"; Top-K queries [8, 13] are the other flagship
multi-criteria decision-support class the paper cites.  This module makes
the claim concrete: the same substrate — quad-tree cells, signature-driven
coarse join, output regions, a contract-driven region ordering, progressive
finality reasoning — executes workloads of *Top-K-over-join* queries.

A :class:`TopKJoinQuery` ranks join results by a non-negative weighted sum
of the workload's output dimensions (smaller is better) and asks for the
best ``k``.  Region lower corners bound every possible score from below,
which yields the two levers CAQE uses for skylines:

* **pruning** — once a query holds ``k`` results, any region whose minimum
  possible score exceeds the query's current k-th best can never
  contribute; a region useless for *every* query is discarded unjoined;
* **progressive finality** — a held result can be reported as final once
  its rank is within ``k`` among current results and no remaining region
  could produce a strictly better score.

Contracts and satisfaction metrics are reused unchanged: result tuples are
stamped with virtual time and scored by the same Table 2 classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.contracts.base import Contract
from repro.contracts.score import ResultLog
from repro.core.caqe import CAQEConfig
from repro.core.coarse_join import coarse_join
from repro.core.executor import join_cell_pair
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError, QueryError
from repro.partition.quadtree import quadtree_partition
from repro.query.evaluate import apply_functions, hash_join
from repro.query.mapping import MappingFunction
from repro.query.predicates import JoinCondition
from repro.query.workload import Workload
from repro.relation import Relation


@dataclass(frozen=True)
class TopKJoinQuery:
    """Best-``k`` join results under a monotone linear score (minimised)."""

    name: str
    join_condition: JoinCondition
    functions: "tuple[MappingFunction, ...]"
    #: Weight per output dimension, aligned with ``functions`` order.
    weights: "tuple[float, ...]"
    k: int
    priority: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("top-k query needs a name")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if len(self.weights) != len(self.functions):
            raise QueryError(
                f"{len(self.weights)} weights for {len(self.functions)} functions"
            )
        if any(w < 0 for w in self.weights):
            raise QueryError("weights must be non-negative (monotone score)")
        if not any(w > 0 for w in self.weights):
            raise QueryError("at least one weight must be positive")

    @property
    def output_names(self) -> "tuple[str, ...]":
        return tuple(f.output for f in self.functions)

    def score(self, matrix: np.ndarray) -> np.ndarray:
        return np.asarray(matrix, dtype=float) @ np.asarray(self.weights)


def reference_topk(
    query: TopKJoinQuery, left: Relation, right: Relation
) -> "list[tuple[int, int]]":
    """Ground truth: the k best join pairs, ties broken deterministically."""
    left_idx, right_idx = hash_join(left, right, query.join_condition)
    matrix = apply_functions(query.functions, left, right, left_idx, right_idx)
    if len(matrix) == 0:
        return []
    scores = query.score(matrix)
    order = np.lexsort((right_idx, left_idx, scores))
    chosen = order[: query.k]
    return [(int(left_idx[i]), int(right_idx[i])) for i in chosen]


@dataclass
class _HeldResult:
    score: float
    identity: "tuple[int, int]"

    def sort_key(self) -> "tuple[float, tuple[int, int]]":
        return (self.score, self.identity)


@dataclass
class TopKRunResult:
    """Logs, stats, and final answers of one top-k workload execution."""

    logs: "dict[str, ResultLog]"
    stats: ExecutionStats
    horizon: float
    results: "dict[str, list[tuple[int, int]]]"
    contracts: "dict[str, Contract]"

    def satisfaction(self, name: str) -> float:
        log = self.logs[name]
        return self.contracts[name].satisfaction(
            log.timestamps, float(len(log)), self.horizon
        )

    def average_satisfaction(self) -> float:
        values = [self.satisfaction(name) for name in self.logs]
        return float(np.mean(values)) if values else 0.0


class TopKEngine:
    """Shared, contract-driven execution of a top-k-over-join workload."""

    name = "TopK-CAQE"

    def __init__(self, config: "CAQEConfig | None" = None) -> None:
        self.config = config or CAQEConfig()

    def run(
        self,
        left: Relation,
        right: Relation,
        queries: "list[TopKJoinQuery]",
        contracts: "dict[str, Contract]",
    ) -> TopKRunResult:
        if not queries:
            raise ExecutionError("top-k workload is empty")
        missing = [q.name for q in queries if q.name not in contracts]
        if missing:
            raise ExecutionError(f"missing contracts for queries: {missing}")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ExecutionError(f"duplicate query names: {names}")

        # Reuse the skyline workload plumbing for partitioning and the
        # coarse join: a shadow workload carrying the same join conditions
        # and mapping functions (preferences are irrelevant here).
        shadow = self._shadow_workload(queries)
        stats = ExecutionStats.with_cost_model(self.config.cost_model)
        conditions = shadow.join_conditions
        from repro.core.caqe import partition_attrs

        left_attrs = partition_attrs(shadow, "left") or left.schema.measure_names
        right_attrs = partition_attrs(shadow, "right") or right.schema.measure_names
        left_part = quadtree_partition(
            left, left_attrs, conditions, "left",
            capacity=self.config.capacity_for(left.cardinality),
            split=self.config.partition_split,
        )
        right_part = quadtree_partition(
            right, right_attrs, conditions, "right",
            capacity=self.config.capacity_for(right.cardinality),
            split=self.config.partition_split,
        )
        cj = coarse_join(shadow, left_part, right_part, stats,
                         divisions=self.config.divisions)
        cells_l = {c.cell_id: c for c in left_part.leaves}
        cells_r = {c.cell_id: c for c in right_part.leaves}
        output_dims = shadow.output_dims
        weight_matrix = {
            q.name: np.asarray(
                [dict(zip(q.output_names, q.weights)).get(d, 0.0) for d in output_dims]
            )
            for q in queries
        }
        functions = tuple(shadow.function_for(d) for d in output_dims)
        qbit = {q.name: i for i, q in enumerate(queries)}

        # Per-region minimum possible score per query.
        region_lb = {
            r.region_id: {
                q.name: float(r.lower @ weight_matrix[q.name]) for q in queries
            }
            for r in cj.regions
        }
        remaining = {r.region_id: r for r in cj.regions}
        held: dict[str, list[_HeldResult]] = {q.name: [] for q in queries}
        kth_best: dict[str, float] = {q.name: np.inf for q in queries}
        logs = {q.name: ResultLog(q.name) for q in queries}
        reported: dict[str, set] = {q.name: set() for q in queries}
        by_name = {q.name: q for q in queries}

        condition_by_name = {c.name: c for c in conditions}
        while remaining:
            rid = self._pick(remaining, region_lb, kth_best, queries, qbit,
                             remaining_serves=lambda r, q: r.serves(qbit[q]))
            region = remaining.pop(rid)
            served = [
                name for name in names if region.serves(qbit[name])
            ]
            useful = [
                name
                for name in served
                if len(held[name]) < by_name[name].k
                # <= not <: an exact-tie tuple can win the deterministic
                # tie-break against the current k-th result.
                or region_lb[rid][name] <= kth_best[name]
            ]
            if not useful:
                # No query can gain anything from this region: never join it.
                stats.record_region_discarded()
                self._report_finals(
                    queries, held, remaining, region_lb, reported, logs, stats
                )
                continue
            stats.record_region_processed()
            li, ri = join_cell_pair(
                left, right, cells_l[region.left_cell_id],
                cells_r[region.right_cell_id],
                condition_by_name[region.condition_name], stats,
            )
            if len(li):
                stats.record_join_results(len(li), mapping_functions=len(functions))
                matrix = apply_functions(functions, left, right, li, ri)
                for name in served:
                    query = by_name[name]
                    scores = matrix @ weight_matrix[name]
                    stats.record_coarse_comparisons(len(scores))
                    for pos in range(len(scores)):
                        score = float(scores[pos])
                        if len(held[name]) >= query.k and score > kth_best[name]:
                            continue
                        held[name].append(
                            _HeldResult(score, (int(li[pos]), int(ri[pos])))
                        )
                        held[name].sort(key=_HeldResult.sort_key)
                        del held[name][query.k:]
                        if len(held[name]) >= query.k:
                            kth_best[name] = held[name][-1].score
            self._report_finals(
                queries, held, remaining, region_lb, reported, logs, stats
            )

        # Everything left is final.
        now = stats.clock.now()
        for name in names:
            for result in held[name]:
                if result.identity not in reported[name]:
                    reported[name].add(result.identity)
                    stats.record_outputs(1)
                    logs[name].report(result.identity, now)
        results = {
            name: [r.identity for r in sorted(held[name], key=_HeldResult.sort_key)]
            for name in names
        }
        return TopKRunResult(
            logs=logs,
            stats=stats,
            horizon=stats.clock.now(),
            results=results,
            contracts=dict(contracts),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _shadow_workload(queries: "list[TopKJoinQuery]") -> Workload:
        from repro.query.operators import SkylineJoinQuery
        from repro.query.preference import Preference

        shadows = []
        for q in queries:
            shadows.append(
                SkylineJoinQuery(
                    name=q.name,
                    join_condition=q.join_condition,
                    functions=q.functions,
                    preference=Preference(tuple(q.output_names)),
                    priority=q.priority,
                )
            )
        return Workload(shadows)

    def _pick(
        self,
        remaining: "dict[int, OutputRegion]",
        region_lb: "dict[int, dict[str, float]]",
        kth_best: "dict[str, float]",
        queries: "tuple[TopKJoinQuery, ...]",
        qbit: "dict[str, int]",
        remaining_serves: "Callable[[OutputRegion, str], bool]",
    ) -> "int | None":
        """Priority-weighted greedy: prefer regions that can still improve
        the most important queries, tie-broken by best possible score."""
        best_rid, best_key = None, None
        for rid, region in remaining.items():
            usefulness = sum(
                q.priority
                for q in queries
                if region.serves(qbit[q.name])
                and region_lb[rid][q.name] < kth_best[q.name]
            )
            min_lb = min(region_lb[rid].values())
            key = (-usefulness, min_lb, rid)
            if best_key is None or key < best_key:
                best_rid, best_key = rid, key
        return best_rid

    def _report_finals(
        self,
        queries: "tuple[TopKJoinQuery, ...]",
        held: "dict[str, list[_HeldResult]]",
        remaining: "dict[int, OutputRegion]",
        region_lb: "dict[int, dict[str, float]]",
        reported: "dict[str, set[tuple[int, int]]]",
        logs: "dict[str, ResultLog]",
        stats: ExecutionStats,
    ) -> None:
        """Emit held results that no remaining region can displace."""
        now = stats.clock.now()
        for query in queries:
            name = query.name
            if not held[name]:
                continue
            barrier = min(
                (region_lb[rid][name] for rid in remaining), default=np.inf
            )
            for rank, result in enumerate(
                sorted(held[name], key=_HeldResult.sort_key)
            ):
                # Strict inequality: a future tuple scoring exactly at the
                # barrier could still win the deterministic tie-break.
                if rank >= query.k or result.score >= barrier:
                    break
                if result.identity not in reported[name]:
                    reported[name].add(result.identity)
                    stats.record_outputs(1)
                    logs[name].report(result.identity, now)


__all__ = ["TopKEngine", "TopKJoinQuery", "TopKRunResult", "reference_topk"]
