"""Contract-aware tuple-level execution (Section 6).

Given a region chosen by the optimizer, the executor:

1. **Tuple-level processing** — evaluates the equi-join between the
   region's input cells (hash join on the shared signature values), applies
   the workload's mapping functions, and inserts each output tuple into the
   shared min-max cuboid plan (which counts and charges every skyline
   comparison);
2. returns which tuples entered each query's candidate skyline and which
   earlier candidates were evicted (skyline-over-join is non-monotonic), so
   the driver can maintain progressive-reporting state;
3. exposes the produced vectors for the driver's discard step (tuple
   results dominating whole not-yet-processed regions).

Progressive *reporting* itself (deciding when a candidate is safe to emit)
lives in the driver (:mod:`repro.core.caqe`) because it needs the global
set of remaining regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.parallel.joinkernel import (
    GroupedBuild,
    bucket_join,
    build_grouped,
    cell_join,
    probe_grouped,
)
from repro.partition.cells import LeafCell
from repro.plan.shared_plan import WorkloadInsertReport, WorkloadPlan
from repro.query.evaluate import apply_functions
from repro.query.predicates import JoinCondition
from repro.query.selection import selection_bitmasks
from repro.query.workload import Workload
from repro.relation import Relation
from repro.relation.values import unbox

#: A memoised hash-join build side: either the vectorised grouped form
#: (columnar data plane, docs/ARCHITECTURE.md §12) or the reference
#: dict-of-lists buckets (columnar off, or keys outside the kernel domain).
BuildSide = "GroupedBuild | dict[object, list[int]]"


@dataclass(frozen=True, slots=True)
class ResultIdentity:
    """Stable identity of a join result across execution strategies."""

    left_row: int
    right_row: int

    def as_tuple(self) -> "tuple[int, int]":
        return (self.left_row, self.right_row)


@dataclass
class JoinResultStore:
    """All materialised join results of one run, keyed by insertion id."""

    vectors: "dict[int, np.ndarray]" = field(default_factory=dict)
    identities: "dict[int, ResultIdentity]" = field(default_factory=dict)
    region_of: "dict[int, int]" = field(default_factory=dict)
    _next: int = 0

    def add(self, identity: ResultIdentity, vector: np.ndarray, region_id: int) -> int:
        key = self._next
        self._next += 1
        self.vectors[key] = vector
        self.identities[key] = identity
        self.region_of[key] = region_id
        return key

    def add_batch(
        self,
        left_rows: np.ndarray,
        right_rows: np.ndarray,
        vectors: np.ndarray,
        region_id: int,
    ) -> "list[int]":
        """Bulk :meth:`add` for one region's (already sorted) tuples.

        Identical key sequence and stored objects to calling :meth:`add`
        row by row — the dict updates just run at C speed.  Used by the
        parallel layer's commit path (docs/ARCHITECTURE.md §11).
        """
        base = self._next
        n = len(vectors)
        self._next = base + n
        keys = list(range(base, base + n))
        self.vectors.update(zip(keys, vectors))
        self.identities.update(
            zip(keys, map(ResultIdentity, left_rows.tolist(), right_rows.tolist()))
        )
        self.region_of.update(zip(keys, [region_id] * n))
        return keys

    def vector(self, key: int) -> np.ndarray:
        return self.vectors[key]

    def identity(self, key: int) -> ResultIdentity:
        return self.identities[key]

    def __len__(self) -> int:
        return len(self.vectors)


@dataclass
class RegionOutcome:
    """Effects of tuple-level processing of one region."""

    region_id: int
    inserted_keys: "list[int]" = field(default_factory=list)
    #: Per query name: keys of this region admitted to the candidate skyline
    #: and still current once the whole region finished.
    admitted: "dict[str, list[int]]" = field(default_factory=dict)
    #: Per query name: previously-current keys evicted by this region.
    evicted: "dict[str, list[int]]" = field(default_factory=dict)
    join_count: int = 0
    #: Row-aligned vector matrix of ``inserted_keys`` (key ``key_base + i``
    #: is row ``i``), set by the batch commit paths.  Lets the driver
    #: gather candidate vectors as one fancy index instead of per-key
    #: store lookups; the rows are the very arrays the store holds, so
    #: every float is bit-identical either way.
    matrix: "np.ndarray | None" = None
    key_base: int = 0


def join_cell_pair(
    left: Relation,
    right: Relation,
    left_cell: LeafCell,
    right_cell: LeafCell,
    condition: JoinCondition,
    stats: ExecutionStats,
) -> "tuple[np.ndarray, np.ndarray]":
    """Hash-join two leaf cells; returns global (left, right) row indices.

    The pairs come from the order-exact vectorised kernel
    (:func:`repro.parallel.joinkernel.cell_join`), which reproduces the
    reference bucket loop's output — values *and* order — and falls back
    to that loop for key columns outside its domain.
    """
    left_values = condition.left_values(left)[left_cell.indices]
    right_values = condition.right_values(right)[right_cell.indices]
    # Building the hash table scans both cells once.
    stats.record_join_probes(left_cell.size + right_cell.size)
    return cell_join(
        left_values, right_values, left_cell.indices, right_cell.indices
    )


class RegionExecutor:
    """Runs tuple-level processing for scheduled regions.

    ``batch_inserts`` switches the shared-plan insertion loop to
    :meth:`WorkloadPlan.insert_batch` — semantically identical (same
    admissions, evictions, charged comparisons and virtual time), but one
    vectorised pass per region instead of one plan walk per tuple.
    """

    def __init__(
        self,
        workload: Workload,
        left: Relation,
        right: Relation,
        plan: WorkloadPlan,
        store: JoinResultStore,
        stats: ExecutionStats,
        *,
        batch_inserts: bool = True,
        fault_hook: "Callable[[OutputRegion], None] | None" = None,
        build_cache: "dict[tuple[int, str], BuildSide] | None" = None,
        parallel_commit: bool = False,
        columnar: bool = True,
    ) -> None:
        self.workload = workload
        self.left = left
        self.right = right
        self.plan = plan
        self.store = store
        self.stats = stats
        self.batch_inserts = batch_inserts
        #: Columnar data plane (docs/ARCHITECTURE.md §12): grouped-array
        #: join builds/probes and the array-native plan commit.  A pure
        #: execution-strategy switch — pairs, keys, charges and reports
        #: are bit-identical to the scalar loops it replaces.
        self.columnar = columnar
        #: Set when the engine runs a worker pool (``workers > 0``): commit
        #: bookkeeping takes bulk-update fast paths (same keys, same stored
        #: objects, same observables — only Python-loop overhead changes).
        self.parallel_commit = parallel_commit
        #: Chaos-testing hook consulted at the top of :meth:`process`; it
        #: may raise :class:`~repro.errors.RegionFailure`.  Failing *before*
        #: any store/plan mutation keeps shared state consistent, so a
        #: retried region is a clean re-execution (no duplicate inserts).
        self.fault_hook = fault_hook
        # Hash-join build tables memoised per (cell, join condition): a cell
        # shared by many surviving regions is hashed once, not once per
        # region.  The scan is still *charged* each time — the virtual cost
        # model prices the paper's algorithm, the cache only removes Python
        # re-execution — so metrics and schedules are unchanged.  Callers
        # may inject a cache to reuse build tables across executors (the
        # serving layer keys one per workload signature: same relations +
        # same config partition identically, so entries stay valid).
        self._build_cache: "dict[tuple[int, str], BuildSide]" = (
            build_cache if build_cache is not None else {}
        )
        self._functions = tuple(
            workload.function_for(d) for d in workload.output_dims
        )
        self._conditions = {c.name: c for c in workload.join_conditions}
        #: query name -> bit position, for lineage masks.
        self.query_bits = {q.name: i for i, q in enumerate(workload)}
        # Per-row selection lineage, evaluated once per base table
        # (Section 6's cell query-lineage at tuple granularity).
        if any(q.has_filters for q in workload):
            self._sel_left = selection_bitmasks(workload, left, "left")
            self._sel_right = selection_bitmasks(workload, right, "right")
            self.stats.record_join_probes(left.cardinality + right.cardinality)
        else:
            self._sel_left = None
            self._sel_right = None

    def _build_side(
        self, left_cell: LeafCell, condition: JoinCondition
    ) -> "GroupedBuild | dict[object, list[int]]":
        """The memoised hash-join build side of one (cell, condition).

        Columnar runs build the grouped (stable-argsort) form; the dict
        buckets remain the build for the columnar-off ablation and for
        key columns outside the vectorised kernel's domain.
        """
        cache_key = (left_cell.cell_id, condition.name)
        build = self._build_cache.get(cache_key)
        if build is None:
            left_values = condition.left_values(self.left)[left_cell.indices]
            if self.columnar:
                build = build_grouped(left_values)
            if build is None:
                buckets: "dict[object, list[int]]" = {}
                for local, value in enumerate(left_values):  # caqe-check: disable=CQ009
                    buckets.setdefault(unbox(value), []).append(local)
                build = buckets
            self._build_cache[cache_key] = build
        return build

    def _join_cells(
        self,
        left_cell: LeafCell,
        right_cell: LeafCell,
        condition: JoinCondition,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """:func:`join_cell_pair` with the build side served from cache."""
        # The virtual clock still pays for both scans every time — the cache
        # elides repeated Python work, not modelled algorithm cost.
        self.stats.record_join_probes(left_cell.size + right_cell.size)
        build = self._build_side(left_cell, condition)
        right_values = condition.right_values(self.right)[right_cell.indices]
        if isinstance(build, GroupedBuild):
            local = probe_grouped(build, right_values)
            if local is None:
                # Probe side outside the kernel domain (NaN keys): replay
                # the reference loop against the identical build input.
                local = bucket_join(build.values, right_values)
            left_local, right_local = local
            return (
                np.asarray(left_cell.indices, dtype=np.intp)[left_local],
                np.asarray(right_cell.indices, dtype=np.intp)[right_local],
            )
        left_out: "list[int]" = []
        right_out: "list[int]" = []
        for local_r, value in enumerate(right_values):  # caqe-check: disable=CQ009
            for local_l in build.get(unbox(value), ()):
                left_out.append(int(left_cell.indices[local_l]))
                right_out.append(int(right_cell.indices[local_r]))
        return (
            np.asarray(left_out, dtype=np.intp),
            np.asarray(right_out, dtype=np.intp),
        )

    def process(
        self,
        region: OutputRegion,
        left_cell: LeafCell,
        right_cell: LeafCell,
        prepared: "object | None" = None,
    ) -> RegionOutcome:
        """Join, project, and insert one region's tuples into the shared plan.

        ``prepared`` is an optional
        :class:`~repro.parallel.worker.PreparedRegion` computed ahead of
        time by a worker process (or the driver's inline steal).  Its
        join pairs are bit-identical to :meth:`_join_cells`' output by
        the order-exact kernel contract, and *every* modelled cost is
        still charged here at commit — so the prepared path changes
        wall-clock time only, never an observable.
        """
        if region.is_discarded:
            raise ExecutionError(f"region #{region.region_id} was discarded")
        if self.fault_hook is not None:
            self.fault_hook(region)
        self.stats.record_region_processed(region.region_id)
        self.stats.begin_region_phases(region.region_id)
        condition = self._conditions[region.condition_name]
        if prepared is None:
            left_idx, right_idx = self._join_cells(
                left_cell, right_cell, condition
            )
            matrix = None
        else:
            # The worker did the join; the clock pays for both scans all
            # the same (modelled cost, not Python cost).
            self.stats.record_join_probes(left_cell.size + right_cell.size)
            left_idx, right_idx = prepared.left_idx, prepared.right_idx
            matrix = prepared.matrix
        self.stats.mark_phase("join")
        # Selection pushdown: drop join pairs that no query's filters accept
        # before paying materialisation.  ``active_rql`` is read *here*, at
        # commit — a region prepared speculatively early still sees every
        # discard that landed before its turn.
        if self._sel_left is not None and len(left_idx):
            tuple_masks = (
                region.active_rql
                & self._sel_left[left_idx]
                & self._sel_right[right_idx]
            )
            keep = tuple_masks != 0
            left_idx, right_idx = left_idx[keep], right_idx[keep]
            tuple_masks = tuple_masks[keep]
            if matrix is not None:
                matrix = matrix[keep]
        else:
            tuple_masks = np.full(len(left_idx), region.active_rql, dtype=np.int64)
        outcome = RegionOutcome(region_id=region.region_id, join_count=len(left_idx))
        if len(left_idx) == 0:
            return outcome
        self.stats.record_join_results(
            len(left_idx), mapping_functions=len(self._functions)
        )
        if matrix is None:
            matrix = apply_functions(
                self._functions, self.left, self.right, left_idx, right_idx
            )
        self.stats.mark_phase("map")
        admitted_sets: dict[str, set[int]] = {q.name: set() for q in self.workload}
        evicted_sets: dict[str, set[int]] = {q.name: set() for q in self.workload}

        def absorb(key: int, report: "WorkloadInsertReport") -> None:
            for name in report.admitted:
                admitted_sets[name].add(key)
            for name, evicted_keys in report.evicted.items():
                for evicted_key in evicted_keys:
                    if evicted_key in admitted_sets[name]:
                        admitted_sets[name].discard(evicted_key)
                    else:
                        evicted_sets[name].add(evicted_key)

        # Insert a region's tuples best-first (ascending coordinate sum, the
        # SFS presort): dominating tuples enter the windows early, so most
        # later tuples are rejected after very few comparisons and eviction
        # churn within the region disappears.
        self.stats.clock.charge_sort(len(matrix))
        order = np.argsort(matrix.sum(axis=1), kind="stable")
        self.stats.mark_phase("sort")
        if self.columnar and self.batch_inserts:
            # Columnar commit (docs/ARCHITECTURE.md §12): bulk store
            # append, array-native plan walk, and the absorb loop reduced
            # to set algebra.  Within one batch a key's admission always
            # precedes any eviction of it (only later inserts evict) and
            # each happens at most once per query, so the loop's final
            # sets are exactly ``admitted - evicted`` / ``evicted -
            # admitted`` over the batch totals.
            sorted_matrix = matrix[order]
            left_sorted = left_idx[order]
            right_sorted = right_idx[order]
            masks_sorted = tuple_masks[order]
            keys = self.store.add_batch(
                left_sorted, right_sorted, sorted_matrix, region.region_id
            )
            outcome.inserted_keys.extend(keys)
            base = keys[0] if keys else 0
            admitted_rows, evicted_keys = self.plan.insert_batch_columnar(
                keys, sorted_matrix, masks_sorted
            )
            self.stats.mark_phase("skyline")
            for query in self.workload:
                name = query.name
                rows = admitted_rows.get(name)
                adm = (
                    set((rows + base).tolist()) if rows is not None else set()
                )
                evi = set(evicted_keys.get(name, ()))
                outcome.admitted[name] = [
                    k
                    for k in sorted(adm - evi)
                    if self.plan.is_candidate(name, k)
                ]
                outcome.evicted[name] = sorted(evi - adm)
            outcome.matrix = sorted_matrix
            outcome.key_base = base
            return outcome
        if self.batch_inserts:
            sorted_matrix = matrix[order]
            left_sorted = left_idx[order]
            right_sorted = right_idx[order]
            masks_sorted = tuple_masks[order]
            if self.parallel_commit:
                keys = self.store.add_batch(
                    left_sorted, right_sorted, sorted_matrix, region.region_id
                )
            else:
                # Deliberate scalar commit path: the serial store assigns
                # keys one row at a time so parallel and serial runs share
                # the identical key sequence.
                # caqe-check: disable=CQ009
                keys = [
                    self.store.add(
                        ResultIdentity(l, r), sorted_matrix[pos], region.region_id
                    )
                    for pos, (l, r) in enumerate(
                        zip(left_sorted.tolist(), right_sorted.tolist())
                    )
                ]
            outcome.inserted_keys.extend(keys)
            outcome.matrix = sorted_matrix
            outcome.key_base = keys[0] if keys else 0
            reports = self.plan.insert_batch(keys, sorted_matrix, masks_sorted)
            for key, report in zip(keys, reports):
                absorb(key, report)
        else:
            # Scalar ablation corner (enable_batch_insert=False): proves the
            # array program above bit-identical to row-at-a-time insertion.
            # caqe-check: disable=CQ009
            for row in order.tolist():
                identity = ResultIdentity(int(left_idx[row]), int(right_idx[row]))
                key = self.store.add(identity, matrix[row], region.region_id)
                outcome.inserted_keys.append(key)
                report = self.plan.insert(key, matrix[row], int(tuple_masks[row]))
                absorb(key, report)
        self.stats.mark_phase("skyline")
        # Keep only keys still current after the whole region was absorbed.
        for query in self.workload:
            outcome.admitted[query.name] = [
                k
                for k in sorted(admitted_sets[query.name])
                if self.plan.is_candidate(query.name, k)
            ]
            outcome.evicted[query.name] = sorted(evicted_sets[query.name])
        return outcome


__all__ = [
    "JoinResultStore",
    "RegionExecutor",
    "RegionOutcome",
    "ResultIdentity",
    "join_cell_pair",
]
