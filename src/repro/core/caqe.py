"""The CAQE framework driver (Sections 4–6, Algorithm 1).

:class:`CAQE` wires the whole pipeline together for one workload run:

1. partition both input tables into quad-tree leaf cells (Section 5.1);
2. build the shared min-max cuboid plan (Section 4.1);
3. MQLA: coarse join (signatures) and coarse skyline (region dominance)
   to produce output regions annotated with query lineage (Section 5);
4. build the dependency graph (Definition 9) and the CSM benefit model;
5. iterate Algorithm 1: pick the root region with the highest CSM,
   process it at tuple level on the shared plan, discard regions its
   results dominate, progressively report results that can no longer be
   dominated, and update query weights from run-time satisfaction
   (Equation 11).

Every optimisation the paper describes can be toggled off through
:class:`CAQEConfig` for the ablation benches (DESIGN.md §5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.contracts.base import Contract
from repro.contracts.score import ResultLog, SatisfactionTracker
from repro.core.benefit import BenefitModel
from repro.core.clock import CostModel
from repro.core.coarse_join import coarse_join
from repro.core.coarse_skyline import coarse_skyline
from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.executor import JoinResultStore, RegionExecutor, RegionOutcome
from repro.core.feedback import update_weights
from repro.core.output_space import DEFAULT_DIVISIONS
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.errors import (
    BudgetExhausted,
    ExecutionError,
    QueryCancelled,
    RegionFailure,
)
from repro.partition.quadtree import Partitioning, quadtree_partition
from repro.plan.minmax_cuboid import build_minmax_cuboid
from repro.plan.shared_plan import WorkloadPlan
from repro.query.workload import Workload
from repro.relation import Relation
from repro.robustness.faults import FaultPlan, WorkerKillPlan
from repro.robustness.recovery import (
    REASON_BUDGET,
    REASON_QUARANTINE,
    RETRY,
    DegradedReport,
    RegionSupervisor,
    RetryPolicy,
)
from repro.robustness.sanitize import (
    QuarantinedTuple,
    QuarantineReport,
    sanitize_relation,
)
from repro.skyline.dominance import dominance_mask
from repro.skyline.estimate import buchta_skyline_size


def _default_workers() -> int:
    """Pool size default, honouring the test matrix's env override.

    ``CAQE_TEST_WORKERS`` lets CI run the whole tier-1 suite under a
    worker pool without touching any test; unset or invalid values mean
    the serial engine.
    """
    import os

    raw = os.environ.get("CAQE_TEST_WORKERS", "")
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


@dataclass(frozen=True)
class CAQEConfig:
    """Tunables and ablation switches for a CAQE run."""

    #: Output-grid resolution per dimension (Section 5's output cells).
    divisions: int = DEFAULT_DIVISIONS
    #: Target leaf-cell count per table; the quad-tree capacity is derived
    #: as ``ceil(cardinality / target_cells)``.
    target_cells: int = 16
    #: Explicit quad-tree leaf capacity (overrides ``target_cells``).
    partition_capacity: "int | None" = None
    #: Input-tree split policy: "quad" (paper's 2^d midpoint split) or
    #: "kd" (binary median splits; balanced leaves — ablation option).
    partition_split: str = "quad"
    cost_model: CostModel = field(default_factory=CostModel)
    #: Seed CSM weights with the experiment's query priorities instead of
    #: the paper's uniform ``w_i = 1``.
    use_priority_weights: bool = True
    #: Equation 11 run-time re-weighting (ablation: static weights).
    enable_feedback: bool = True
    #: Definition 9 scheduling constraints (ablation: all regions rootable).
    enable_depgraph: bool = True
    #: Coarse-skyline region pruning (ablation: keep every region).
    enable_coarse_pruning: bool = True
    #: Tuple-level discarding of dominated regions (Section 6).
    enable_tuple_discard: bool = True
    #: Theorem 1 shortcut in the shared plan (valid under DVA data).
    assume_dva: bool = True
    #: Batch-vectorised shared-plan insertion (one plan pass per region
    #: instead of one per tuple).  Semantically identical to the scalar
    #: walk — same admissions, evictions and charged comparisons — so the
    #: flag only trades wall-clock speed; ablation: per-tuple inserts.
    enable_batch_insert: bool = True
    #: Reuse cached region estimates across optimizer iterations, with
    #: exact reach-set invalidation.  Picks the identical region sequence
    #: as the naive per-iteration rescan; ablation: rescan every root.
    enable_scheduler_cache: bool = True
    #: Columnar data plane (docs/ARCHITECTURE.md §12): grouped-array hash
    #: join build/probe, the replay skyline kernel for serial runs, and
    #: the array-native plan commit + vector gathers.  Pure wall-clock
    #: work — pairs, keys, charges, traces and reports are bit-identical
    #: with the flag off (8th corner of the ablation equivalence suite).
    enable_columnar_join: bool = True
    #: Region-scheduling objective: ``"contract"`` is CAQE's CSM
    #: (Equation 8); ``"count"`` maximises estimated result count (the
    #: count-driven policy of ProgXe+); ``"scan"`` processes regions in
    #: creation order (the S-JFSL pipeline).
    objective: str = "contract"
    #: Robustness layer (docs/ARCHITECTURE.md §9).  All default-off: a run
    #: with every switch at its default is bit-identical to a build
    #: without the layer (the 4-corner equivalence suite pins this down).
    #: Validate measure columns and quarantine NaN/inf/out-of-domain
    #: tuples before partitioning.
    enable_sanitize: bool = False
    #: Magnitude bound for the sanitizer's domain check.
    sanitize_domain_limit: float = 1e9
    #: Region-level retry with backoff + quarantine of repeat offenders.
    enable_recovery: bool = False
    #: Backoff shape used when ``enable_recovery`` is on.
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-query virtual-time budget; when the clock passes it, the
    #: query's remaining regions are answered from coarse MQLA bounds
    #: (graceful degradation).  ``None`` disables the budget.
    query_time_budget: "float | None" = None
    #: Deterministic fault-injection plan (chaos testing only).
    fault_plan: "FaultPlan | None" = None
    #: Durability layer (docs/ARCHITECTURE.md §10).  All default-off and
    #: bit-identical when off (6th corner of the equivalence suite).
    #: Write a fsync'd journal record after every completed region and
    #: periodic full snapshots, making the run resumable after SIGKILL.
    enable_journal: bool = False
    #: Directory holding the journal and snapshot files (required when
    #: ``enable_journal`` is on; one directory per run).
    journal_dir: "str | None" = None
    #: Full-snapshot cadence, in completed regions.
    checkpoint_every_regions: int = 25
    #: Serving layer (:mod:`repro.serving`).  Bound of the admission
    #: queue: submissions beyond it are shed with ``Rejected``.
    server_queue_limit: int = 16
    #: Worker threads draining the admission queue.
    server_workers: int = 2
    #: Consecutive quarantine-failures of one workload signature that
    #: trip its circuit breaker open.
    server_breaker_threshold: int = 3
    #: Rejected submissions an open breaker absorbs before allowing a
    #: half-open trial (event-count cooldown — wall clocks are banned).
    server_breaker_cooldown: int = 8
    #: Default per-query virtual-time deadline applied by the server
    #: when a submission carries none.  ``None`` = no deadline.
    server_default_deadline: "float | None" = None
    #: Parallel prepare layer (docs/ARCHITECTURE.md §11).  Worker
    #: processes joining/projecting regions ahead of the driver's
    #: deterministic commit.  ``0`` (the default) is the serial engine,
    #: bit-identical to a build without the layer; any positive count
    #: changes wall-clock time only — every observable (region trace,
    #: comparisons, virtual time, reported identities) is unchanged.
    workers: int = field(default_factory=_default_workers)
    #: Speculative dispatch depth: how many benefit-ranked unblocked
    #: roots are shipped to the pool per scheduling wave.
    parallel_chunk_regions: int = 8
    #: Share relation columns with workers through
    #: ``multiprocessing.shared_memory`` (off: pickle whole relations at
    #: pool start — slower start-up, identical results).
    enable_shared_memory: bool = True
    #: Per-region phase breakdown (join/map/sort/skyline/report) in
    #: virtual-time units, collected into ``stats.region_phases``.
    profile_phases: bool = False
    #: Pool supervision (docs/ARCHITECTURE.md §14).  Replacement workers
    #: the pool may spawn after crashes before it degrades to pure
    #: serial (inline-prepare) operation.
    pool_restart_budget: int = 3
    #: Worker deaths one region may cause before it is poisoned —
    #: permanently routed to inline prepare and quarantine-reported.
    pool_poison_threshold: int = 2
    #: Deterministic worker-kill schedule (chaos testing only;
    #: ``None`` = no process-level faults — the default behaviour).
    pool_kill_plan: "WorkerKillPlan | None" = None
    #: Multi-tenant serving (docs/ARCHITECTURE.md §15).  ``"fifo"`` is the
    #: classic whole-run worker-thread server; ``"interleaved"`` drives
    #: every live submission through one cross-tenant region scheduler.
    server_mode: str = "fifo"
    #: Fair-share weight assumed for tenants registered without one.
    tenant_default_weight: float = 1.0
    #: SLO tier assumed for tenants registered without one (0 = highest
    #: priority; higher numbers brown out first).
    tenant_default_tier: int = 1
    #: Bulkhead cap: max in-flight submissions per tenant.
    tenant_max_live: int = 4
    #: Weight of the deficit term in the cross-tenant benefit score
    #: (0 disables fairness pressure — pure benefit greedy).
    tenant_fairness_pressure: float = 0.05
    #: Brownout ladder (total live submissions at which each rung engages):
    #: rung 1 defers non-top-tier regions, rung 2 degrades the youngest
    #: low-tier submission to MQLA bounds, rung 3 sheds new low-tier
    #: submissions with an explicit ``Rejected``.
    tenant_brownout_defer_live: int = 8
    tenant_brownout_degrade_live: int = 12
    tenant_brownout_shed_live: int = 16

    def __post_init__(self) -> None:
        if self.objective not in ("contract", "count", "scan"):
            raise ExecutionError(
                f"unknown objective {self.objective!r}; "
                "expected 'contract', 'count', or 'scan'"
            )
        if self.partition_split not in ("quad", "kd"):
            raise ExecutionError(
                f"unknown partition_split {self.partition_split!r}; "
                "expected 'quad' or 'kd'"
            )
        if self.query_time_budget is not None and self.query_time_budget <= 0:
            raise ExecutionError(
                f"query_time_budget must be positive, got "
                f"{self.query_time_budget}"
            )
        if self.enable_journal and not self.journal_dir:
            raise ExecutionError(
                "enable_journal=True requires journal_dir to be set"
            )
        if self.checkpoint_every_regions < 1:
            raise ExecutionError(
                f"checkpoint_every_regions must be >= 1, got "
                f"{self.checkpoint_every_regions}"
            )
        # Serving/tenant knobs raise ValueError (plain misconfiguration,
        # caught before any engine machinery exists) rather than the
        # engine's ExecutionError.
        for knob in (
            "server_queue_limit",
            "server_workers",
            "server_breaker_threshold",
            "server_breaker_cooldown",
            "tenant_max_live",
            "tenant_brownout_defer_live",
            "tenant_brownout_degrade_live",
            "tenant_brownout_shed_live",
        ):
            value = getattr(self, knob)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                raise ValueError(
                    f"{knob} must be an integer >= 1, got {value!r}"
                )
        if (
            self.server_default_deadline is not None
            and self.server_default_deadline <= 0
        ):
            raise ValueError(
                f"server_default_deadline must be positive, got "
                f"{self.server_default_deadline}"
            )
        if self.server_mode not in ("fifo", "interleaved"):
            raise ValueError(
                f"unknown server_mode {self.server_mode!r}; "
                "expected 'fifo' or 'interleaved'"
            )
        if not (
            0.0 < float(self.tenant_default_weight) < float("inf")
        ):
            raise ValueError(
                f"tenant_default_weight must be positive and finite, got "
                f"{self.tenant_default_weight}"
            )
        if self.tenant_default_tier < 0:
            raise ValueError(
                f"tenant_default_tier must be >= 0, got "
                f"{self.tenant_default_tier}"
            )
        if not (0.0 <= float(self.tenant_fairness_pressure) < float("inf")):
            raise ValueError(
                f"tenant_fairness_pressure must be finite and >= 0, got "
                f"{self.tenant_fairness_pressure}"
            )
        if not (
            self.tenant_brownout_defer_live
            <= self.tenant_brownout_degrade_live
            <= self.tenant_brownout_shed_live
        ):
            raise ValueError(
                "brownout ladder must be ordered defer <= degrade <= shed, "
                f"got {self.tenant_brownout_defer_live} / "
                f"{self.tenant_brownout_degrade_live} / "
                f"{self.tenant_brownout_shed_live}"
            )
        if self.workers < 0:
            raise ExecutionError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.parallel_chunk_regions < 1:
            raise ExecutionError(
                f"parallel_chunk_regions must be >= 1, got "
                f"{self.parallel_chunk_regions}"
            )
        if self.pool_restart_budget < 0:
            raise ExecutionError(
                f"pool_restart_budget must be >= 0, got "
                f"{self.pool_restart_budget}"
            )
        if self.pool_poison_threshold < 1:
            raise ExecutionError(
                f"pool_poison_threshold must be >= 1, got "
                f"{self.pool_poison_threshold}"
            )

    def capacity_for(self, cardinality: int) -> int:
        if self.partition_capacity is not None:
            return self.partition_capacity
        # A 2x headroom keeps the quad-tree from over-splitting skewed
        # quadrants far beyond the requested cell budget.
        return max(1, -(-2 * cardinality // max(self.target_cells, 1)))


@dataclass
class RunResult:
    """Everything a CAQE (or baseline) run produces."""

    workload: Workload
    contracts: "dict[str, Contract]"
    logs: "dict[str, ResultLog]"
    stats: ExecutionStats
    horizon: float
    #: Per query: reported result identities as (left_row, right_row) pairs.
    reported: "dict[str, set[tuple[int, int]]]"
    #: Per query: approximate answers issued under graceful degradation
    #: (coarse MQLA bounds of regions never processed at tuple level).
    #: Empty in healthy runs.
    degraded: "dict[str, list[DegradedReport]]" = field(default_factory=dict)
    #: Per input side ("left"/"right"): the sanitizer's quarantine report,
    #: present only when tuples were actually quarantined.
    quarantine: "dict[str, QuarantineReport]" = field(default_factory=dict)

    def is_degraded(self, query_name: str) -> bool:
        """True iff part of this query's answer is approximate."""
        return bool(self.degraded.get(query_name))

    def satisfaction(self, query_name: str) -> float:
        log = self.logs[query_name]
        return self.contracts[query_name].satisfaction(
            log.timestamps, float(len(log)), self.horizon
        )

    def average_satisfaction(self) -> float:
        values = [self.satisfaction(q.name) for q in self.workload]
        return float(np.mean(values)) if values else 0.0

    def total_pscore(self) -> float:
        return float(
            sum(
                self.contracts[q.name].pscore(
                    self.logs[q.name].timestamps, float(len(self.logs[q.name]))
                )
                for q in self.workload
            )
        )


def _gather_vectors(
    outcome: RegionOutcome, store: JoinResultStore, keys: "Sequence[int]"
) -> np.ndarray:
    """Stack the output vectors of ``keys`` (all from ``outcome``'s region).

    Batch commits expose the region's row-aligned matrix on the outcome,
    so the gather is one fancy index; the rows are the same arrays the
    store returns key by key, hence bit-identical floats either way.
    """
    if outcome.matrix is not None:
        rows = np.asarray(keys, dtype=np.intp) - outcome.key_base
        return outcome.matrix[rows]
    return np.vstack([store.vector(key) for key in keys])


def partition_attrs(workload: Workload, side: str) -> "tuple[str, ...]":
    """Input attributes (per side) that feed the workload's output dims."""
    seen: dict[str, None] = {}
    for dim in workload.output_dims:
        fn = workload.function_for(dim)
        inputs = fn.left_inputs if side == "left" else fn.right_inputs
        for attr in inputs:
            seen.setdefault(attr, None)
    return tuple(seen)


@dataclass
class _RunState:
    """Mutable state of one in-flight :class:`CAQE` run.

    Bundles everything Algorithm 1's loop touches so the durability layer
    can snapshot it (:func:`_dump_run_state`) and a resumed run can
    overwrite it (:func:`_restore_run_state`).  Fields hold the
    post-corruption / post-sanitisation inputs — the versions the
    executor actually reads.
    """

    workload: Workload
    contracts: "dict[str, Contract]"
    left: Relation
    right: Relation
    stats: ExecutionStats
    plan: WorkloadPlan
    cuboid: "MinMaxCuboid"
    #: Every coarse-join region in creation order (including discarded
    #: ones) — the stable universe snapshot region-ids resolve against.
    regions: "list[OutputRegion]"
    alive: "dict[int, OutputRegion]"
    graph: DependencyGraph
    benefit: BenefitModel
    estimates: "dict[str, float]"
    tracker: SatisfactionTracker
    weights: np.ndarray
    state: "_ReportingState"
    supervisor: "RegionSupervisor | None"
    degraded: "dict[str, list[DegradedReport]]"
    degraded_queries: "set[int]"
    cells_left: "dict[int, LeafCell]"
    cells_right: "dict[int, LeafCell]"
    quarantine: "dict[str, QuarantineReport]"
    fault_plan: "FaultPlan | None"
    inject: bool
    executor: "RegionExecutor | None" = None
    #: Journal sequence number of the last completed region.
    seq: int = 0
    #: Fault-plan decisions consulted so far.  The plan itself is
    #: stateless (hash-based, order-independent); the cursor is recorded
    #: in journal records so resume verification catches any divergence
    #: in the fault-decision schedule.
    rng_cursor: int = 0
    #: Reason stamped on budget-driven degraded reports.  The serving
    #: layer maps virtual deadlines onto ``query_time_budget`` and passes
    #: ``"deadline"`` here so callers can tell a tenant deadline from an
    #: engine-level budget without re-deriving the mapping.
    budget_reason: str = REASON_BUDGET


class CAQE:
    """Contract-Aware Query Execution over one pair of base tables."""

    name = "CAQE"

    def __init__(self, config: "CAQEConfig | None" = None) -> None:
        self.config = config or CAQEConfig()

    # ------------------------------------------------------------------ #
    def run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
        stats: "ExecutionStats | None" = None,
        *,
        cancel_token: "object | None" = None,
        _resume: "object | None" = None,
        pool: "object | None" = None,
        build_cache: "dict | None" = None,
        budget_reason: str = REASON_BUDGET,
    ) -> RunResult:
        """Execute the workload; ``stats`` may be shared across runs so
        baselines that process queries sequentially accumulate one clock.

        ``cancel_token`` is any object exposing ``is_cancelled() -> bool``;
        it is polled at every region boundary and a true answer raises
        :class:`~repro.errors.QueryCancelled` (the serving layer's
        cooperative cancellation).  ``_resume`` is internal — use
        :func:`repro.durability.resume_run`.

        ``pool`` is an external :class:`~repro.parallel.RegionPool` to
        borrow (the serving layer shares one across submissions); when
        ``config.workers > 0`` and none is given, the run owns a private
        pool.  ``build_cache`` optionally shares the executor's hash-join
        build tables across runs of identical shape.
        """
        live = self.open_run(
            left,
            right,
            workload,
            contracts,
            stats,
            cancel_token=cancel_token,
            _resume=_resume,
            pool=pool,
            build_cache=build_cache,
            budget_reason=budget_reason,
        )
        try:
            while not live.done:
                live.step()
        finally:
            live.close()
        return live.finalize()

    def open_run(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
        stats: "ExecutionStats | None" = None,
        *,
        cancel_token: "object | None" = None,
        _resume: "object | None" = None,
        pool: "object | None" = None,
        build_cache: "dict | None" = None,
        budget_reason: str = REASON_BUDGET,
    ) -> "LiveRun":
        """Prepare a workload and hand back a region-steppable handle.

        This is :meth:`run`'s prologue without its loop: the returned
        :class:`LiveRun` exposes ``step()`` (one Algorithm 1 iteration),
        so an external driver — the multi-tenant region scheduler — can
        suspend and resume the run between regions.  ``run()`` itself is
        just ``while not live.done: live.step()``, which is what pins the
        two control flows to bit-identical observables.
        """
        cfg = self.config
        workload.validate(left, right)
        missing = [q.name for q in workload if q.name not in contracts]
        if missing:
            raise ExecutionError(f"missing contracts for queries: {missing}")
        if stats is None:
            stats = ExecutionStats.with_cost_model(cfg.cost_model)
        stats.profile_phases = cfg.profile_phases
        if cfg.workers > 0:
            stats.parallel_lanes = cfg.workers
            cores = os.cpu_count() or 1
            if cores <= 1:
                # A prepare pool on a single-core host only adds IPC and
                # context-switch overhead over the inline path; observables
                # are unaffected, so this is a wall-channel note, not an
                # error.
                stats.record_runtime_warning(
                    "single_core_pool", workers=cfg.workers, cpu_count=cores
                )

        rs = self._prepare(
            left, right, workload, contracts, stats, build_cache=build_cache
        )
        rs.budget_reason = budget_reason

        pool_owned = False
        client = None
        if cfg.workers > 0:
            from repro.parallel import RegionPool

            # An external pool is only valid over the exact relations the
            # executor reads; fault injection / sanitisation replace them,
            # so such runs build a private pool over the replaced inputs.
            if pool is None or rs.left is not left or rs.right is not right:
                pool = RegionPool(
                    rs.left,
                    rs.right,
                    workers=cfg.workers,
                    use_shared_memory=cfg.enable_shared_memory,
                    restart_budget=cfg.pool_restart_budget,
                    poison_threshold=cfg.pool_poison_threshold,
                    kill_plan=cfg.pool_kill_plan,
                )
                pool_owned = True
            client = pool.client()
            client.set_workload(workload)

        durability = None
        if cfg.enable_journal:
            # Function-level imports break the package cycle with
            # repro.durability.recover (which needs this module) and keep
            # the journal-off hot path import-free.
            from repro.durability.journal import RegionJournal, run_fingerprint
            from repro.durability.runtime import RunDurability

            # Fingerprint over the *original* inputs: fault corruption and
            # sanitisation are deterministic stages of the run itself, so
            # run identity is defined before either applies.
            fingerprint = run_fingerprint(cfg, left, right, workload)
            if _resume is not None:
                if _resume.snapshot is not None:
                    _restore_run_state(rs, _resume.snapshot["state"])
                durability = RunDurability(
                    _resume.journal,
                    cfg.journal_dir,
                    fingerprint,
                    cfg.checkpoint_every_regions,
                    list(_resume.expected),
                )
            else:
                journal = RegionJournal.create(cfg.journal_dir, fingerprint)
                durability = RunDurability(
                    journal,
                    cfg.journal_dir,
                    fingerprint,
                    cfg.checkpoint_every_regions,
                )
        elif _resume is not None:
            raise ExecutionError("resuming a run requires enable_journal=True")

        return LiveRun(
            self, rs, durability, cancel_token, client, pool, pool_owned
        )

    @staticmethod
    def _harvest_pool(rs: "_RunState", pool: "object", client: "object") -> None:
        """Fold the pool's supervision snapshot into the run's outputs.

        Both surfaces are diagnostic wall-channels: ``stats.pool_health``
        stays out of :meth:`ExecutionStats.summary` and the ``"pool"``
        quarantine report only records which regions fell back to inline
        prepare — neither can move an observable (§14 contract).
        """
        health = pool.health()
        rs.stats.pool_health = health.as_dict()
        poisoned = client.poisoned()
        if poisoned:
            rs.quarantine["pool"] = QuarantineReport(
                relation="region-pool",
                quarantined=[
                    QuarantinedTuple(
                        row=region_id, attribute="region", reason="poison"
                    )
                    for region_id in poisoned
                ],
                rows_scanned=int(health.dispatched),
            )

    # ------------------------------------------------------------------ #
    def _prepare(
        self,
        left: Relation,
        right: Relation,
        workload: Workload,
        contracts: "dict[str, Contract]",
        stats: ExecutionStats,
        build_cache: "dict | None" = None,
    ) -> _RunState:
        """The deterministic prologue — everything before Algorithm 1's
        loop.  A resumed run re-executes this from the original inputs and
        then overwrites the mutable pieces from the snapshot (restoring
        the stats/clock last erases the prologue's re-charges)."""
        cfg = self.config
        conditions = workload.join_conditions

        # -- Robustness preamble (docs/ARCHITECTURE.md §9) ---------------- #
        # Fault injection corrupts the inputs *before* sanitisation so the
        # quarantine path is exercised exactly as a bad upstream feed would.
        fault_plan = cfg.fault_plan
        inject = fault_plan is not None and fault_plan.active
        if inject:
            left, right, _injected = fault_plan.corrupt_pair(left, right)
            # Injected/sanitised inputs invalidate any cross-run caches
            # keyed on the original relations.
            build_cache = None
        quarantine: "dict[str, QuarantineReport]" = {}
        if cfg.enable_sanitize:
            build_cache = None
            left, left_report = sanitize_relation(
                left, domain_limit=cfg.sanitize_domain_limit
            )
            right, right_report = sanitize_relation(
                right, domain_limit=cfg.sanitize_domain_limit
            )
            for side, report in (("left", left_report), ("right", right_report)):
                if report:
                    quarantine[side] = report
                    stats.record_tuples_quarantined(report.rows_dropped)

        # -- Step 0: input partitioning ---------------------------------- #
        left_attrs = partition_attrs(workload, "left") or left.schema.measure_names
        right_attrs = partition_attrs(workload, "right") or right.schema.measure_names
        left_part = quadtree_partition(
            left, left_attrs, conditions, "left",
            capacity=cfg.capacity_for(left.cardinality),
            split=cfg.partition_split,
        )
        right_part = quadtree_partition(
            right, right_attrs, conditions, "right",
            capacity=cfg.capacity_for(right.cardinality),
            split=cfg.partition_split,
        )

        # -- Step 1: shared min-max cuboid plan(s) ------------------------ #
        # The global cuboid drives the region-level machinery (coarse
        # skyline, benefit model, reporting); tuple-level skyline state is
        # grouped by (join condition, selections) — see WorkloadPlan.
        cuboid = build_minmax_cuboid(workload)
        plan = WorkloadPlan(
            workload,
            workload.output_dims,
            counter=stats.comparison_counter,
            assume_dva=cfg.assume_dva,
            # Parallel and columnar runs use the replay insertion kernel —
            # bit-identical to the per-round kernel (same admissions,
            # evictions, charges) but one dominance broadcast per batch
            # instead of per round.
            batch_kernel=(
                "replay"
                if (cfg.workers > 0 or cfg.enable_columnar_join)
                else "rounds"
            ),
        )

        # -- Step 2: MQLA ------------------------------------------------- #
        cj = coarse_join(
            workload, left_part, right_part, stats, divisions=cfg.divisions
        )
        regions = cj.regions
        if cfg.enable_coarse_pruning:
            coarse_skyline(workload, cuboid, regions, stats)
        alive: dict[int, OutputRegion] = {
            r.region_id: r for r in regions if not r.is_discarded
        }

        # -- Step 3: dependency graph + benefit model --------------------- #
        if cfg.enable_depgraph:
            graph = build_dependency_graph(
                workload, cuboid, list(alive.values()), cj.grid, stats
            )
        else:
            graph = DependencyGraph()
            for rid in alive:
                graph.add_node(rid)
        benefit = BenefitModel(
            workload, cuboid, cj.grid, contracts, cfg.cost_model
        )
        benefit.attach_regions(list(alive.values()))
        estimates = self._result_estimates(workload, cuboid, alive.values())
        benefit.set_result_estimates(estimates)
        tracker = SatisfactionTracker(contracts, estimates)

        weights = np.array(
            [q.priority if cfg.use_priority_weights else 1.0 for q in workload]
        )

        # -- Step 4: assemble the mutable loop state ---------------------- #
        state = _ReportingState(workload, cuboid)
        supervisor = (
            RegionSupervisor(cfg.retry_policy) if cfg.enable_recovery else None
        )
        degraded: "dict[str, list[DegradedReport]]" = {
            q.name: [] for q in workload
        }
        rs = _RunState(
            workload=workload,
            contracts=contracts,
            left=left,
            right=right,
            stats=stats,
            plan=plan,
            cuboid=cuboid,
            regions=regions,
            alive=alive,
            graph=graph,
            benefit=benefit,
            estimates=estimates,
            tracker=tracker,
            weights=weights,
            state=state,
            supervisor=supervisor,
            degraded=degraded,
            degraded_queries=set(),
            cells_left={c.cell_id: c for c in left_part.leaves},
            cells_right={c.cell_id: c for c in right_part.leaves},
            quarantine=quarantine,
            fault_plan=fault_plan,
            inject=inject,
        )
        fault_hook = None
        if inject:

            def fault_hook(target: OutputRegion) -> None:
                attempt = (
                    supervisor.next_attempt(target.region_id)
                    if supervisor is not None
                    else 1
                )
                rs.rng_cursor += 1
                if fault_plan.region_fails(target.region_id, attempt):
                    raise RegionFailure(
                        target.region_id, attempt, "injected fault"
                    )

        rs.executor = RegionExecutor(
            workload,
            left,
            right,
            plan,
            JoinResultStore(),
            stats,
            batch_inserts=cfg.enable_batch_insert,
            fault_hook=fault_hook,
            build_cache=build_cache,
            parallel_commit=cfg.workers > 0,
            columnar=cfg.enable_columnar_join,
        )
        return rs

    def _journal_region(
        self,
        rs: _RunState,
        durability: "object | None",
        region: OutputRegion,
        event: str,
    ) -> None:
        """Journal one completed (processed or quarantined) region.

        The record carries the run's externally observable progress —
        cumulative comparison count, virtual-clock reading, per-query
        reported counts, fault-decision cursor — so resume verification
        compares the replay against the persisted history field for
        field (write-ahead: the record is fsync'd before the loop picks
        the next region).
        """
        rs.seq += 1
        if durability is None:
            return
        record = {
            "seq": rs.seq,
            "event": event,
            "region": region.region_id,
            "rql": region.rql,
            "comparisons": int(rs.stats.skyline_comparisons),
            "clock": float(rs.stats.clock.now()),
            "reported": [
                len(rs.state.reported[q.name]) for q in rs.workload
            ],
            "rng": rs.rng_cursor,
        }
        durability.on_region_complete(record, lambda: _dump_run_state(rs))

    def _finalize(self, rs: _RunState) -> RunResult:
        """Package the drained loop state into a :class:`RunResult`."""
        rs.state.assert_drained()
        logs = {q.name: rs.tracker.log(q.name) for q in rs.workload}
        reported = {
            name: {
                rs.executor.store.identity(k).as_tuple()
                for k in rs.state.reported[name]
            }
            for name in rs.state.reported
        }
        return RunResult(
            workload=rs.workload,
            contracts=dict(rs.contracts),
            logs=logs,
            stats=rs.stats,
            horizon=rs.stats.clock.now(),
            reported=reported,
            degraded={
                name: reports
                for name, reports in rs.degraded.items()
                if reports
            },
            quarantine=rs.quarantine,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _result_estimates(
        workload: Workload,
        cuboid: MinMaxCuboid,
        regions: "list[OutputRegion]",
    ) -> "dict[str, float]":
        """Estimated final skyline size per query (for N_est in contracts)."""
        table = cuboid.lattice.table
        out: dict[str, float] = {}
        for qi, query in enumerate(workload):
            total_join = sum(
                r.est_join_count for r in regions if (r.active_rql >> qi) & 1
            )
            d = table.size(cuboid.query_nodes[query.name])
            out[query.name] = max(buchta_skyline_size(total_join, d), 1.0)
        return out

    def _rank_regions(
        self,
        roots: "set[int]",
        alive: "dict[int, OutputRegion]",
        benefit: BenefitModel,
        weights: np.ndarray,
        now: float,
    ) -> "list[int]":
        """Root ids best-first under the configured objective.

        The head of the ranking is exactly :meth:`_pick_region`'s choice
        (stable descending sort ties break toward the lower region id,
        matching ``argmax``); the tail orders the wave scheduler's
        speculative dispatches.
        """
        if not roots:
            raise ExecutionError("no schedulable region (empty root set)")
        root_arr = np.fromiter(roots, dtype=np.intp, count=len(roots))
        root_arr.sort()
        if self.config.objective == "scan":
            return root_arr.tolist()
        t_c, prog = benefit.estimate_roots_arrays(
            rid_arr=root_arr,
            use_cache=self.config.enable_scheduler_cache,
        )
        if self.config.objective == "count":
            scores = prog @ weights
        else:
            scores = benefit.csm_batch_arrays(t_c, prog, weights, now)
        order = np.argsort(-scores, kind="stable")
        return root_arr[order].tolist()

    def _pick_region(
        self,
        roots: "set[int]",
        alive: "dict[int, OutputRegion]",
        benefit: BenefitModel,
        weights: np.ndarray,
        now: float,
    ) -> OutputRegion:
        return alive[self._rank_regions(roots, alive, benefit, weights, now)[0]]

    def _discard_dominated(
        self,
        region: OutputRegion,
        successors: "dict[int, int]",
        outcome: RegionOutcome,
        executor: RegionExecutor,
        alive: "dict[int, OutputRegion]",
        graph: DependencyGraph,
        benefit: BenefitModel,
        state: "_ReportingState",
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
    ) -> None:
        """Section 6's discard step over the captured dependency edges.

        The per-(target, query) box-dominance tests are precomputed in one
        broadcast per query — the region's admitted vectors stacked into a
        matrix against every candidate target's lower corner — and the loop
        then replays the scalar decision order over the boolean table, so
        deactivations, releases and their clock charges happen in exactly
        the sequence the per-key loop produced.
        """
        targets = [
            (target_id, alive[target_id])
            for target_id in successors
            if target_id in alive
        ]
        if not targets:
            return
        lowers = np.vstack([t.lower for _, t in targets])
        dominated: "dict[int, np.ndarray]" = {}
        for qi, query in enumerate(executor.workload):
            keys = outcome.admitted.get(query.name, ())
            if not keys:
                continue
            positions = list(benefit.query_positions[qi])
            points = _gather_vectors(outcome, executor.store, keys)[:, positions]
            corners = lowers[:, positions]
            dominated[qi] = dominance_mask(points, corners).any(axis=0)
        for t_pos, (target_id, target) in enumerate(targets):
            query_mask = successors[target_id]
            for qi, query in enumerate(executor.workload):
                if not ((query_mask >> qi) & 1) or not target.serves(qi):
                    continue
                flags = dominated.get(qi)
                if flags is not None and flags[t_pos]:
                    target.deactivate_query(qi)
                    benefit.note_deactivation(target_id, qi)
                    state.release_region_for_query(
                        target_id, query.name, tracker, stats
                    )
            if target.is_discarded:
                stats.record_region_discarded()
                del alive[target_id]
                graph.remove_node(target_id)
                benefit.note_removed(target_id)
                state.release_region(target_id, target.rql, tracker, stats)

    # -- robustness layer (docs/ARCHITECTURE.md §9) --------------------- #
    @staticmethod
    def _degraded_report(
        query_name: str, region: OutputRegion, reason: str, now: float
    ) -> DegradedReport:
        """Approximate answer from the region's coarse MQLA bounds."""
        return DegradedReport(
            query_name=query_name,
            region_id=region.region_id,
            lower=tuple(float(v) for v in region.lower),
            upper=tuple(float(v) for v in region.upper),
            est_join_count=float(region.est_join_count),
            reason=reason,
            timestamp=now,
        )

    def _quarantine_region(
        self,
        workload: Workload,
        region: OutputRegion,
        alive: "dict[int, OutputRegion]",
        graph: DependencyGraph,
        benefit: BenefitModel,
        state: "_ReportingState",
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
        degraded: "dict[str, list[DegradedReport]]",
    ) -> None:
        """Retire a repeatedly-failing region without blocking dependents.

        The region leaves the dependency graph through the normal
        ``remove_node`` path, so its successors are promoted to roots
        exactly as if it had been processed; each query it served gets a
        degraded (MQLA-bound) answer, and any progressive-reporting
        threats it held are released so pending candidates can emit.
        """
        stats.record_region_quarantined()
        now = stats.clock.now()
        for qi, query in enumerate(workload):
            if region.serves(qi):
                degraded[query.name].append(
                    self._degraded_report(
                        query.name, region, REASON_QUARANTINE, now
                    )
                )
                stats.record_degraded_reports(1)
        del alive[region.region_id]
        graph.remove_node(region.region_id)
        benefit.note_removed(region.region_id)
        state.release_region(region.region_id, region.rql, tracker, stats)

    def _degrade_exhausted_queries(self, rs: _RunState) -> None:
        """Graceful degradation once the virtual clock passes the budget.

        Each newly-exhausted query receives, for every remaining region
        serving it, an approximate answer from the region's coarse MQLA
        bounds; the region is deactivated for that query so its pending
        candidates emit immediately instead of starving.  Regions left
        serving no query at all are retired.
        """
        budget = self.config.query_time_budget
        now = rs.stats.clock.now()
        if budget is None or now < budget:
            return
        if not self.config.enable_recovery:
            # Degradation is a recovery-layer behaviour; without it the
            # budget is a hard limit and exhaustion fails loudly.
            raise BudgetExhausted(
                f"virtual-time budget {budget:g} exhausted at t={now:g} "
                f"with {len(rs.alive)} region(s) outstanding "
                "(enable_recovery=True degrades gracefully instead)"
            )
        for qi, query in enumerate(rs.workload):
            if qi in rs.degraded_queries:
                continue
            rs.degraded_queries.add(qi)
            self._degrade_query(rs, qi, query, rs.budget_reason, now)

    def _degrade_all_queries(self, rs: _RunState, reason: str) -> None:
        """Degrade every not-yet-degraded query to MQLA bounds at once.

        The serving scheduler's brownout rung 2: a victim submission is
        answered approximately from coarse bounds *now* instead of
        holding regions other tenants need.  Identical per-query
        mechanics to budget exhaustion, just unconditional; the run is
        ``done`` when this returns.
        """
        now = rs.stats.clock.now()
        for qi, query in enumerate(rs.workload):
            if qi in rs.degraded_queries:
                continue
            rs.degraded_queries.add(qi)
            self._degrade_query(rs, qi, query, reason, now)

    def _degrade_query(
        self, rs: _RunState, qi: int, query: "object", reason: str, now: float
    ) -> None:
        """Answer one query's remaining regions from coarse MQLA bounds."""
        for rid in sorted(rs.alive):
            region = rs.alive.get(rid)
            if region is None or not region.serves(qi):
                continue
            rs.degraded[query.name].append(
                self._degraded_report(query.name, region, reason, now)
            )
            rs.stats.record_degraded_reports(1)
            region.deactivate_query(qi)
            rs.benefit.note_deactivation(rid, qi)
            rs.state.release_region_for_query(
                rid, query.name, rs.tracker, rs.stats
            )
            if region.is_discarded:
                del rs.alive[rid]
                rs.graph.remove_node(rid)
                rs.benefit.note_removed(rid)
                rs.state.release_region(rid, region.rql, rs.tracker, rs.stats)


class LiveRun:
    """A prepared, region-steppable CAQE run (scheduler-owned control flow).

    :meth:`CAQE.open_run` hands one back; :meth:`step` performs exactly
    one iteration of Algorithm 1's loop — cancellation poll, budget
    degradation, pick, wave dispatch, tuple-level processing, discard,
    progressive reporting, feedback — so an external driver can suspend
    the run between regions and interleave many runs over one engine
    host.  ``CAQE.run`` is literally ``while not done: step()``, which
    pins driver-owned and scheduler-owned control flow to bit-identical
    observables.

    With a pool client, each step ranks the unblocked roots and
    speculatively ships the top ``parallel_chunk_regions`` to worker
    processes; the *commit* still happens one region at a time, in the
    exact serial benefit order.  A payload not ready at commit is
    prepared inline (work stealing), and payloads of regions that die
    before their turn are dropped — speculation is pure, so neither case
    perturbs anything.
    """

    def __init__(
        self,
        engine: CAQE,
        rs: _RunState,
        durability: "object | None",
        cancel_token: "object | None",
        client: "object | None",
        pool: "object | None",
        pool_owned: bool,
    ) -> None:
        self._engine = engine
        self.rs = rs
        self._durability = durability
        self.cancel_token = cancel_token
        self._client = client
        self._pool = pool
        self._pool_owned = pool_owned
        self._conditions = {
            c.name: c for c in rs.workload.join_conditions
        }
        #: Payloads fetched but not yet committed (kept across retries).
        self._prepared_cache: "dict[int, object]" = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once no region remains — :meth:`finalize` may be called."""
        return not self.rs.alive

    @property
    def now(self) -> float:
        """The run's current virtual-clock reading."""
        return self.rs.stats.clock.now()

    def peek_best_csm(self) -> float:
        """Best root benefit under current weights/clock — this run's bid
        in the cross-tenant region auction (Eq. 8 as the cross-query —
        and hence cross-tenant — currency).

        Read-only: estimates flow through the same memoised benefit
        caches the next :meth:`step` consults and nothing is charged to
        the virtual clock, so peeking never perturbs an observable.
        """
        rs = self.rs
        if not rs.alive:
            return 0.0
        cfg = self._engine.config
        roots = rs.graph.roots() & rs.alive.keys()
        if not roots:
            roots = rs.graph.force_roots() & rs.alive.keys()
        if not roots or cfg.objective == "scan":
            return 0.0
        root_arr = np.fromiter(roots, dtype=np.intp, count=len(roots))
        root_arr.sort()
        t_c, prog = rs.benefit.estimate_roots_arrays(
            rid_arr=root_arr, use_cache=cfg.enable_scheduler_cache
        )
        if cfg.objective == "count":
            scores = prog @ rs.weights
        else:
            scores = rs.benefit.csm_batch_arrays(
                t_c, prog, rs.weights, rs.stats.clock.now()
            )
        return float(scores.max()) if len(scores) else 0.0

    def degrade_all(self, reason: str) -> None:
        """Brownout: answer every remaining query from coarse MQLA bounds
        *now* (reason ``"brownout"`` in the degraded reports) and drain
        the run.  ``done`` is True when this returns."""
        self._engine._degrade_all_queries(self.rs, reason)

    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """One iteration of Algorithm 1's loop (no-op once ``done``)."""
        engine = self._engine
        cfg = engine.config
        rs = self.rs
        client = self._client
        if not rs.alive:
            return
        workload, stats, executor = rs.workload, rs.stats, rs.executor
        if self.cancel_token is not None and self.cancel_token.is_cancelled():
            raise QueryCancelled(
                f"run cancelled at region boundary "
                f"(t={stats.clock.now():g}, "
                f"{len(rs.alive)} region(s) outstanding)"
            )
        if cfg.query_time_budget is not None:
            engine._degrade_exhausted_queries(rs)
            if not rs.alive:
                return
        roots = rs.graph.roots() & rs.alive.keys()
        if not roots:
            roots = rs.graph.force_roots() & rs.alive.keys()
        if client is None:
            region = engine._pick_region(
                roots, rs.alive, rs.benefit, rs.weights, stats.clock.now()
            )
        else:
            ranked = engine._rank_regions(
                roots, rs.alive, rs.benefit, rs.weights, stats.clock.now()
            )
            region = rs.alive[ranked[0]]
            # Wave dispatch: the next few commits almost always come
            # from the current top of the ranking, so ship those now.
            for rid in ranked[: cfg.parallel_chunk_regions]:
                if rid not in self._prepared_cache:
                    spec = rs.alive[rid]
                    client.dispatch(
                        rid,
                        self._conditions[spec.condition_name],
                        rs.cells_left[spec.left_cell_id],
                        rs.cells_right[spec.right_cell_id],
                    )
        captured_successors = rs.graph.successors(region.region_id)
        if rs.inject:
            rs.rng_cursor += 1
            straggler_factor = rs.fault_plan.straggler_factor_for(
                region.region_id
            )
        else:
            straggler_factor = 1.0
        started = stats.clock.now()
        prepared = None
        if client is not None:
            prepared = self._prepared_cache.pop(region.region_id, None)
            if prepared is None:
                prepared = client.fetch(region.region_id)
            if prepared is None:
                # Steal the work: prepare inline with the same kernel.
                from repro.parallel import PrepareTask, prepare_payload

                lc = rs.cells_left[region.left_cell_id]
                rc = rs.cells_right[region.right_cell_id]
                prepared = prepare_payload(
                    PrepareTask(
                        client=0,
                        region_id=region.region_id,
                        condition=self._conditions[region.condition_name],
                        left_cell_id=lc.cell_id,
                        right_cell_id=rc.cell_id,
                        left_indices=lc.indices,
                        right_indices=rc.indices,
                        functions=None,
                    ),
                    rs.left,
                    rs.right,
                )
        try:
            outcome = executor.process(
                region,
                rs.cells_left[region.left_cell_id],
                rs.cells_right[region.right_cell_id],
                prepared=prepared,
            )
        except RegionFailure:
            if prepared is not None:
                # The payload is pure — keep it for the retry.
                self._prepared_cache[region.region_id] = prepared
            if rs.supervisor is None:
                raise
            if rs.supervisor.record_failure(region.region_id) == RETRY:
                stats.record_region_retry(
                    rs.supervisor.backoff_for(region.region_id)
                )
            else:
                self._prepared_cache.pop(region.region_id, None)
                if client is not None:
                    client.forget(region.region_id)
                engine._quarantine_region(
                    workload,
                    region,
                    rs.alive,
                    rs.graph,
                    rs.benefit,
                    rs.state,
                    rs.tracker,
                    stats,
                    rs.degraded,
                )
                engine._journal_region(
                    rs, self._durability, region, "quarantined"
                )
            return
        if straggler_factor > 1.0:
            stats.record_straggler_penalty(
                (straggler_factor - 1.0) * (stats.clock.now() - started)
            )
        # Region leaves the remaining set before safety checks run.
        # Remaining regions that counted it as a potential dominator
        # lose a threat — their progressive estimates improve; the
        # benefit model's memoised ratios self-validate against the
        # changed membership at the next lookup (Algorithm 1's
        # "Update R_f's CSM scores").
        del rs.alive[region.region_id]
        rs.graph.remove_node(region.region_id)
        rs.benefit.note_removed(region.region_id)
        if client is not None:
            # Clear any straggling in-flight state (e.g. the driver
            # stole the work while a worker was still computing it).
            client.forget(region.region_id)

        rs.state.apply_evictions(outcome, rs.tracker)
        rs.state.admit_candidates(
            outcome, region, executor, rs.benefit, rs.tracker, stats
        )
        if cfg.enable_tuple_discard:
            engine._discard_dominated(
                region,
                captured_successors,
                outcome,
                executor,
                rs.alive,
                rs.graph,
                rs.benefit,
                rs.state,
                rs.tracker,
                stats,
            )
            if client is not None:
                # Speculative payloads of regions the discard step
                # just killed will never commit — drop them.
                for target_id in captured_successors:
                    if target_id not in rs.alive:
                        self._prepared_cache.pop(target_id, None)
                        client.forget(target_id)
        rs.state.release_region(
            region.region_id, region.rql, rs.tracker, stats
        )
        stats.mark_phase("report")
        stats.record_region_duration(stats.clock.now() - started)

        if cfg.enable_feedback:
            sats = np.array(
                [rs.tracker.runtime_satisfaction(q.name) for q in workload]
            )
            rs.weights = update_weights(rs.weights, sats)

        engine._journal_region(rs, self._durability, region, "processed")

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release durability/pool resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._durability is not None:
            self._durability.close()
        if self._client is not None:
            self._engine._harvest_pool(self.rs, self._pool, self._client)
        if self._pool_owned:
            self._pool.close()

    def finalize(self) -> RunResult:
        """Package the drained loop state into a :class:`RunResult`."""
        return self._engine._finalize(self.rs)


class _ReportingState:
    """Progressive-reporting bookkeeping (Section 6's reporting step).

    For each query, candidates admitted to the shared plan wait until no
    *remaining* region could produce a dominating tuple; the waiting is
    tracked as per-candidate threat sets that drain as regions are
    processed, discarded, or deactivated for the query.
    """

    def __init__(self, workload: Workload, cuboid: MinMaxCuboid) -> None:
        self.workload = workload
        table = cuboid.lattice.table
        self.positions = {
            q.name: tuple(
                workload.output_dims.index(n)
                for n in table.names(cuboid.query_nodes[q.name])
            )
            for q in workload
        }
        self.pending: dict[str, dict[int, set[int]]] = {
            q.name: {} for q in workload
        }
        self.threats_by_region: dict[str, dict[int, set[int]]] = {
            q.name: {} for q in workload
        }
        self.reported: dict[str, set[int]] = {q.name: set() for q in workload}
        self._store: "JoinResultStore | None" = None

    # -- candidate lifecycle ------------------------------------------- #
    def apply_evictions(
        self, outcome: RegionOutcome, tracker: SatisfactionTracker
    ) -> None:
        for query in self.workload:
            for key in outcome.evicted.get(query.name, ()):
                self._drop_pending(query.name, key)

    def admit_candidates(
        self,
        outcome: RegionOutcome,
        region: OutputRegion,
        executor: RegionExecutor,
        benefit: BenefitModel,
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
    ) -> None:
        self._store = executor.store
        now = stats.clock.now()
        for qi, query in enumerate(self.workload):
            if not region.serves(qi):
                continue
            keys = outcome.admitted.get(query.name, ())
            if not keys:
                continue
            serving_ids, lowers = benefit.active_serving(qi)
            if not serving_ids.size:
                for key in keys:
                    self._emit(query.name, key, now, tracker, stats)
                continue
            positions = list(self.positions[query.name])
            vectors = _gather_vectors(outcome, executor.store, keys)[
                :, positions
            ]
            # threat[k, r]: region r could still produce a tuple dominating
            # candidate k (its best corner reaches below the candidate).
            threat = dominance_mask(lowers, vectors).T
            for k_pos, key in enumerate(keys):
                rids = {
                    int(serving_ids[r]) for r in np.nonzero(threat[k_pos])[0]
                }
                if rids:
                    self.pending[query.name][key] = rids
                    for rid in sorted(rids):
                        self.threats_by_region[query.name].setdefault(
                            rid, set()
                        ).add(key)
                else:
                    self._emit(query.name, key, now, tracker, stats)

    # -- threat draining ------------------------------------------------ #
    def release_region(
        self,
        region_id: int,
        rql: int,
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
    ) -> None:
        for qi, query in enumerate(self.workload):
            if (rql >> qi) & 1:
                self.release_region_for_query(
                    region_id, query.name, tracker, stats
                )

    def release_region_for_query(
        self,
        region_id: int,
        query_name: str,
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
    ) -> None:
        keys = self.threats_by_region[query_name].pop(region_id, set())
        now = stats.clock.now()
        for key in keys:
            threats = self.pending[query_name].get(key)
            if threats is None:
                continue
            threats.discard(region_id)
            if not threats:
                del self.pending[query_name][key]
                self._emit(query_name, key, now, tracker, stats)

    def _emit(
        self,
        query_name: str,
        key: int,
        now: float,
        tracker: SatisfactionTracker,
        stats: ExecutionStats,
    ) -> None:
        if key in self.reported[query_name]:
            return
        self.reported[query_name].add(key)
        identity = self._store.identity(key).as_tuple()
        tracker.record(query_name, [identity], now)
        stats.record_outputs(1)

    def _drop_pending(self, query_name: str, key: int) -> None:
        threats = self.pending[query_name].pop(key, None)
        if threats:
            for rid in threats:
                bucket = self.threats_by_region[query_name].get(rid)
                if bucket is not None:
                    bucket.discard(key)

    def assert_drained(self) -> None:
        leftovers = {
            name: len(keys) for name, keys in self.pending.items() if keys
        }
        if leftovers:
            raise ExecutionError(
                f"progressive reporting did not drain: {leftovers}"
            )


# --------------------------------------------------------------------- #
# Durability codecs (docs/ARCHITECTURE.md §10.2)
# --------------------------------------------------------------------- #
def _dump_run_state(rs: _RunState) -> "dict[str, object]":
    """Serialise the mutable loop state of a run for a snapshot.

    Only state Algorithm 1 mutates is captured — the deterministic
    prologue (partitions, cuboid, coarse join, regions, benefit caches)
    is reconstructed by re-running :meth:`CAQE._prepare` on resume.
    """
    from repro.durability import checkpoint as cp

    return {
        "seq": rs.seq,
        "rng": rs.rng_cursor,
        "stats": cp.dump_stats(rs.stats),
        # (region_id, active_rql) in dict insertion order.
        "alive": [[rid, region.active_rql] for rid, region in rs.alive.items()],
        "graph": cp.dump_graph(rs.graph),
        "weights": [float(w) for w in rs.weights],
        "store": cp.dump_store(rs.executor.store),
        "windows": cp.dump_plan_windows(rs.plan),
        "reporting": {
            "pending": {
                name: [
                    [key, sorted(threats)]
                    for key, threats in rs.state.pending[name].items()
                ]
                for name in rs.state.pending
            },
            "reported": {
                name: sorted(keys) for name, keys in rs.state.reported.items()
            },
        },
        "logs": cp.dump_logs(
            {q.name: rs.tracker.log(q.name) for q in rs.workload}
        ),
        "supervisor": cp.dump_supervisor(rs.supervisor),
        "degraded": cp.dump_degraded(rs.degraded),
        "degraded_queries": sorted(rs.degraded_queries),
    }


def _restore_run_state(rs: _RunState, state: "dict[str, object]") -> None:
    """Overwrite a freshly prepared run with snapshotted loop state.

    The stats/clock restore comes first only by convention — every piece
    here is an overwrite, so after this returns no trace of the
    prologue's re-charges or of the pre-snapshot loop iterations
    remains; the run continues bit-identically to the killed one.
    """
    from repro.durability import checkpoint as cp

    cp.load_stats(rs.stats, state["stats"])
    by_id = {r.region_id: r for r in rs.regions}
    alive: "dict[int, OutputRegion]" = {}
    for rid, active_rql in state["alive"]:
        region = by_id[int(rid)]
        region.active_rql = int(active_rql)
        alive[region.region_id] = region
    rs.alive = alive
    rs.graph = cp.load_graph(state["graph"])
    # Re-attach wipes and lazily rebuilds the benefit caches; warm and
    # cold caches are bit-identical by construction (memoisation only
    # skips recomputation of values that would come out equal).
    rs.benefit.attach_regions(list(alive.values()))
    rs.weights = np.asarray([float(w) for w in state["weights"]], dtype=float)
    cp.load_store(rs.executor.store, state["store"])
    cp.load_plan_windows(rs.plan, state["windows"])
    st = rs.state
    st.pending = {q.name: {} for q in rs.workload}
    st.threats_by_region = {q.name: {} for q in rs.workload}
    st.reported = {q.name: set() for q in rs.workload}
    reporting = state["reporting"]
    for name, items in reporting["pending"].items():
        for key, threats in items:
            key = int(key)
            rids = {int(r) for r in threats}
            st.pending[name][key] = set(rids)
            for rid in sorted(rids):
                st.threats_by_region[name].setdefault(rid, set()).add(key)
    for name, keys in reporting["reported"].items():
        st.reported[name] = {int(k) for k in keys}
    st._store = rs.executor.store
    rs.tracker._logs.update(cp.load_logs(state["logs"]))
    cp.load_supervisor(rs.supervisor, state["supervisor"])
    rs.degraded = cp.load_degraded(state["degraded"])
    rs.degraded_queries = {int(qi) for qi in state["degraded_queries"]}
    rs.seq = int(state["seq"])
    rs.rng_cursor = int(state["rng"])


def run_caqe(
    left: Relation,
    right: Relation,
    workload: Workload,
    contracts: "dict[str, Contract]",
    config: "CAQEConfig | None" = None,
) -> RunResult:
    """Convenience one-shot entry point."""
    return CAQE(config).run(left, right, workload, contracts)


__all__ = [
    "CAQE",
    "CAQEConfig",
    "LiveRun",
    "RunResult",
    "partition_attrs",
    "run_caqe",
]
