"""Coarse-level join evaluation (Section 5.1, MQLA step 1).

For every pair of leaf cells (one per table) and every join condition in
the workload, intersect the cells' join signatures.  A non-empty
intersection guarantees at least one tuple-level join result, so the pair
becomes an :class:`~repro.core.region.OutputRegion`; an empty intersection
proves the pair can never contribute to queries using that condition and
the pair is skipped entirely — join work the shared plan never performs.

Region bounds in output space are derived by pushing the input-cell bounds
through the (monotone) mapping functions; the estimated join cardinality
comes from the signature overlap under a uniform-value assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.output_space import DEFAULT_DIVISIONS, OutputGrid, grid_for_cells
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.partition.quadtree import Partitioning
from repro.partition.signatures import common_values
from repro.query.workload import Workload


@dataclass(frozen=True)
class CoarseJoinResult:
    """Everything MQLA's later steps need."""

    regions: "list[OutputRegion]"
    grid: OutputGrid
    #: (left_cell_id, right_cell_id, condition) pairs pruned by signatures.
    pruned_pairs: int


def _estimate_join_count(
    left_sig: frozenset,
    right_sig: frozenset,
    shared: frozenset,
    left_size: int,
    right_size: int,
) -> float:
    """Expected matches assuming values are uniform within each cell."""
    if not shared:
        return 0.0
    per_left = left_size / max(len(left_sig), 1)
    per_right = right_size / max(len(right_sig), 1)
    return len(shared) * per_left * per_right


def coarse_join(
    workload: Workload,
    left_partitioning: Partitioning,
    right_partitioning: Partitioning,
    stats: ExecutionStats,
    *,
    divisions: int = DEFAULT_DIVISIONS,
) -> CoarseJoinResult:
    """Run the signature-driven coarse join and build the output regions."""
    output_dims = workload.output_dims
    functions = [workload.function_for(d) for d in output_dims]
    conditions = workload.join_conditions
    # Query bitmask per join condition: which workload queries use it.
    condition_rql = {
        c.name: sum(
            1 << qi
            for qi, q in enumerate(workload)
            if q.join_condition.name == c.name
        )
        for c in conditions
    }

    # Pass 1: find contributing pairs and their output bounds.
    raw: list[dict] = []
    pruned = 0
    for left_cell in left_partitioning.leaves:
        left_lower, left_upper = left_cell.lower_map(), left_cell.upper_map()
        for right_cell in right_partitioning.leaves:
            right_lower, right_upper = right_cell.lower_map(), right_cell.upper_map()
            for condition in conditions:
                stats.record_coarse_comparisons(1)  # one signature test
                shared = common_values(
                    left_cell.signature(condition.name),
                    right_cell.signature(condition.name),
                )
                if not shared:
                    pruned += 1
                    continue
                lower = np.empty(len(output_dims))
                upper = np.empty(len(output_dims))
                for k, fn in enumerate(functions):
                    lo, hi = fn.apply_bounds(
                        left_lower, left_upper, right_lower, right_upper
                    )
                    lower[k], upper[k] = lo, hi
                raw.append(
                    {
                        "left": left_cell,
                        "right": right_cell,
                        "condition": condition.name,
                        "lower": lower,
                        "upper": upper,
                        "est": _estimate_join_count(
                            left_cell.signature(condition.name),
                            right_cell.signature(condition.name),
                            shared,
                            left_cell.size,
                            right_cell.size,
                        ),
                        "rql": condition_rql[condition.name],
                    }
                )
    if not raw:
        raise ExecutionError(
            "coarse join produced no output regions: no cell pair satisfies "
            "any join condition"
        )

    # Pass 2: size the grid, then materialise regions with coordinate boxes.
    grid = grid_for_cells(
        output_dims,
        [r["lower"] for r in raw],
        [r["upper"] for r in raw],
        divisions=divisions,
    )
    # Coordinate boxes for every contributing pair in two grid passes —
    # `coords_of` performs the same elementwise float operations as the
    # scalar `box_of`, so each row matches the per-region call bit for bit.
    box_lo = grid.coords_of(np.vstack([r["lower"] for r in raw]))
    box_hi = grid.coords_of(np.vstack([r["upper"] for r in raw]))
    regions: list[OutputRegion] = []
    for region_id, r in enumerate(raw):
        coord_lo = tuple(int(v) for v in box_lo[region_id])
        coord_hi = tuple(int(v) for v in box_hi[region_id])
        regions.append(
            OutputRegion(
                region_id=region_id,
                left_cell_id=r["left"].cell_id,
                right_cell_id=r["right"].cell_id,
                condition_name=r["condition"],
                lower=r["lower"],
                upper=r["upper"],
                rql=r["rql"],
                coord_lo=coord_lo,
                coord_hi=coord_hi,
                est_join_count=max(r["est"], 1.0),
                left_size=r["left"].size,
                right_size=r["right"].size,
            )
        )
    return CoarseJoinResult(regions=regions, grid=grid, pruned_pairs=pruned)


__all__ = ["CoarseJoinResult", "coarse_join"]
