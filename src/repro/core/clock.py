"""Deterministic virtual time (the paper's wall-clock substitute).

The paper measures contract satisfaction against wall-clock seconds on a
2.6 GHz workstation.  A Python reproduction timed with wall clocks would be
noisy and hardware-dependent, so every execution strategy in this package
charges its primitive operations to a :class:`VirtualClock` through a
:class:`CostModel` instead: result tuples are stamped with virtual time,
and contract deadlines are expressed in the same units (see DESIGN.md §2).

The default cost model's *ratios* follow the conventional wisdom the paper
leans on: a pairwise skyline comparison is the expensive unit, join-result
materialisation is cheaper, and probes/mapping are cheaper still.  The
absolute scale is arbitrary — only relative behaviour matters, and the
bench configs calibrate contract deadlines against it per distribution
exactly as the paper calibrates seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ExecutionError


@dataclass(frozen=True)
class CostModel:
    """Virtual time charged per primitive operation."""

    #: Tuple-pair equality probe during tuple-level join evaluation.
    join_probe: float = 1.0
    #: Materialising one join result (allocating and copying the combined
    #: tuple, the bulk of a join-dominated workload — the paper's N = 500 K
    #: runs materialise millions of these per query).
    join_result: float = 4.0
    #: Applying one mapping function to one join result.
    mapping: float = 0.5
    #: One pairwise skyline dominance comparison.
    skyline_comparison: float = 2.0
    #: Region-level (coarse) dominance test.  Far cheaper than a tuple-level
    #: comparison: it is a bound check on pre-computed corner vectors, and at
    #: the paper's data scale the whole look-ahead is a small fraction of
    #: tuple-level work — this constant calibrates the same regime at the
    #: reproduction's smaller default cardinalities.
    coarse_comparison: float = 0.002
    #: Fixed overhead of scheduling one region for tuple-level processing.
    region_overhead: float = 10.0
    #: Reporting one progressive result to a consumer.
    output: float = 0.2
    #: Per key-comparison cost inside a sort (sort-based techniques pay
    #: ``n * log2(n)`` of these before their skyline pass).
    sort_key: float = 0.3

    def validate(self) -> None:
        for name in (
            "join_probe",
            "join_result",
            "mapping",
            "skyline_comparison",
            "coarse_comparison",
            "region_overhead",
            "output",
            "sort_key",
        ):
            if getattr(self, name) < 0:
                raise ExecutionError(f"cost model field {name!r} must be non-negative")


@dataclass
class VirtualClock:
    """Monotonically advancing virtual time shared by one execution run."""

    cost_model: CostModel = field(default_factory=CostModel)
    time: float = 0.0

    def __post_init__(self) -> None:
        self.cost_model.validate()

    def now(self) -> float:
        return self.time

    def advance(self, units: float) -> float:
        if units < 0:
            raise ExecutionError(f"cannot advance the clock by {units}")
        self.time += units
        return self.time

    # Convenience charging methods — one per primitive. --------------------
    def charge_join_probes(self, count: int = 1) -> None:
        self.advance(self.cost_model.join_probe * count)

    def charge_join_results(self, count: int = 1) -> None:
        self.advance(self.cost_model.join_result * count)

    def charge_mappings(self, count: int = 1) -> None:
        self.advance(self.cost_model.mapping * count)

    def charge_skyline_comparisons(self, count: int = 1) -> None:
        self.advance(self.cost_model.skyline_comparison * count)

    def charge_coarse_comparisons(self, count: int = 1) -> None:
        self.advance(self.cost_model.coarse_comparison * count)

    def charge_region_overhead(self, count: int = 1) -> None:
        self.advance(self.cost_model.region_overhead * count)

    def charge_outputs(self, count: int = 1) -> None:
        self.advance(self.cost_model.output * count)

    def charge_sort(self, n: int) -> None:
        """Comparison-sort cost for ``n`` items."""
        if n > 1:
            self.advance(self.cost_model.sort_key * n * math.log2(n))

    # Robustness-layer charges (docs/ARCHITECTURE.md §9). -----------------
    def charge_retry_backoff(self, units: float) -> None:
        """Wait out a failed region's backoff window in virtual time."""
        self.advance(units)

    def charge_straggler_penalty(self, units: float) -> None:
        """Extra virtual time a simulated straggler region costs."""
        self.advance(units)


__all__ = ["CostModel", "VirtualClock"]
