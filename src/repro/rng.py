"""Seeded random-number helpers.

Every stochastic component in this package accepts either an integer seed or
a ready-made :class:`numpy.random.Generator`. :func:`ensure_rng` normalises
both spellings so modules never touch global numpy random state, keeping all
experiments reproducible bit-for-bit (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Seed used whenever a caller does not supply one.  Fixed so the quickstart
#: and test-suite defaults are stable across runs.
DEFAULT_SEED = 20140324  # EDBT 2014 opened March 24, 2014.

#: Anything :func:`ensure_rng` accepts: a seed, a generator, or ``None``.
RngLike: TypeAlias = "int | np.random.Generator | None"


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (use :data:`DEFAULT_SEED`), an ``int``, or an
    existing generator (returned unchanged so callers can share a stream).
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: RngLike, count: int) -> "list[np.random.Generator]":
    """Split ``rng`` into ``count`` independent child generators.

    Used by the dataset generators so each table / column draws from its own
    stream; inserting a new column then never perturbs existing ones.
    Accepts any :data:`RngLike`; seeds are normalised via :func:`ensure_rng`.
    """
    generator = ensure_rng(rng)
    seed_seq = generator.bit_generator.seed_seq
    return [np.random.default_rng(s) for s in seed_seq.spawn(count)]
