"""Exception hierarchy for the CAQE reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SchemaError(ReproError):
    """A relation, attribute, or schema was used inconsistently."""


class QueryError(ReproError):
    """A query, workload, or operator specification is invalid."""


class ContractError(ReproError):
    """A contract specification or utility function is invalid."""


class PartitionError(ReproError):
    """Input partitioning (quad-tree / leaf cells) failed or was misused."""


class PlanError(ReproError):
    """Shared-plan (subspace lattice / min-max cuboid) construction failed."""


class ExecutionError(ReproError):
    """The optimizer or executor reached an inconsistent runtime state."""


class BenchmarkError(ReproError):
    """An experiment configuration is invalid or a harness step failed."""
