"""Exception hierarchy for the CAQE reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SchemaError(ReproError):
    """A relation, attribute, or schema was used inconsistently."""


class QueryError(ReproError):
    """A query, workload, or operator specification is invalid."""


class ContractError(ReproError):
    """A contract specification or utility function is invalid."""


class PartitionError(ReproError):
    """Input partitioning (quad-tree / leaf cells) failed or was misused."""


class PlanError(ReproError):
    """Shared-plan (subspace lattice / min-max cuboid) construction failed."""


class ExecutionError(ReproError):
    """The optimizer or executor reached an inconsistent runtime state."""


class DataError(ReproError):
    """Input data violated its declared domain (NaN/inf/out-of-range).

    Raised by the sanitizer when quarantine is disabled but corrupted
    tuples are encountered, so bad values never reach dominance tests
    (a single NaN poisons every comparison it participates in).
    """


class RegionFailure(ExecutionError):
    """Tuple-level evaluation of one region failed.

    The recovery layer treats this as *retryable*: the region may be
    re-scheduled with backoff and, after repeated failures, quarantined.
    Recovery code catches exactly this class — never bare ``Exception``
    (enforced by caqe-check rule CQ006) — so programming errors still
    propagate.
    """

    def __init__(self, region_id: int, attempt: int, reason: str = "") -> None:
        self.region_id = region_id
        self.attempt = attempt
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"region #{region_id} failed on attempt {attempt}{detail}"
        )


class BudgetExhausted(ExecutionError):
    """A query's per-run virtual-time budget ran out.

    Signals the driver to switch the affected query to graceful
    degradation (remaining regions answered from coarse MQLA bounds)
    instead of starving the rest of the workload.
    """


class QueryCancelled(ExecutionError):
    """A run was cooperatively cancelled at a region boundary.

    Raised by the driver when the caller-supplied cancellation token
    (see :class:`repro.serving.CancellationToken`) is set.  The check
    runs only between regions, so shared state is always left at a
    consistent region boundary — a journalled run cancelled this way is
    resumable exactly like a crashed one.
    """


class DurabilityError(ExecutionError):
    """On-disk durability state (journal or snapshot) is unusable.

    Covers a missing/foreign journal, a checksum failure that is not a
    clean torn tail, and fingerprint mismatches between the journal and
    the run configuration/inputs it is being replayed against.
    """


class ResumeMismatch(DurabilityError):
    """Deterministic replay diverged from the write-ahead journal.

    The resume protocol re-executes regions recorded after the restored
    snapshot and verifies each completed region against its journal
    record (region id, comparison count, virtual clock, report counts).
    Any difference means the inputs or code changed since the journal
    was written — continuing would silently produce a different run.
    """


class BenchmarkError(ReproError):
    """An experiment configuration is invalid or a harness step failed."""
