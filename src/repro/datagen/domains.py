"""Synthetic domain datasets for the motivating applications.

The paper motivates CAQE with three applications (Section 1.1): a travel
aggregator joining Hotels with Tours, a supply-chain application joining
Retailers with Transporters (Example 14), and a stock-ticker workload.  The
paper's authors used proprietary aggregator feeds; we substitute seeded
synthetic generators that produce relations with the same shapes (see
DESIGN.md §2), which is sufficient because every experiment in the paper
measures algorithmic behaviour, not data provenance.
"""

from __future__ import annotations

import numpy as np

from repro.relation import Attribute, Relation, Role, Schema
from repro.rng import ensure_rng, spawn

CITIES = (
    "Paris", "London", "Rome", "Athens", "Berlin", "Madrid",
    "Vienna", "Prague", "Lisbon", "Amsterdam",
)

COUNTRIES = (
    "Brazil", "China", "Mexico", "Germany", "India", "USA",
    "Japan", "France", "Italy", "Canada",
)

PARTS = (
    "Tires", "Iron Ore", "Brass Sheets", "Dairy Products", "Medical Supplies",
    "Textiles", "Circuit Boards", "Timber", "Solar Panels", "Glassware",
)

TICKERS = (
    "ACME", "GLOBX", "INIT", "HOOLI", "UMBRL", "STARK",
    "WAYNE", "TYREL", "CYBR", "NAKA",
)

HOTEL_SCHEMA = Schema(
    [
        Attribute("hotel_id", Role.PAYLOAD),
        Attribute("city", Role.JOIN),
        Attribute("price", Role.MEASURE),
        Attribute("neg_rating", Role.MEASURE),   # 5 - rating: smaller is better
        Attribute("distance", Role.MEASURE),
        Attribute("wifi_fee", Role.MEASURE),
    ]
)

TOUR_SCHEMA = Schema(
    [
        Attribute("tour_id", Role.PAYLOAD),
        Attribute("city", Role.JOIN),
        Attribute("tour_price", Role.MEASURE),
        Attribute("neg_sights", Role.MEASURE),   # 50 - #sights: smaller is better
        Attribute("duration", Role.MEASURE),
        Attribute("transfer_dist", Role.MEASURE),
    ]
)

RETAILER_SCHEMA = Schema(
    [
        Attribute("retailer_id", Role.PAYLOAD),
        Attribute("country", Role.JOIN),
        Attribute("part", Role.JOIN),
        Attribute("unit_cost", Role.MEASURE),
        Attribute("lead_time", Role.MEASURE),
        Attribute("defect_rate", Role.MEASURE),
    ]
)

TRANSPORTER_SCHEMA = Schema(
    [
        Attribute("transporter_id", Role.PAYLOAD),
        Attribute("country", Role.JOIN),
        Attribute("part", Role.JOIN),
        Attribute("freight_cost", Role.MEASURE),
        Attribute("transit_time", Role.MEASURE),
        Attribute("loss_rate", Role.MEASURE),
    ]
)

QUOTE_SCHEMA = Schema(
    [
        Attribute("quote_id", Role.PAYLOAD),
        Attribute("ticker", Role.JOIN),
        Attribute("price", Role.MEASURE),
        Attribute("volatility", Role.MEASURE),
        Attribute("spread", Role.MEASURE),
    ]
)

SENTIMENT_SCHEMA = Schema(
    [
        Attribute("post_id", Role.PAYLOAD),
        Attribute("ticker", Role.JOIN),
        Attribute("neg_sentiment", Role.MEASURE),  # smaller = more positive
        Attribute("staleness", Role.MEASURE),
        Attribute("source_risk", Role.MEASURE),
    ]
)


def _choice_codes(rng: np.random.Generator, values: tuple[str, ...], n: int) -> np.ndarray:
    return rng.integers(0, len(values), size=n)


def hotels(n: int = 500, *, seed=None) -> Relation:
    """Hotels table (Examples 2–5): city-keyed rows with price/rating/distance/WiFi."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 5)
    return Relation(
        "Hotels",
        HOTEL_SCHEMA,
        {
            "hotel_id": np.arange(n),
            "city": _choice_codes(streams[0], CITIES, n),
            "price": 50.0 + streams[1].random(n) * 450.0,
            "neg_rating": 5.0 - streams[2].integers(1, 6, size=n).astype(float),
            "distance": streams[3].random(n) * 15.0,
            "wifi_fee": streams[4].integers(0, 5, size=n) * 5.0,
        },
    )


def tours(n: int = 500, *, seed=None) -> Relation:
    """Tours table joined to Hotels by city (travel-planner workload)."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 5)
    return Relation(
        "Tours",
        TOUR_SCHEMA,
        {
            "tour_id": np.arange(n),
            "city": _choice_codes(streams[0], CITIES, n),
            "tour_price": 20.0 + streams[1].random(n) * 280.0,
            "neg_sights": 50.0 - streams[2].integers(1, 31, size=n).astype(float),
            "duration": streams[3].integers(1, 11, size=n).astype(float),
            "transfer_dist": streams[4].random(n) * 20.0,
        },
    )


def retailers(n: int = 500, *, seed=None) -> Relation:
    """Retailers table of the supply-chain application (Example 14)."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 5)
    return Relation(
        "Retailers",
        RETAILER_SCHEMA,
        {
            "retailer_id": np.arange(n),
            "country": _choice_codes(streams[0], COUNTRIES, n),
            "part": _choice_codes(streams[1], PARTS, n),
            "unit_cost": 1.0 + streams[2].random(n) * 99.0,
            "lead_time": 1.0 + streams[3].random(n) * 59.0,
            "defect_rate": streams[4].random(n) * 10.0,
        },
    )


def transporters(n: int = 500, *, seed=None) -> Relation:
    """Transporters table of the supply-chain application (Example 14)."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 5)
    return Relation(
        "Transporters",
        TRANSPORTER_SCHEMA,
        {
            "transporter_id": np.arange(n),
            "country": _choice_codes(streams[0], COUNTRIES, n),
            "part": _choice_codes(streams[1], PARTS, n),
            "freight_cost": 1.0 + streams[2].random(n) * 49.0,
            "transit_time": 1.0 + streams[3].random(n) * 29.0,
            "loss_rate": streams[4].random(n) * 5.0,
        },
    )


def quotes(n: int = 500, *, seed=None) -> Relation:
    """Real-time stock quotes (Example 1)."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 4)
    return Relation(
        "Quotes",
        QUOTE_SCHEMA,
        {
            "quote_id": np.arange(n),
            "ticker": _choice_codes(streams[0], TICKERS, n),
            "price": 5.0 + streams[1].random(n) * 995.0,
            "volatility": streams[2].random(n) * 100.0,
            "spread": streams[3].random(n) * 10.0,
        },
    )


def sentiment(n: int = 500, *, seed=None) -> Relation:
    """Aggregated news / blog / social sentiment per ticker (Example 1)."""
    rng = ensure_rng(seed)
    streams = spawn(rng, 4)
    return Relation(
        "Sentiment",
        SENTIMENT_SCHEMA,
        {
            "post_id": np.arange(n),
            "ticker": _choice_codes(streams[0], TICKERS, n),
            "neg_sentiment": streams[1].random(n) * 100.0,
            "staleness": streams[2].random(n) * 48.0,
            "source_risk": streams[3].random(n) * 10.0,
        },
    )


__all__ = [
    "CITIES", "COUNTRIES", "PARTS", "TICKERS",
    "HOTEL_SCHEMA", "TOUR_SCHEMA", "RETAILER_SCHEMA", "TRANSPORTER_SCHEMA",
    "QUOTE_SCHEMA", "SENTIMENT_SCHEMA",
    "hotels", "tours", "retailers", "transporters", "quotes", "sentiment",
]
