"""Benchmark attribute-value distributions for skyline stress testing.

The paper evaluates on the de-facto standard skyline benchmark data of
Börzsönyi et al. [3]: *independent*, *correlated*, and *anti-correlated*
attribute values.  This module reproduces those generators:

* ``independent`` — every dimension uniform and independent.
* ``correlated`` — points cluster around the diagonal: a tuple good in one
  dimension tends to be good in all, so a handful of tuples dominate the
  table and skylines are tiny.
* ``anticorrelated`` — points cluster around an anti-diagonal hyperplane: a
  tuple good in one dimension tends to be bad in others, so a large fraction
  of the table is in the skyline and evaluation is expensive.

Values are real numbers in ``[low, high]`` (paper: ``[1, 100]``) and smaller
values are preferred, matching Section 2.1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.rng import ensure_rng

#: Attribute-value range used by the paper's experiments.
VALUE_LOW = 1.0
VALUE_HIGH = 100.0

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def _validate(cardinality: int, dimensions: int) -> None:
    if cardinality < 0:
        raise ReproError(f"cardinality must be >= 0, got {cardinality}")
    if dimensions < 1:
        raise ReproError(f"dimensions must be >= 1, got {dimensions}")


def _rescale(matrix: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clip to [0, 1] then affinely map onto [low, high]."""
    clipped = np.clip(matrix, 0.0, 1.0)
    return low + clipped * (high - low)


def independent(
    cardinality: int,
    dimensions: int,
    *,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    seed=None,
) -> np.ndarray:
    """Uniform, independent dimensions: ``(cardinality, dimensions)`` floats."""
    _validate(cardinality, dimensions)
    rng = ensure_rng(seed)
    return _rescale(rng.random((cardinality, dimensions)), low, high)


def correlated(
    cardinality: int,
    dimensions: int,
    *,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    spread: float = 0.075,
    seed=None,
) -> np.ndarray:
    """Correlated dimensions (Börzsönyi et al., Appendix A style).

    Each point is a base level ``v`` on the diagonal plus small per-dimension
    jitter, so all dimensions move together.  ``spread`` controls the jitter
    width as a fraction of the value range.
    """
    _validate(cardinality, dimensions)
    rng = ensure_rng(seed)
    base = rng.random(cardinality)
    # Peak the base near the middle so extreme points are rare, as in the
    # original generator's normal-like resampling of the plane position.
    base = (base + rng.random(cardinality)) / 2.0
    jitter = (rng.random((cardinality, dimensions)) - 0.5) * 2.0 * spread
    return _rescale(base[:, None] + jitter, low, high)


def anticorrelated(
    cardinality: int,
    dimensions: int,
    *,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    spread: float = 0.25,
    seed=None,
) -> np.ndarray:
    """Anti-correlated dimensions.

    Points lie near the hyperplane ``sum(values) == dimensions / 2`` (in the
    unit cube): a point good in one dimension is bad in another, which blows
    up skyline sizes exactly as the paper relies on in Figure 9c.
    """
    _validate(cardinality, dimensions)
    rng = ensure_rng(seed)
    if cardinality == 0:
        return np.empty((0, dimensions))
    # Sample on the simplex-like band around the anti-diagonal plane: draw a
    # plane offset concentrated near 0.5, then split it across dimensions.
    plane = 0.5 + (rng.random(cardinality) - 0.5) * 2.0 * spread
    raw = rng.random((cardinality, dimensions))
    row_sum = raw.sum(axis=1)
    # Scale each row so its mean equals the sampled plane position.
    scaled = raw * (plane * dimensions / np.where(row_sum == 0.0, 1.0, row_sum))[:, None]
    return _rescale(scaled, low, high)


def generate(
    distribution: str,
    cardinality: int,
    dimensions: int,
    *,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    seed=None,
) -> np.ndarray:
    """Dispatch by distribution name (one of :data:`DISTRIBUTIONS`)."""
    try:
        factory = {
            "independent": independent,
            "correlated": correlated,
            "anticorrelated": anticorrelated,
        }[distribution]
    except KeyError:
        raise ReproError(
            f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
        ) from None
    return factory(cardinality, dimensions, low=low, high=high, seed=seed)


__all__ = [
    "DISTRIBUTIONS",
    "VALUE_HIGH",
    "VALUE_LOW",
    "anticorrelated",
    "correlated",
    "generate",
    "independent",
]
