"""Benchmark table-pair generation.

The paper's experiments join two tables ``R`` and ``T`` (``|R| = |T| = N``)
whose measure attributes follow one of the three skyline benchmark
distributions, and control the equi-join selectivity sigma in
``[1e-4, 1e-1]``.  For an equi-join over a uniformly distributed integer
attribute with domain size ``D`` on both sides, the expected selectivity is
``1 / D``; :func:`join_domain_size` inverts that relationship.

Each generated table carries:

* ``m1 .. m<dims>``   — measure columns feeding the workload's output
  dimensions (the mapping functions in :mod:`repro.query.mapping` combine
  ``R.mi`` with ``T.mi`` to produce output dimension ``d_i``);
* ``jc1 .. jc<joins>`` — integer join columns, one per join condition in the
  workload (Figure 1 uses two, ``JC1`` and ``JC2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.distributions import VALUE_HIGH, VALUE_LOW, generate
from repro.errors import ReproError
from repro.relation import Attribute, Relation, Role, Schema
from repro.rng import ensure_rng, spawn


def join_domain_size(selectivity: float) -> int:
    """Domain size giving an expected equi-join selectivity of ``selectivity``."""
    if not 0.0 < selectivity <= 1.0:
        raise ReproError(f"selectivity must be in (0, 1], got {selectivity}")
    return max(1, round(1.0 / selectivity))


def measure_names(dims: int) -> tuple[str, ...]:
    return tuple(f"m{i + 1}" for i in range(dims))


def join_names(joins: int) -> tuple[str, ...]:
    return tuple(f"jc{i + 1}" for i in range(joins))


def table_schema(dims: int, joins: int) -> Schema:
    """Schema shared by both benchmark tables."""
    attributes = [Attribute(n, Role.MEASURE) for n in measure_names(dims)]
    attributes += [Attribute(n, Role.JOIN) for n in join_names(joins)]
    return Schema(attributes)


@dataclass(frozen=True, slots=True)
class TablePair:
    """A generated ``(R, T)`` benchmark pair plus its generation parameters."""

    left: Relation
    right: Relation
    distribution: str
    selectivity: float
    dims: int
    joins: int
    seed: int | None = field(default=None)

    @property
    def cardinality(self) -> int:
        return self.left.cardinality


def generate_table(
    name: str,
    distribution: str,
    cardinality: int,
    dims: int,
    *,
    joins: int = 2,
    selectivity: float = 1e-2,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    seed=None,
) -> Relation:
    """Generate a single benchmark table."""
    rng = ensure_rng(seed)
    measure_rng, join_rng = spawn(rng, 2)
    measures = generate(distribution, cardinality, dims, low=low, high=high, seed=measure_rng)
    domain = join_domain_size(selectivity)
    columns: dict[str, np.ndarray] = {
        n: measures[:, i] for i, n in enumerate(measure_names(dims))
    }
    join_streams = spawn(join_rng, max(joins, 1))
    for i, n in enumerate(join_names(joins)):
        columns[n] = join_streams[i].integers(0, domain, size=cardinality)
    return Relation(name, table_schema(dims, joins), columns)


def generate_pair(
    distribution: str,
    cardinality: int,
    dims: int,
    *,
    joins: int = 2,
    selectivity: float = 1e-2,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
    seed=None,
) -> TablePair:
    """Generate the paper's ``(R, T)`` pair with ``|R| = |T| = cardinality``."""
    rng = ensure_rng(seed)
    left_rng, right_rng = spawn(rng, 2)
    left = generate_table(
        "R", distribution, cardinality, dims,
        joins=joins, selectivity=selectivity, low=low, high=high, seed=left_rng,
    )
    right = generate_table(
        "T", distribution, cardinality, dims,
        joins=joins, selectivity=selectivity, low=low, high=high, seed=right_rng,
    )
    return TablePair(
        left=left,
        right=right,
        distribution=distribution,
        selectivity=selectivity,
        dims=dims,
        joins=joins,
        seed=seed if isinstance(seed, int) else None,
    )


__all__ = [
    "TablePair",
    "generate_pair",
    "generate_table",
    "join_domain_size",
    "join_names",
    "measure_names",
    "table_schema",
]
