"""Seeded synthetic dataset generators (benchmark and domain data)."""

from repro.datagen.distributions import (
    DISTRIBUTIONS,
    anticorrelated,
    correlated,
    generate,
    independent,
)
from repro.datagen.tables import TablePair, generate_pair, generate_table

__all__ = [
    "DISTRIBUTIONS",
    "TablePair",
    "anticorrelated",
    "correlated",
    "generate",
    "generate_pair",
    "generate_table",
    "independent",
]
