"""Column-oriented in-memory relations.

A :class:`Relation` stores each attribute as a numpy array, mirroring how
analytical engines lay data out.  All algorithms in this package read
relations through this interface, so the datasets produced by
:mod:`repro.datagen` and the hand-built fixtures in the tests are fully
interchangeable.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import SchemaError
from repro.relation.schema import Attribute, Role, Schema


class Relation:
    """An immutable table: a :class:`Schema` plus one numpy column per attribute."""

    __slots__ = ("name", "schema", "_columns", "_cardinality")

    def __init__(self, name: str, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise SchemaError(
                f"columns do not match schema for relation {name!r}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        arrays: dict[str, np.ndarray] = {}
        cardinality: int | None = None
        for attr_name in schema.names:
            column = np.asarray(columns[attr_name])
            if column.ndim != 1:
                raise SchemaError(f"column {attr_name!r} must be 1-dimensional")
            if cardinality is None:
                cardinality = len(column)
            elif len(column) != cardinality:
                raise SchemaError(
                    f"column {attr_name!r} has {len(column)} rows, expected {cardinality}"
                )
            column.setflags(write=False)
            arrays[attr_name] = column
        self.name = name
        self.schema = schema
        self._columns = arrays
        self._cardinality = int(cardinality or 0)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[tuple],
    ) -> "Relation":
        """Build a relation from an iterable of row tuples (schema order)."""
        materialised = list(rows)
        width = len(schema)
        for row in materialised:
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} has {len(row)} values, schema expects {width}"
                )
        if not materialised:
            columns = {
                attr: np.empty(0, dtype=np.float64) for attr in schema.names
            }
        else:
            columns = {
                attr: np.array([row[pos] for row in materialised])
                for pos, attr in enumerate(schema.names)
            }
        return cls(name, schema, columns)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> np.ndarray:
        self.schema.position(name)  # raise SchemaError on unknown names
        return self._columns[name]

    def columns(self, names: Iterable[str]) -> np.ndarray:
        """Return a read-only ``(cardinality, len(names))`` matrix."""
        stacked = np.column_stack([self.column(n) for n in names])
        stacked.setflags(write=False)
        return stacked

    def row(self, index: int) -> tuple:
        return tuple(self._columns[n][index] for n in self.schema.names)

    def take(self, indices: "np.ndarray | list[int]", name: "str | None" = None) -> "Relation":
        """Row subset as a new relation (used by leaf cells)."""
        idx = np.asarray(indices, dtype=np.intp)
        columns = {n: self._columns[n][idx] for n in self.schema.names}
        return Relation(name or self.name, self.schema, columns)

    @property
    def cardinality(self) -> int:
        return self._cardinality

    def __len__(self) -> int:
        return self._cardinality

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, |rows|={self._cardinality}, {self.schema!r})"


def concat(name: str, relations: "list[Relation]") -> Relation:
    """Vertically concatenate relations sharing one schema."""
    if not relations:
        raise SchemaError("concat needs at least one relation")
    schema = relations[0].schema
    for rel in relations[1:]:
        if rel.schema != schema:
            raise SchemaError("cannot concat relations with differing schemas")
    columns = {
        n: np.concatenate([rel.column(n) for rel in relations]) for n in schema.names
    }
    return Relation(name, schema, columns)


__all__ = ["Relation", "concat", "Schema", "Attribute", "Role"]
