"""Column-oriented relations and schemas."""

from repro.relation.relation import Relation, concat
from repro.relation.schema import Attribute, Role, Schema
from repro.relation.values import unbox

__all__ = ["Attribute", "Relation", "Role", "Schema", "concat", "unbox"]
