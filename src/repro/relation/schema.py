"""Schemas for the column-oriented relations used throughout the package.

A :class:`Schema` is an ordered collection of named :class:`Attribute`
objects.  Attributes are tagged with a *role* so downstream components can
discover, for example, which columns may appear in join predicates
(``JOIN``) and which feed skyline dimensions (``MEASURE``) without the
caller having to repeat that information in every operator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError


class Role(enum.Enum):
    """How an attribute participates in skyline-over-join queries."""

    #: Numeric column that mapping functions / skyline preferences consume.
    MEASURE = "measure"
    #: Discrete column usable in equi-join predicates (cell signatures are
    #: built over these, see Section 5.1 of the paper).
    JOIN = "join"
    #: Carried through untouched (ids, labels, descriptions).
    PAYLOAD = "payload"


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single named column with its query role."""

    name: str
    role: Role = Role.MEASURE

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")


class Schema:
    """An ordered, name-unique collection of attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: "list[Attribute] | tuple[Attribute, ...]"):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        index: dict[str, int] = {}
        for pos, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {type(attr).__name__}")
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            index[attr.name] = pos
        self._attributes = attrs
        self._index = index

    @classmethod
    def of(cls, **roles: Role) -> "Schema":
        """Build a schema from ``name=Role`` keyword pairs, in order."""
        return cls([Attribute(name, role) for name, role in roles.items()])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def names_with_role(self, role: Role) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes if attr.role is role)

    @property
    def measure_names(self) -> tuple[str, ...]:
        return self.names_with_role(Role.MEASURE)

    @property
    def join_names(self) -> tuple[str, ...]:
        return self.names_with_role(Role.JOIN)

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; schema has {self.names}") from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.role.value}" for a in self._attributes)
        return f"Schema({cols})"
