"""Scalar boxing helper shared by the hash-equality join paths.

Numpy scalars hash like their Python counterparts *except* that each NaN
``.item()`` call produces a distinct float object (dict keys never match),
which is exactly the semantics the reference bucket join relies on.  Every
bucket loop in the repo funnels through :func:`unbox` so that contract
lives in one place.
"""

from __future__ import annotations

from typing import Any, Hashable


def unbox(value: Any) -> Hashable:
    """A numpy scalar as its Python equivalent; other values unchanged."""
    return value.item() if hasattr(value, "item") else value


__all__ = ["unbox"]
