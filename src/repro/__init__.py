"""CAQE reproduction: contract-driven processing of concurrent skyline-over-join queries.

Reproduces Raghavan & Rundensteiner, *CAQE: A Contract Driven Approach to
Processing Concurrent Decision Support Queries*, EDBT 2014.  See README.md
for the quickstart and DESIGN.md for the system inventory.

Typical usage::

    from repro import (
        CAQE, CAQEConfig, c1, generate_pair, subspace_workload,
    )

    pair = generate_pair("independent", 500, 4, selectivity=0.02, seed=7)
    workload = subspace_workload(4, priority_scheme="dims_asc")
    contracts = {q.name: c1(deadline=50_000) for q in workload}
    result = CAQE(CAQEConfig()).run(pair.left, pair.right, workload, contracts)
    print(result.average_satisfaction())
"""

from repro.contracts import (
    Contract,
    ResultLog,
    c1,
    c2,
    c3,
    c4,
    c5,
    pscore,
    satisfaction,
    score_workload,
)
from repro.core import CAQE, CAQEConfig, CostModel, RunResult, run_caqe
from repro.datagen import TablePair, generate_pair, generate_table
from repro.durability import resume_continuous, resume_run
from repro.errors import (
    BudgetExhausted,
    DataError,
    DurabilityError,
    QueryCancelled,
    RegionFailure,
    ReproError,
    ResumeMismatch,
)
from repro.query import (
    JoinCondition,
    MappingFunction,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    reference_evaluate,
    subspace_workload,
)
from repro.relation import Attribute, Relation, Role, Schema
from repro.serving import CAQEServer, CancellationToken, Rejected

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BudgetExhausted",
    "CAQE",
    "CAQEConfig",
    "CAQEServer",
    "CancellationToken",
    "Contract",
    "CostModel",
    "DataError",
    "DurabilityError",
    "JoinCondition",
    "MappingFunction",
    "Preference",
    "QueryCancelled",
    "RegionFailure",
    "Rejected",
    "Relation",
    "ReproError",
    "ResultLog",
    "ResumeMismatch",
    "Role",
    "RunResult",
    "Schema",
    "SkylineJoinQuery",
    "TablePair",
    "Workload",
    "add",
    "c1",
    "c2",
    "c3",
    "c4",
    "c5",
    "generate_pair",
    "generate_table",
    "pscore",
    "reference_evaluate",
    "resume_continuous",
    "resume_run",
    "run_caqe",
    "satisfaction",
    "score_workload",
    "subspace_workload",
]
