"""Overload-safe concurrent serving of CAQE workloads.

``python -m repro.serving`` runs a self-contained quickstart demo;
:mod:`repro.serving.server` holds the FIFO server and shared ticket
machinery, :mod:`repro.serving.scheduler` the cross-tenant region
scheduler behind ``server_mode="interleaved"``.  See
docs/ARCHITECTURE.md §10.6 (admission/cancellation state machine) and
§15 (multi-tenant scheduling, brownout ladder, fairness).
"""

from repro.serving.scheduler import (
    POLICY_BENEFIT,
    POLICY_FIFO,
    REASON_BROWNOUT_SHED,
    REASON_BULKHEAD,
    RegionScheduler,
    TenantSpec,
)
from repro.serving.server import (
    ANSWERED,
    CANCELLED,
    CAQEServer,
    CLOSED,
    CancellationToken,
    CircuitBreaker,
    DEGRADED,
    FAILED,
    HALF_OPEN,
    OPEN,
    OUTCOME_BREAKER,
    OUTCOME_BROWNOUT,
    OUTCOME_DEADLINE,
    OUTCOME_POOL,
    REASON_CIRCUIT_OPEN,
    REASON_QUEUE_FULL,
    REASON_SERVER_CLOSED,
    Rejected,
    ServedResult,
    Ticket,
    outcome_reasons,
    workload_signature,
)

__all__ = [
    "ANSWERED",
    "CANCELLED",
    "CAQEServer",
    "CLOSED",
    "CancellationToken",
    "CircuitBreaker",
    "DEGRADED",
    "FAILED",
    "HALF_OPEN",
    "OPEN",
    "OUTCOME_BREAKER",
    "OUTCOME_BROWNOUT",
    "OUTCOME_DEADLINE",
    "OUTCOME_POOL",
    "POLICY_BENEFIT",
    "POLICY_FIFO",
    "REASON_BROWNOUT_SHED",
    "REASON_BULKHEAD",
    "REASON_CIRCUIT_OPEN",
    "REASON_QUEUE_FULL",
    "REASON_SERVER_CLOSED",
    "RegionScheduler",
    "Rejected",
    "ServedResult",
    "TenantSpec",
    "Ticket",
    "outcome_reasons",
    "workload_signature",
]
