"""Overload-safe concurrent serving of CAQE workloads.

``python -m repro.serving`` runs a self-contained quickstart demo;
:mod:`repro.serving.server` holds the implementation.  See
docs/ARCHITECTURE.md §10.6 for the admission/cancellation state machine.
"""

from repro.serving.server import (
    ANSWERED,
    CANCELLED,
    CAQEServer,
    CLOSED,
    CancellationToken,
    CircuitBreaker,
    DEGRADED,
    FAILED,
    HALF_OPEN,
    OPEN,
    REASON_CIRCUIT_OPEN,
    REASON_QUEUE_FULL,
    REASON_SERVER_CLOSED,
    Rejected,
    ServedResult,
    Ticket,
    workload_signature,
)

__all__ = [
    "ANSWERED",
    "CANCELLED",
    "CAQEServer",
    "CLOSED",
    "CancellationToken",
    "CircuitBreaker",
    "DEGRADED",
    "FAILED",
    "HALF_OPEN",
    "OPEN",
    "REASON_CIRCUIT_OPEN",
    "REASON_QUEUE_FULL",
    "REASON_SERVER_CLOSED",
    "Rejected",
    "ServedResult",
    "Ticket",
    "workload_signature",
]
