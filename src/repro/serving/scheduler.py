"""Cross-tenant region scheduling (docs/ARCHITECTURE.md §15).

:class:`RegionScheduler` multiplexes many live submissions over one
engine host at *region* granularity: every admitted submission is opened
as a resumable :class:`~repro.core.caqe.LiveRun`, and each scheduling
step picks exactly one run — across all tenants — to advance by one
region.  The pick extends the paper's Eq. 8/10 benefit model cross-tenant
(:func:`repro.core.benefit.cross_tenant_scores`): each run bids its best
root CSM, scaled by its tenant's fair-share weight, plus a deficit-round-
robin correction that converts owed virtual time into benefit currency so
no tenant starves.

Isolation and overload controls:

* **fair-share weights + deficit accounting** — service is measured in
  virtual time; each step charges the served tenant and credits every
  active tenant its weighted share, so ``deficit = entitled - service``
  is the classic DRR debt;
* **SLO tiers** — tier 0 is never deferred, degraded, or shed; higher
  tiers brown out first;
* **bulkheads** — a per-tenant cap on in-flight submissions bounds the
  blast radius of any one tenant's burst;
* **three-rung brownout ladder** (by total live submissions):
  rung 1 *defers* regions of all but the best live tier, rung 2
  *degrades* the youngest lowest-tier submission to coarse MQLA bounds
  (reason ``"brownout"`` on its :class:`DegradedReport`s), rung 3
  *sheds* new non-tier-0 submissions with an explicit
  :class:`~repro.serving.server.Rejected`;
* **preemption** — cancellation tokens are polled by the engine at
  region boundaries, so a cancel takes effect at the next step of that
  run, never mid-region.

Everything is driven by one shared :class:`~repro.core.clock.VirtualClock`
— deadlines are absolute virtual timestamps, burst plans and replay are
deterministic, and a single-tenant scheduler run is *bit-identical* to
``CAQE.run`` (the equivalence suite pins this).

``policy="fifo"`` drives the identical machinery as a whole-run FIFO
server (always step the oldest submission; no ladder, no bulkheads) —
the load generator's baseline arm.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.core.benefit import TenantOffer, rank_offers
from repro.core.caqe import CAQE, CAQEConfig, LiveRun
from repro.core.clock import VirtualClock
from repro.core.stats import ExecutionStats
from repro.errors import QueryCancelled, ReproError
from repro.robustness.recovery import REASON_BROWNOUT, REASON_DEADLINE
from repro.serving.server import (
    ANSWERED,
    CANCELLED,
    DEGRADED,
    FAILED,
    REASON_QUEUE_FULL,
    REASON_SERVER_CLOSED,
    CancellationToken,
    Rejected,
    ServedResult,
    Ticket,
    outcome_reasons,
    workload_signature,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.contracts.base import Contract
    from repro.query.workload import Workload
    from repro.relation import Relation

#: Additional rejection reasons introduced by the multi-tenant scheduler.
REASON_BULKHEAD = "bulkhead"
REASON_BROWNOUT_SHED = "brownout"

#: Scheduling policies.
POLICY_BENEFIT = "benefit"
POLICY_FIFO = "fifo"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract: fair-share weight, SLO tier,
    bulkhead cap.  Validated eagerly with plain :class:`ValueError`\\ s
    (misconfiguration, not an engine failure)."""

    name: str
    weight: float = 1.0
    tier: int = 1
    max_live: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not (0.0 < float(self.weight) < float("inf")):
            raise ValueError(
                f"tenant weight must be positive and finite, got {self.weight}"
            )
        if self.tier < 0:
            raise ValueError(f"tenant tier must be >= 0, got {self.tier}")
        if self.max_live < 1:
            raise ValueError(
                f"tenant max_live must be >= 1, got {self.max_live}"
            )


@dataclass
class _TenantState:
    """Mutable per-tenant accounting."""

    spec: TenantSpec
    live: int = 0
    service: float = 0.0
    entitled: float = 0.0

    @property
    def deficit(self) -> float:
        """Virtual time this tenant is owed under its fair share."""
        return self.entitled - self.service


@dataclass
class _LiveSub:
    """One admitted, in-flight submission."""

    sid: int
    tenant: str
    tier: int
    weight: float
    ticket: Ticket
    live: LiveRun
    arrival: float
    deadline_abs: "float | None"


class RegionScheduler:
    """Interleaves many live CAQE submissions at region granularity.

    One scheduler owns one immutable pair of base tables, one shared
    virtual clock, and (optionally) one shared region pool.  ``submit``
    may be called from any thread; ``step`` is serialized by the
    scheduler lock and advances exactly one run by one region.  Library
    users drive it with :meth:`drain`; :class:`~repro.serving.server.
    CAQEServer` in ``server_mode="interleaved"`` drives it from a single
    scheduler thread.
    """

    def __init__(
        self,
        left: "Relation",
        right: "Relation",
        config: "CAQEConfig | None" = None,
        *,
        pool: "object | None" = None,
        policy: str = POLICY_BENEFIT,
        on_finish: "Callable[[Ticket, ServedResult, bool], None] | None" = None,
    ) -> None:
        if policy not in (POLICY_BENEFIT, POLICY_FIFO):
            raise ValueError(
                f"unknown policy {policy!r}; expected 'benefit' or 'fifo'"
            )
        self.left = left
        self.right = right
        self.config = config or CAQEConfig()
        self.policy = policy
        self.clock = VirtualClock(cost_model=self.config.cost_model)
        self._lock = threading.RLock()
        self._tenants: "dict[str, _TenantState]" = {}
        self._live: "dict[int, _LiveSub]" = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._on_finish = on_finish
        self._build_caches: "dict[str, dict]" = {}
        self._pool = pool
        self._pool_owned = False
        if pool is None and self.config.workers > 0:
            from repro.parallel import RegionPool

            self._pool = RegionPool(
                left,
                right,
                workers=self.config.workers,
                use_shared_memory=self.config.enable_shared_memory,
                restart_budget=self.config.pool_restart_budget,
                poison_threshold=self.config.pool_poison_threshold,
                kill_plan=self.config.pool_kill_plan,
            )
            self._pool_owned = True
        self.metrics: "dict[str, int]" = {
            "submitted": 0,
            "admitted": 0,
            "rejected_queue_full": 0,
            "rejected_bulkhead": 0,
            "rejected_brownout": 0,
            "rejected_server_closed": 0,
            "answered": 0,
            "degraded": 0,
            "cancelled": 0,
            "failed": 0,
            "steps": 0,
            "brownout_degraded": 0,
        }

    # -- tenants --------------------------------------------------------- #
    def register_tenant(
        self,
        name: str,
        *,
        weight: "float | None" = None,
        tier: "int | None" = None,
        max_live: "int | None" = None,
    ) -> TenantSpec:
        """Declare (or re-declare, while idle) a tenant's serving contract.

        Unregistered tenants are auto-registered at first submit with the
        ``tenant_*`` config defaults.
        """
        cfg = self.config
        spec = TenantSpec(
            name=name,
            weight=cfg.tenant_default_weight if weight is None else weight,
            tier=cfg.tenant_default_tier if tier is None else tier,
            max_live=cfg.tenant_max_live if max_live is None else max_live,
        )
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                self._tenants[name] = _TenantState(spec=spec)
            elif state.live:
                raise ValueError(
                    f"tenant {name!r} has {state.live} live submission(s); "
                    "re-register only while idle"
                )
            else:
                state.spec = spec
        return spec

    def _tenant_state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            self.register_tenant(name)
            state = self._tenants[name]
        return state

    # -- admission ------------------------------------------------------- #
    def submit(
        self,
        workload: "Workload",
        contracts: "dict[str, Contract]",
        *,
        tenant: str = "default",
        deadline: "float | None" = None,
        cancel_token: "CancellationToken | None" = None,
    ) -> "Ticket | Rejected":
        """Admit or shed one submission for ``tenant``.

        ``deadline`` is a *relative* virtual-time allowance from the
        moment of admission (mapped onto an absolute budget on the shared
        clock); it defaults to ``config.server_default_deadline``.
        Admission control runs bottom-up: closed server, brownout shed
        (rung 3, spares tier 0), global queue bound, per-tenant bulkhead.
        """
        cfg = self.config
        if deadline is None:
            deadline = cfg.server_default_deadline
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        with self._lock:
            self.metrics["submitted"] += 1
            if self._closed:
                self.metrics["rejected_server_closed"] += 1
                return Rejected(REASON_SERVER_CLOSED)
            state = self._tenant_state(tenant)
            spec = state.spec
            ladder = self.policy == POLICY_BENEFIT
            if (
                ladder
                and spec.tier > 0
                and len(self._live) >= cfg.tenant_brownout_shed_live
            ):
                self.metrics["rejected_brownout"] += 1
                return Rejected(
                    REASON_BROWNOUT_SHED,
                    f"brownout rung 3: {len(self._live)} live submission(s) "
                    f">= shed threshold {cfg.tenant_brownout_shed_live}",
                )
            if len(self._live) >= cfg.server_queue_limit:
                self.metrics["rejected_queue_full"] += 1
                return Rejected(
                    REASON_QUEUE_FULL,
                    f"admission queue at capacity ({cfg.server_queue_limit})",
                )
            if ladder and state.live >= spec.max_live:
                self.metrics["rejected_bulkhead"] += 1
                return Rejected(
                    REASON_BULKHEAD,
                    f"tenant {tenant!r} at its bulkhead cap "
                    f"({spec.max_live} in-flight submission(s))",
                )
            sid = next(self._ids)
            now = self.clock.now()
            deadline_abs = None
            overrides: "dict[str, Any]" = {}
            if deadline is not None:
                deadline_abs = now + float(deadline)
                overrides["query_time_budget"] = deadline_abs
                overrides["enable_recovery"] = True
            if cfg.enable_journal and cfg.journal_dir:
                overrides["journal_dir"] = os.path.join(
                    cfg.journal_dir, f"sub-{sid:06d}"
                )
            run_cfg = replace(cfg, **overrides) if overrides else cfg
            signature = workload_signature(workload)
            token = cancel_token or CancellationToken()
            ticket = Ticket(
                sid, workload, contracts, deadline, token, signature
            )
            engine = CAQE(run_cfg)
            live = engine.open_run(
                self.left,
                self.right,
                workload,
                contracts,
                ExecutionStats(clock=self.clock),
                cancel_token=token,
                pool=self._pool,
                build_cache=self._build_caches.setdefault(signature, {}),
                budget_reason=REASON_DEADLINE,
            )
            self._live[sid] = _LiveSub(
                sid=sid,
                tenant=tenant,
                tier=spec.tier,
                weight=spec.weight,
                ticket=ticket,
                live=live,
                arrival=now,
                deadline_abs=deadline_abs,
            )
            state.live += 1
            self.metrics["admitted"] += 1
            return ticket

    # -- scheduling ------------------------------------------------------ #
    @property
    def idle(self) -> bool:
        """True iff no submission is in flight."""
        with self._lock:
            return not self._live

    def step(self) -> bool:
        """Advance the serving state by one region (or one brownout
        action).  Returns False iff there was nothing to do."""
        with self._lock:
            if not self._live:
                return False
            self.metrics["steps"] += 1
            if self.policy == POLICY_BENEFIT:
                self._apply_brownout_degrade()
                if not self._live:
                    return True
            sub = self._live[self._pick_sid()]
            before = self.clock.now()
            outcome: "ServedResult | None" = None
            breaker_failure = False
            try:
                sub.live.step()
            except QueryCancelled as exc:
                outcome = ServedResult(CANCELLED, error=str(exc))
            except ReproError as exc:
                outcome = ServedResult(
                    FAILED, error=f"{type(exc).__name__}: {exc}"
                )
                breaker_failure = True
            self._account_service(sub, self.clock.now() - before)
            if outcome is not None:
                self._complete(sub, outcome, breaker_failure)
            elif sub.live.done:
                self._complete(sub)
            return True

    def drain(self) -> int:
        """Step until idle; returns the number of steps taken."""
        steps = 0
        while self.step():
            steps += 1
        return steps

    def _pick_sid(self) -> int:
        """The next submission to advance by one region.

        FIFO policy: the oldest live submission (whole-run serving order,
        since steps repeat until done).  Benefit policy: under brownout
        rung 1 only the best live tier is eligible (work-conserving
        defer); the eligible runs then bid their best root CSM into
        :func:`~repro.core.benefit.rank_offers`.
        """
        subs = list(self._live.values())
        if self.policy == POLICY_FIFO:
            return subs[0].sid
        if len(subs) >= self.config.tenant_brownout_defer_live:
            top = min(s.tier for s in subs)
            eligible = [s for s in subs if s.tier == top]
        else:
            eligible = subs
        if len(eligible) == 1:
            return eligible[0].sid
        offers = [
            TenantOffer(
                tenant=s.tenant,
                csm=s.live.peek_best_csm(),
                weight=s.weight,
                deficit=self._tenants[s.tenant].deficit,
                tier=s.tier,
            )
            for s in eligible
        ]
        best = rank_offers(offers, self.config.tenant_fairness_pressure)[0]
        return eligible[best].sid

    def _account_service(self, sub: _LiveSub, dt: float) -> None:
        """Deficit round robin: charge the served tenant ``dt`` of virtual
        time and credit every tenant with live work its weighted share."""
        if dt <= 0.0:
            return
        self._tenants[sub.tenant].service += dt
        active = [
            self._tenants[name]
            for name in sorted({s.tenant for s in self._live.values()})
        ]
        total = sum(t.spec.weight for t in active)
        if total <= 0.0:
            return
        for state in active:
            state.entitled += dt * (state.spec.weight / total)

    def _apply_brownout_degrade(self) -> None:
        """Brownout rung 2: while the live count sits at or above the
        degrade threshold, answer the youngest lowest-tier submission
        from coarse MQLA bounds (tier 0 is never a victim)."""
        cfg = self.config
        while len(self._live) >= cfg.tenant_brownout_degrade_live:
            victims = [s for s in self._live.values() if s.tier > 0]
            if not victims:
                return
            victim = max(victims, key=lambda s: (s.tier, s.sid))
            victim.live.degrade_all(REASON_BROWNOUT)
            self.metrics["brownout_degraded"] += 1
            self._complete(victim)

    def _complete(
        self,
        sub: _LiveSub,
        outcome: "ServedResult | None" = None,
        breaker_failure: bool = False,
    ) -> None:
        """Retire one finished submission: close resources, classify the
        outcome (with the uniform reason taxonomy), notify, finish."""
        sub.live.close()
        if outcome is None:
            result = sub.live.finalize()
            degraded = any(result.degraded.values())
            quarantined = result.stats.regions_quarantined > 0
            pool_poisoned = "pool" in result.quarantine
            breaker_failure = quarantined or pool_poisoned
            outcome = ServedResult(
                DEGRADED if degraded else ANSWERED,
                result=result,
                reasons=outcome_reasons(
                    result, breaker_failure=breaker_failure
                ),
            )
        del self._live[sub.sid]
        self._tenants[sub.tenant].live -= 1
        self.metrics[outcome.status] += 1
        if self._on_finish is not None:
            self._on_finish(sub.ticket, outcome, breaker_failure)
        sub.ticket._finish(outcome)

    # -- observability --------------------------------------------------- #
    def tenant_report(self) -> "dict[str, dict[str, float]]":
        """Per-tenant fairness snapshot (service, entitlement, deficit)."""
        with self._lock:
            return {
                name: {
                    "weight": float(state.spec.weight),
                    "tier": float(state.spec.tier),
                    "live": float(state.live),
                    "service": float(state.service),
                    "entitled": float(state.entitled),
                    "deficit": float(state.deficit),
                }
                for name, state in sorted(self._tenants.items())
            }

    # -- lifecycle ------------------------------------------------------- #
    def close(self, drain: bool = True) -> None:
        """Stop admitting; by default finish every admitted submission
        (every admission terminates), then release the owned pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain()
        if self._pool_owned and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "RegionScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "POLICY_BENEFIT",
    "POLICY_FIFO",
    "REASON_BULKHEAD",
    "REASON_BROWNOUT_SHED",
    "RegionScheduler",
    "TenantSpec",
]
