"""The overload-safe concurrent serving layer (docs/ARCHITECTURE.md §10.6).

:class:`CAQEServer` turns the single-run engine into a small decision
support service over one fixed pair of base tables:

* **bounded admission** — submissions enter a fixed-size queue drained
  by worker threads; when the queue is full the submission is *shed*
  with an explicit :class:`Rejected` (reason ``"queue_full"``) instead
  of growing an unbounded backlog;
* **deadlines** — a per-submission deadline is mapped onto the engine's
  deterministic virtual-clock budget (``query_time_budget`` with
  ``enable_recovery=True``), so a workload past its deadline finishes
  with degraded MQLA-bound answers rather than running forever;
* **cooperative cancellation** — every admitted submission carries a
  :class:`CancellationToken` polled at region boundaries; cancelling
  mid-run raises :class:`~repro.errors.QueryCancelled` inside the worker
  and the ticket completes with status ``"cancelled"``;
* **circuit breaking** — a per-workload-signature :class:`CircuitBreaker`
  opens after repeated runs that quarantined regions (persistent
  :class:`~repro.errors.RegionFailure` offenders) and sheds further
  submissions of that workload (reason ``"circuit_open"``) until an
  event-count cooldown admits a half-open trial.

Wall clocks are banned in ``src/repro`` (caqe-check rule CQ007), so the
breaker cooldown counts *events* (rejected submissions), not seconds —
the same load that trips a breaker is what eventually re-tests it.

Every admitted submission terminates: answered, degraded, cancelled, or
failed.  Worker threads never hold a lock while running the engine, and
the queue is the only cross-thread handoff, so the server cannot
deadlock on its own primitives.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import weakref
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.core.caqe import CAQE, CAQEConfig, RunResult
from repro.errors import QueryCancelled, ReproError
from repro.robustness.recovery import REASON_BROWNOUT, REASON_DEADLINE

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.contracts.base import Contract
    from repro.query.workload import Workload
    from repro.relation import Relation

#: Ticket states / final statuses.
ANSWERED = "answered"
DEGRADED = "degraded"
CANCELLED = "cancelled"
FAILED = "failed"

#: Rejection reasons.
REASON_QUEUE_FULL = "queue_full"
REASON_CIRCUIT_OPEN = "circuit_open"
REASON_SERVER_CLOSED = "server_closed"

#: Structured outcome-reason taxonomy surfaced on :class:`ServedResult`
#: (uniform across FIFO and interleaved serving — callers never dig
#: through ``RunResult`` internals to classify a degradation).
OUTCOME_DEADLINE = "deadline"
OUTCOME_BROWNOUT = "brownout"
OUTCOME_BREAKER = "breaker"
OUTCOME_POOL = "pool"

#: Bounded-wait tick for worker loops: every blocking primitive in the
#: serving layer carries a timeout (caqe-check rule CQ013) so a lost
#: wakeup can never hang a thread forever.
_WAIT_TICK = 0.1


class CancellationToken:
    """Thread-safe cooperative-cancellation flag.

    The engine polls :meth:`is_cancelled` at every region boundary; the
    duck-typed protocol (any object with ``is_cancelled()``) keeps the
    core free of serving imports.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    def is_cancelled(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class Rejected:
    """A shed submission and the explicit reason it was shed."""

    reason: str
    detail: str = ""

    def __bool__(self) -> bool:  # a rejection is falsy; tickets are truthy
        return False


@dataclass
class ServedResult:
    """Terminal outcome of one admitted submission.

    ``reasons`` classifies non-clean outcomes with the structured
    taxonomy (``"deadline"``, ``"brownout"``, ``"breaker"``, ``"pool"``
    — in that fixed order) so callers branch on it instead of digging
    through :class:`~repro.core.caqe.RunResult` internals.
    """

    status: str
    result: "RunResult | None" = None
    error: str = ""
    reasons: "tuple[str, ...]" = ()

    @property
    def ok(self) -> bool:
        return self.status in (ANSWERED, DEGRADED)


def outcome_reasons(
    result: "RunResult | None", breaker_failure: bool = False
) -> "tuple[str, ...]":
    """Derive the structured reason taxonomy for one terminal outcome.

    * ``"deadline"`` — a virtual deadline expired and part of the answer
      was degraded to MQLA bounds;
    * ``"brownout"`` — the multi-tenant scheduler browned the submission
      out under overload;
    * ``"breaker"`` — the run counts as a circuit-breaker failure for its
      workload signature (quarantined regions / pool poisoning / raised);
    * ``"pool"`` — regions fell back to inline prepare after poisoning
      the shared worker pool.
    """
    reasons: "list[str]" = []
    if result is not None:
        reports = [
            report
            for per_query in result.degraded.values()
            for report in per_query
        ]
        if any(r.reason == REASON_DEADLINE for r in reports):
            reasons.append(OUTCOME_DEADLINE)
        if any(r.reason == REASON_BROWNOUT for r in reports):
            reasons.append(OUTCOME_BROWNOUT)
    if breaker_failure:
        reasons.append(OUTCOME_BREAKER)
    if result is not None and "pool" in result.quarantine:
        reasons.append(OUTCOME_POOL)
    return tuple(reasons)


class Ticket:
    """Handle for one admitted submission (truthy, unlike Rejected)."""

    def __init__(
        self,
        ticket_id: int,
        workload: "Workload",
        contracts: "dict[str, Contract]",
        deadline: "float | None",
        token: CancellationToken,
        signature: str,
    ) -> None:
        self.ticket_id = ticket_id
        self.workload = workload
        self.contracts = contracts
        self.deadline = deadline
        self.token = token
        self.signature = signature
        self._done = threading.Event()
        self._outcome: "ServedResult | None" = None

    def cancel(self) -> None:
        """Request cooperative cancellation (effective at the next region
        boundary, or immediately if the run has not started)."""
        self.token.cancel()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: "float | None" = None) -> ServedResult:
        """Block until the submission reaches a terminal state."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"ticket #{self.ticket_id} not finished within {timeout}s"
            )
        assert self._outcome is not None
        return self._outcome

    def _finish(self, outcome: ServedResult) -> None:
        self._outcome = outcome
        self._done.set()


#: CircuitBreaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Count-based per-workload breaker (no wall clock — CQ007).

    ``threshold`` consecutive failing runs (raised errors or completed
    runs that quarantined regions) open the breaker; while open, each
    shed submission decrements an event cooldown, and when it reaches
    zero the next submission is admitted as a half-open trial.  A
    successful trial closes the breaker; a failing one re-opens it with
    a fresh cooldown.
    """

    threshold: int = 3
    cooldown: int = 8
    state: str = CLOSED
    consecutive_failures: int = 0
    _cooldown_left: int = 0

    def admit(self) -> bool:
        """Decide one submission; mutates cooldown/half-open state."""
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            # One trial in flight: shed everything else meanwhile.
            return False
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self.state = HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.threshold:
            self.state = OPEN
            self._cooldown_left = self.cooldown


#: Signature memo keyed by workload object (workloads are immutable once
#: built); weak keys so retired workloads do not pin their strings.
_signature_cache: "weakref.WeakKeyDictionary[Any, str]" = (
    weakref.WeakKeyDictionary()
)


def workload_signature(workload: "Workload") -> str:
    """Stable identity of a workload for breaker bookkeeping.

    Memoised per workload object: the server recomputes this on every
    submission *and* every completion, and repr-ing each query is by far
    the most expensive part of admission control under load.
    """
    try:
        cached = _signature_cache.get(workload)
    except TypeError:  # unhashable or non-weakrefable stand-in: no memo
        return "|".join(f"{q.name}={q!r}" for q in workload)
    if cached is None:
        cached = "|".join(f"{q.name}={q!r}" for q in workload)
        _signature_cache[workload] = cached
    return cached


_SHUTDOWN = object()


class CAQEServer:
    """Thread-based concurrent serving of CAQE workloads.

    One server owns one immutable pair of base tables; each admitted
    submission runs a full :class:`~repro.core.caqe.CAQE` pass with its
    own stats/clock, so concurrent runs share nothing mutable.
    """

    def __init__(
        self,
        left: "Relation",
        right: "Relation",
        config: "CAQEConfig | None" = None,
    ) -> None:
        self.left = left
        self.right = right
        self.config = config or CAQEConfig()
        self._queue: "queue.Queue[Any]" = queue.Queue(
            maxsize=self.config.server_queue_limit
        )
        self._lock = threading.Lock()
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._ids = itertools.count(1)
        self._closed = False
        self.metrics: "dict[str, int]" = {
            "submitted": 0,
            "admitted": 0,
            "rejected_queue_full": 0,
            "rejected_circuit_open": 0,
            "rejected_server_closed": 0,
            "rejected_bulkhead": 0,
            "rejected_brownout": 0,
            "answered": 0,
            "degraded": 0,
            "cancelled": 0,
            "failed": 0,
            "pool_serial_trips": 0,
            "pool_poisoned_runs": 0,
        }
        # One region pool shared by every submission (docs/ARCHITECTURE.md
        # §11.5): worker processes and the shared-memory relation blocks
        # are paid for once per server, not once per run.  Created before
        # the worker threads so no submission can observe a half-built
        # pool.
        self._pool = None
        if self.config.workers > 0:
            from repro.parallel import RegionPool

            self._pool = RegionPool(
                left,
                right,
                workers=self.config.workers,
                use_shared_memory=self.config.enable_shared_memory,
                restart_budget=self.config.pool_restart_budget,
                poison_threshold=self.config.pool_poison_threshold,
                kill_plan=self.config.pool_kill_plan,
            )
        #: Latched once the shared pool exhausts its restart budget and
        #: trips to serial (degraded) mode — metrics record the event a
        #: single time, after which every run simply prepares inline.
        self._pool_tripped = False
        # Hash-join build tables per workload signature: same relations +
        # same config partition identically, so same-signature submissions
        # reuse each other's build side instead of rebuilding it per run.
        self._build_caches: "dict[str, dict]" = {}
        self._workers: "list[threading.Thread]" = []
        self._scheduler = None
        self._wake = threading.Event()
        if self.config.server_mode == "interleaved":
            # One cross-tenant region scheduler multiplexes every live
            # submission over this server's engine host; a single driver
            # thread steps it.  Deferred import: scheduler.py imports this
            # module's ticket/result types at module scope.
            from repro.serving.scheduler import RegionScheduler

            self._scheduler = RegionScheduler(
                left,
                right,
                self.config,
                pool=self._pool,
                on_finish=self._on_scheduled_finish,
            )
            self._workers = [
                threading.Thread(
                    target=self._driver_loop,
                    name="caqe-server-scheduler",
                    daemon=True,
                )
            ]
        else:
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"caqe-server-worker-{i}",
                    daemon=True,
                )
                for i in range(self.config.server_workers)
            ]
        for worker in self._workers:
            worker.start()

    # -- admission ------------------------------------------------------- #
    def submit(
        self,
        workload: "Workload",
        contracts: "dict[str, Contract]",
        deadline: "float | None" = None,
        cancel_token: "CancellationToken | None" = None,
        *,
        tenant: str = "default",
    ) -> "Ticket | Rejected":
        """Admit or shed one workload submission.

        ``deadline`` is a *virtual-time* budget (the engine has no wall
        clock); it defaults to ``config.server_default_deadline``.
        ``tenant`` selects the fair-share/SLO identity in
        ``server_mode="interleaved"`` (ignored by the FIFO server).
        Returns a :class:`Ticket` (truthy) or a :class:`Rejected`
        (falsy) — callers can branch on truthiness.
        """
        if self._scheduler is not None:
            return self._submit_interleaved(
                workload, contracts, deadline, cancel_token, tenant
            )
        signature = workload_signature(workload)
        with self._lock:
            self.metrics["submitted"] += 1
            if self._closed:
                self.metrics["rejected_server_closed"] += 1
                return Rejected(REASON_SERVER_CLOSED)
            breaker = self._breakers.setdefault(
                signature,
                CircuitBreaker(
                    threshold=self.config.server_breaker_threshold,
                    cooldown=self.config.server_breaker_cooldown,
                ),
            )
            if not breaker.admit():
                self.metrics["rejected_circuit_open"] += 1
                return Rejected(
                    REASON_CIRCUIT_OPEN,
                    f"workload has failed {breaker.consecutive_failures} "
                    "consecutive run(s)",
                )
            ticket = Ticket(
                next(self._ids),
                workload,
                contracts,
                deadline
                if deadline is not None
                else self.config.server_default_deadline,
                cancel_token or CancellationToken(),
                signature,
            )
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                # Load shedding: a half-open trial that cannot even enqueue
                # re-opens its breaker, otherwise breaker state is untouched.
                if breaker.state == HALF_OPEN:
                    breaker.state = OPEN
                    breaker._cooldown_left = breaker.cooldown
                self.metrics["rejected_queue_full"] += 1
                return Rejected(
                    REASON_QUEUE_FULL,
                    f"admission queue at capacity "
                    f"({self.config.server_queue_limit})",
                )
            self.metrics["admitted"] += 1
            return ticket

    def _submit_interleaved(
        self,
        workload: "Workload",
        contracts: "dict[str, Contract]",
        deadline: "float | None",
        cancel_token: "CancellationToken | None",
        tenant: str,
    ) -> "Ticket | Rejected":
        """Interleaved-mode admission: breaker gate here, queue/bulkhead/
        brownout gates in the scheduler.

        The scheduler call runs *outside* the server lock — the driver
        thread acquires scheduler-then-server (completion callbacks), so
        holding server-then-scheduler here would invert the lock order.
        """
        signature = workload_signature(workload)
        with self._lock:
            self.metrics["submitted"] += 1
            if self._closed:
                self.metrics["rejected_server_closed"] += 1
                return Rejected(REASON_SERVER_CLOSED)
            breaker = self._breakers.setdefault(
                signature,
                CircuitBreaker(
                    threshold=self.config.server_breaker_threshold,
                    cooldown=self.config.server_breaker_cooldown,
                ),
            )
            if not breaker.admit():
                self.metrics["rejected_circuit_open"] += 1
                return Rejected(
                    REASON_CIRCUIT_OPEN,
                    f"workload has failed {breaker.consecutive_failures} "
                    "consecutive run(s)",
                )
        outcome = self._scheduler.submit(
            workload,
            contracts,
            tenant=tenant,
            deadline=deadline,
            cancel_token=cancel_token,
        )
        with self._lock:
            if isinstance(outcome, Rejected):
                # A half-open trial the scheduler shed re-opens its
                # breaker (same discipline as the FIFO queue-full path).
                if breaker.state == HALF_OPEN:
                    breaker.state = OPEN
                    breaker._cooldown_left = breaker.cooldown
                key = f"rejected_{outcome.reason}"
                self.metrics[key] = self.metrics.get(key, 0) + 1
            else:
                self.metrics["admitted"] += 1
        if not isinstance(outcome, Rejected):
            self._wake.set()
        return outcome

    # -- worker side ----------------------------------------------------- #
    def _run_config(self, ticket: Ticket) -> CAQEConfig:
        overrides: "dict[str, Any]" = {}
        if ticket.deadline is not None:
            # Deadline -> virtual budget; recovery on so the run degrades
            # to MQLA bounds at the deadline instead of failing loudly.
            overrides["query_time_budget"] = float(ticket.deadline)
            overrides["enable_recovery"] = True
        if self.config.enable_journal and self.config.journal_dir:
            # One journal directory per ticket: concurrent runs must not
            # share an append-only journal file.
            overrides["journal_dir"] = os.path.join(
                self.config.journal_dir, f"ticket-{ticket.ticket_id:06d}"
            )
        return replace(self.config, **overrides) if overrides else self.config

    def _worker_loop(self) -> None:
        while True:
            try:
                # Bounded wait (CQ013): re-check rather than block forever.
                ticket = self._queue.get(timeout=_WAIT_TICK)
            except queue.Empty:
                continue
            if ticket is _SHUTDOWN:
                self._queue.task_done()
                return
            try:
                self._serve(ticket)
            finally:
                self._queue.task_done()

    def _driver_loop(self) -> None:
        """Interleaved mode: single thread stepping the region scheduler.

        Exits once the server is closed *and* the scheduler has drained —
        so ``shutdown(wait=True)`` finishes every admitted submission.
        """
        scheduler = self._scheduler
        while True:
            if scheduler.step():
                continue
            with self._lock:
                if self._closed:
                    return
            # Bounded wait (CQ013) for the next submission.
            self._wake.wait(timeout=_WAIT_TICK)
            self._wake.clear()

    def _on_scheduled_finish(
        self, ticket: "Ticket", outcome: "ServedResult", breaker_failure: bool
    ) -> None:
        """Completion hook the scheduler calls before finishing a ticket:
        breaker bookkeeping and server-level metrics (the scheduler keeps
        its own)."""
        pool_poisoned = (
            outcome.result is not None and "pool" in outcome.result.quarantine
        )
        with self._lock:
            breaker = self._breakers.get(ticket.signature)
            if breaker is not None and outcome.status != CANCELLED:
                if breaker_failure:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            self.metrics[outcome.status] += 1
            if pool_poisoned:
                self.metrics["pool_poisoned_runs"] += 1
            if (
                self._pool is not None
                and not self._pool_tripped
                and self._pool.degraded
            ):
                self._pool_tripped = True
                self.metrics["pool_serial_trips"] += 1

    def _serve(self, ticket: Ticket) -> None:
        if ticket.token.is_cancelled():
            self._finish(ticket, ServedResult(CANCELLED, error="cancelled before start"))
            return
        engine = CAQE(self._run_config(ticket))
        with self._lock:
            build_cache = self._build_caches.setdefault(ticket.signature, {})
        try:
            result = engine.run(
                self.left,
                self.right,
                ticket.workload,
                ticket.contracts,
                cancel_token=ticket.token,
                pool=self._pool,
                build_cache=build_cache,
                # Deadline-driven budgets stamp "deadline" on degraded
                # reports so the reason taxonomy needs no re-derivation.
                budget_reason=REASON_DEADLINE,
            )
        except QueryCancelled as exc:
            self._finish(ticket, ServedResult(CANCELLED, error=str(exc)))
            return
        except ReproError as exc:
            self._finish(
                ticket,
                ServedResult(FAILED, error=f"{type(exc).__name__}: {exc}"),
                breaker_failure=True,
            )
            return
        degraded = any(result.degraded.values())
        quarantined = result.stats.regions_quarantined > 0
        # Pool supervision outcomes (docs/ARCHITECTURE.md §14): a run
        # whose regions poisoned the shared pool counts as a breaker
        # failure for its signature (those regions keep killing worker
        # processes); a pool that exhausted its restart budget has
        # tripped to serial mode for the rest of the server's life —
        # record the trip once.
        pool_poisoned = "pool" in result.quarantine
        with self._lock:
            if pool_poisoned:
                self.metrics["pool_poisoned_runs"] += 1
            if (
                self._pool is not None
                and not self._pool_tripped
                and self._pool.degraded
            ):
                self._pool_tripped = True
                self.metrics["pool_serial_trips"] += 1
        self._finish(
            ticket,
            ServedResult(
                DEGRADED if degraded else ANSWERED,
                result=result,
                reasons=outcome_reasons(
                    result,
                    breaker_failure=quarantined or pool_poisoned,
                ),
            ),
            breaker_failure=quarantined or pool_poisoned,
        )

    def _finish(
        self,
        ticket: Ticket,
        outcome: ServedResult,
        breaker_failure: bool = False,
    ) -> None:
        with self._lock:
            breaker = self._breakers.get(ticket.signature)
            if breaker is not None and outcome.status != CANCELLED:
                # Cancellation says nothing about workload health.
                if breaker_failure:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            self.metrics[outcome.status] += 1
        ticket._finish(outcome)

    # -- observability ---------------------------------------------------- #
    def pool_health(self) -> "dict[str, object] | None":
        """Supervision snapshot of the shared region pool (None = serial
        server).  Counters only — safe to poll from any thread."""
        pool = self._pool
        if pool is None:
            return None
        return pool.health().as_dict()

    # -- lifecycle ------------------------------------------------------- #
    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting, drain in-flight work, and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._scheduler is not None:
            # The driver thread drains the scheduler, then observes
            # _closed and exits; close() afterwards is then a no-op drain
            # that just releases scheduler-owned resources.
            self._wake.set()
            if wait:
                for worker in self._workers:
                    worker.join()
                self._scheduler.close()
        else:
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
            if wait:
                for worker in self._workers:
                    worker.join()
        if wait and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "CAQEServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


__all__ = [
    "ANSWERED",
    "CANCELLED",
    "CAQEServer",
    "CLOSED",
    "CancellationToken",
    "CircuitBreaker",
    "DEGRADED",
    "FAILED",
    "HALF_OPEN",
    "OPEN",
    "OUTCOME_BREAKER",
    "OUTCOME_BROWNOUT",
    "OUTCOME_DEADLINE",
    "OUTCOME_POOL",
    "REASON_CIRCUIT_OPEN",
    "REASON_QUEUE_FULL",
    "REASON_SERVER_CLOSED",
    "Rejected",
    "ServedResult",
    "Ticket",
    "outcome_reasons",
    "workload_signature",
]
