"""Serving-layer quickstart: ``python -m repro.serving``.

Stands up a :class:`~repro.serving.CAQEServer` over a generated table
pair, pushes the paper's Figure-1 workload through it several times
concurrently, and prints each submission's terminal status — including
a deliberately tight deadline (degraded answer) and a cancellation.
``examples/server_demo.py`` is the richer walkthrough with overload
shedding and circuit-breaker behaviour.
"""

from __future__ import annotations

import argparse

from repro.contracts.presets import c2
from repro.core.caqe import CAQEConfig
from repro.datagen import generate_pair
from repro.robustness.chaos import figure1_workload
from repro.serving import CAQEServer, CancellationToken


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="region-pool worker processes shared by all submissions "
        "(0 = serial engine; results are bit-identical either way)",
    )
    parser.add_argument(
        "--mode",
        choices=("fifo", "interleaved"),
        default="fifo",
        help="serving mode: 'fifo' runs whole submissions back to back, "
        "'interleaved' multiplexes live submissions region by region "
        "under the cross-tenant benefit scheduler",
    )
    args = parser.parse_args(argv)

    pair = generate_pair("independent", 120, 4, selectivity=0.05, seed=23)
    workload = figure1_workload()
    contracts = {q.name: c2(scale=100.0) for q in workload}

    config = CAQEConfig(
        server_mode=args.mode,
        server_workers=2,
        server_queue_limit=4,
        workers=args.workers,
    )
    with CAQEServer(pair.left, pair.right, config) as server:
        normal = server.submit(workload, contracts)
        tight = server.submit(workload, contracts, deadline=5_000.0)
        token = CancellationToken()
        doomed = server.submit(workload, contracts, cancel_token=token)
        token.cancel()

        for label, ticket in (
            ("normal   ", normal),
            ("deadline ", tight),
            ("cancelled", doomed),
        ):
            if not ticket:
                print(f"{label}: rejected ({ticket.reason})")
                continue
            outcome = ticket.result(timeout=120)
            line = f"{label}: {outcome.status}"
            if outcome.result is not None:
                reported = sum(len(v) for v in outcome.result.reported.values())
                line += (
                    f"  reported={reported}"
                    f"  degraded_reports={outcome.result.stats.degraded_reports}"
                    f"  t={outcome.result.horizon:g}"
                )
            if outcome.error:
                line += f"  ({outcome.error})"
            print(line)
        print("metrics:", {k: v for k, v in server.metrics.items() if v})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
