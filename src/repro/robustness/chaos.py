"""Fault-matrix chaos smoke: ``python -m repro.robustness.chaos --smoke``.

Runs the paper's Figure-1 workload through a matrix of fault corners and
checks the robustness layer's contract on each:

* **noop** — robustness switches on, no faults: bit-identical to the
  baseline engine (trace, charged comparisons, virtual clock, reported
  identity sets);
* **corrupt** — corrupted inputs + sanitizer: the reported answer equals
  the reference skyline of the *sanitized* tables (quarantine exactly
  absorbs the corruption);
* **failures** — transient + persistent region failures under recovery:
  the run completes, every query is answered, quarantined regions yield
  degraded reports;
* **stragglers+budget** — virtual-clock stragglers force the per-query
  budget to lapse: degradation fires and every query still receives a
  complete (degraded-flagged) answer;
* **everything** — all of the above at once, executed twice to prove
  determinism under identical fault seeds.

With ``--journal`` every fault corner additionally runs under the
write-ahead region journal (a fresh scratch directory per run) while the
baseline stays plain — so the noop invariant then also proves
journal-on == journal-off bit-identity under every fault corner, and the
determinism invariant proves journalled runs replay identically.

Any violated invariant prints a ``FAIL`` line and the process exits 1 —
the shape CI's ``chaos`` job consumes.
"""

from __future__ import annotations

import argparse
import dataclasses
import tempfile

from repro.contracts.presets import c2
from repro.core.caqe import CAQE, CAQEConfig, RunResult
from repro.query import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    add,
    reference_evaluate,
)
from repro.query.workload import Workload
from repro.datagen import generate_pair
from repro.robustness.faults import FaultConfig, FaultPlan, WorkerKillPlan
from repro.robustness.recovery import RetryPolicy
from repro.robustness.sanitize import sanitize_relation


def figure1_workload() -> Workload:
    """The paper's running example: Q1..Q4 over output dims d1..d4."""
    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
    return Workload(
        [
            SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )


def _observables(result: RunResult) -> "tuple[object, ...]":
    """Everything that must match between two same-seed runs."""
    return (
        result.stats.region_trace,
        result.stats.skyline_comparisons,
        result.stats.elapsed,
        result.reported,
        result.degraded,
        result.stats.summary(),
    )


class _Checker:
    """Collects pass/fail lines so one bad corner doesn't hide the rest."""

    def __init__(self) -> None:
        self.failures: "list[str]" = []

    def check(self, ok: bool, label: str) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            self.failures.append(label)


def run_matrix(
    seed: int,
    cardinality: int,
    checker: _Checker,
    journal: bool = False,
    workers: int = 0,
) -> None:
    """Run every fault corner for one seed and record its invariants.

    ``workers`` routes every *fault corner* through the deterministic
    region pool (docs/ARCHITECTURE.md §11) while the baseline stays
    serial, so each invariant doubles as a parallel==serial check.
    """
    print(
        f"seed {seed}{' (journaled)' if journal else ''}"
        f"{f' (workers={workers})' if workers else ''}:"
    )
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=0.05, seed=seed
    )
    workload = figure1_workload()
    contracts = {q.name: c2(scale=100.0) for q in workload}

    def execute(config: CAQEConfig) -> RunResult:
        if workers:
            config = dataclasses.replace(config, workers=workers)
        if not journal:
            return CAQE(config).run(
                pair.left, pair.right, workload, contracts
            )
        with tempfile.TemporaryDirectory(prefix="caqe-chaos-") as scratch:
            journaled = dataclasses.replace(
                config, enable_journal=True, journal_dir=scratch
            )
            return CAQE(journaled).run(
                pair.left, pair.right, workload, contracts
            )

    # The baseline always runs plain: under --journal the noop invariant
    # below then proves journal-on == journal-off bit-identity.
    baseline = CAQE(CAQEConfig()).run(
        pair.left, pair.right, workload, contracts
    )

    # noop: switches on, no faults -> bit-identical to baseline.
    noop = execute(CAQEConfig(enable_sanitize=True, enable_recovery=True))
    checker.check(
        _observables(noop) == _observables(baseline),
        "noop corner is bit-identical to the baseline engine",
    )

    # corrupt: sanitizer absorbs injected corruption exactly.
    corrupt_plan = FaultPlan(FaultConfig(seed=seed, corrupt_fraction=0.05))
    corrupted = execute(
        CAQEConfig(enable_sanitize=True, fault_plan=corrupt_plan)
    )
    clean_left, _ = sanitize_relation(
        corrupt_plan.corrupt_relation(pair.left, 0)[0]
    )
    clean_right, _ = sanitize_relation(
        corrupt_plan.corrupt_relation(pair.right, 1)[0]
    )
    reference_ok = all(
        corrupted.reported[q.name]
        == reference_evaluate(q, clean_left, clean_right).skyline_pairs
        for q in workload
    )
    checker.check(
        corrupted.stats.tuples_quarantined > 0,
        "corruption corner quarantines tuples",
    )
    checker.check(
        reference_ok,
        "corruption corner matches the sanitized-table reference skyline",
    )

    # failures: recovery retries/quarantines but answers everyone.
    failure_plan = FaultPlan(
        FaultConfig(
            seed=seed,
            region_failure_rate=0.15,
            persistent_failure_rate=0.05,
        )
    )
    failed = execute(
        CAQEConfig(
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=failure_plan,
        )
    )
    checker.check(
        failed.stats.region_retries > 0,
        "failure corner exercises the retry path",
    )
    checker.check(
        _answered_everywhere(failed, workload),
        "failure corner leaves no query unanswered",
    )
    checker.check(
        _no_duplicate_reports(failed, workload),
        "failure corner reports no duplicate identities",
    )

    # stragglers + budget: degradation fires, answers stay complete.
    straggler_plan = FaultPlan(
        FaultConfig(seed=seed, straggler_rate=0.3, straggler_factor=6.0)
    )
    budget_config = CAQEConfig(
        enable_recovery=True,
        fault_plan=straggler_plan,
        query_time_budget=float(cardinality) * 150.0,
    )
    degraded_run = execute(budget_config)
    checker.check(
        _answered_everywhere(degraded_run, workload),
        "budget corner leaves no query unanswered",
    )

    # everything, twice: determinism under identical fault seeds.
    chaos_plan = FaultPlan(
        FaultConfig(
            seed=seed,
            corrupt_fraction=0.04,
            region_failure_rate=0.1,
            persistent_failure_rate=0.04,
            straggler_rate=0.2,
            straggler_factor=4.0,
        )
    )
    chaos_config = CAQEConfig(
        enable_sanitize=True,
        enable_recovery=True,
        fault_plan=chaos_plan,
        query_time_budget=float(cardinality) * 400.0,
    )
    first = execute(chaos_config)
    second = execute(chaos_config)
    checker.check(
        _observables(first) == _observables(second),
        "chaos corner replays identically under the same fault seed",
    )
    checker.check(
        _answered_everywhere(first, workload),
        "chaos corner leaves no query unanswered",
    )
    checker.check(
        _no_duplicate_reports(first, workload),
        "chaos corner reports no duplicate identities",
    )


def run_kill_matrix(
    seed: int,
    cardinality: int,
    checker: _Checker,
    workers: int,
) -> None:
    """Process-level chaos: seeded worker kills under the region pool.

    The supervision contract (docs/ARCHITECTURE.md §14) is that crashed
    workers, requeues, respawns, poisoned regions and the degraded-mode
    fallback cost wall-clock time only — so every scenario here must
    match the ``workers=0`` serial reference bit for bit, while the
    health snapshot proves the supervisor actually did the work.
    """
    print(f"seed {seed} (kill-workers, workers={workers}):")
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=0.05, seed=seed
    )
    workload = figure1_workload()
    contracts = {q.name: c2(scale=100.0) for q in workload}

    def execute(config: CAQEConfig) -> RunResult:
        return CAQE(config).run(pair.left, pair.right, workload, contracts)

    reference = execute(CAQEConfig(workers=0))
    obs = _observables(reference)

    # no-fault: pool on, no kill plan -> healthy counters, identical run.
    healthy = execute(CAQEConfig(workers=workers))
    health = healthy.stats.pool_health or {}
    checker.check(
        _observables(healthy) == obs,
        "healthy pool is bit-identical to the serial engine",
    )
    checker.check(
        health.get("restarts") == 0
        and health.get("requeues") == 0
        and health.get("poison_regions") == 0,
        "healthy pool reports zero supervision activity",
    )

    # seeded kills: worker 0 always dies on its first claim, others by
    # coin flip -> requeue + respawn fire, observables still identical.
    killed = execute(
        CAQEConfig(
            workers=workers,
            pool_kill_plan=WorkerKillPlan.seeded(seed, workers),
        )
    )
    health = killed.stats.pool_health or {}
    checker.check(
        _observables(killed) == obs,
        "seeded worker kills leave every observable bit-identical",
    )
    checker.check(
        bool(health.get("restarts")) and bool(health.get("requeues")),
        "seeded kills exercise requeue and respawn",
    )

    # total loss: every worker (respawns included) dies on its first
    # claim; the budget runs out and the pool degrades to pure serial.
    dead = execute(
        CAQEConfig(
            workers=workers,
            pool_restart_budget=workers,
            pool_kill_plan=WorkerKillPlan(kill_all_after=1),
        )
    )
    health = dead.stats.pool_health or {}
    checker.check(
        _observables(dead) == obs,
        "all-workers-dead run completes bit-identically (degraded mode)",
    )
    checker.check(
        health.get("degraded") is True and health.get("workers_alive") == 0,
        "restart-budget exhaustion trips the pool to serial mode",
    )

    # poison region: the serial trace's first region kills every host
    # that claims it until the threshold quarantines it to inline prepare.
    target = reference.stats.region_trace[0]
    poisoned = execute(
        CAQEConfig(
            workers=workers,
            pool_restart_budget=2 * workers + 2,
            pool_kill_plan=WorkerKillPlan(poison_regions=(target,)),
        )
    )
    health = poisoned.stats.pool_health or {}
    checker.check(
        _observables(poisoned) == obs,
        "poison-region run stays bit-identical via inline fallback",
    )
    checker.check(
        bool(health.get("poison_regions"))
        and "pool" in poisoned.quarantine,
        "worker-killer region is quarantined and reported",
    )


def _answered_everywhere(result: RunResult, workload: Workload) -> bool:
    """Every query got tuple-level results and/or degraded-flagged bounds."""
    return all(
        bool(result.reported[q.name]) or result.is_degraded(q.name)
        for q in workload
    )


def _no_duplicate_reports(result: RunResult, workload: Workload) -> bool:
    """Progressive report streams never repeat an identity."""
    for q in workload:
        keys = result.logs[q.name].keys
        if len(keys) != len(set(keys)):
            return False
    return True


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.robustness.chaos",
        description="CAQE fault-matrix chaos smoke suite",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small cardinality for CI (the default run is also modest)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[11, 23, 47],
        help="fault/base seeds to sweep (default: 11 23 47)",
    )
    parser.add_argument(
        "--cardinality",
        type=int,
        default=None,
        help="rows per base table (default: 80 with --smoke, 150 without)",
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="run every fault corner under the write-ahead region "
        "journal (baseline stays plain, proving on==off bit-identity)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run every fault corner through the deterministic region "
        "pool with this many worker processes (baseline stays serial, "
        "proving parallel==serial bit-identity)",
    )
    parser.add_argument(
        "--kill-workers",
        action="store_true",
        help="process-level chaos instead of the fault matrix: seeded "
        "SIGKILLs of pool workers (requeue/respawn), total worker loss "
        "(degraded-mode fallback) and a poison region, each proven "
        "bit-identical to the serial engine (uses --workers, default 2)",
    )
    args = parser.parse_args(argv)
    cardinality = args.cardinality or (80 if args.smoke else 150)

    checker = _Checker()
    for seed in args.seeds:
        if args.kill_workers:
            run_kill_matrix(
                seed, cardinality, checker, workers=args.workers or 2
            )
        else:
            run_matrix(
                seed,
                cardinality,
                checker,
                journal=args.journal,
                workers=args.workers,
            )
    if checker.failures:
        print(f"chaos: {len(checker.failures)} invariant(s) violated")
        return 1
    print("chaos: all invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
