"""Fault tolerance for the CAQE engine (docs/ARCHITECTURE.md §9).

Three cooperating pieces, all default-off and bit-identical when disabled:

* :mod:`repro.robustness.faults` — deterministic, seeded fault injection
  (corrupted inputs, region-executor exceptions, virtual-clock
  stragglers) for chaos testing;
* :mod:`repro.robustness.sanitize` — input validation that quarantines
  NaN/inf/out-of-domain tuples before they poison dominance tests;
* :mod:`repro.robustness.recovery` — region retry with capped exponential
  backoff, quarantine of repeatedly-failing regions, and contract-aware
  graceful degradation from coarse MQLA bounds.

``python -m repro.robustness.chaos --smoke`` runs the fault-matrix smoke
suite CI uses.
"""

from repro.robustness.faults import (
    CORRUPTION_KINDS,
    FaultConfig,
    FaultPlan,
    InjectedFault,
    TenantBurstPlan,
    WorkerKillPlan,
)
from repro.robustness.recovery import (
    DegradedReport,
    RegionSupervisor,
    RetryPolicy,
)
from repro.robustness.sanitize import (
    DEFAULT_DOMAIN_LIMIT,
    QuarantinedTuple,
    QuarantineReport,
    sanitize_relation,
)

__all__ = [
    "CORRUPTION_KINDS",
    "DEFAULT_DOMAIN_LIMIT",
    "DegradedReport",
    "FaultConfig",
    "FaultPlan",
    "InjectedFault",
    "QuarantineReport",
    "QuarantinedTuple",
    "RegionSupervisor",
    "RetryPolicy",
    "TenantBurstPlan",
    "WorkerKillPlan",
    "sanitize_relation",
]
