"""Deterministic fault injection for chaos testing the CAQE engine.

A :class:`FaultPlan` is a pure function from *(seed, injection site)* to a
fault decision: two runs configured with the same seed replay the exact
same fault schedule, so chaos tests can assert bit-identical traces under
failure.  Three injection points are modelled:

* **corrupted input vectors** — a seeded subset of base-table rows gets a
  measure overwritten with ``NaN``, ``±inf``, or an out-of-domain value
  (what an upstream feed glitch looks like to the engine);
* **region-executor exceptions** — tuple-level evaluation of a chosen
  region raises :class:`~repro.errors.RegionFailure` at entry (before any
  shared-plan mutation, so a retry is a clean re-execution);
* **simulated stragglers** — a region's tuple-level work is charged a
  virtual-clock multiplier, modelling a slow partition without touching
  the algorithm (Beame et al.'s skew-dominated tail latency).

Decisions are *order independent*: each is derived by hashing the seed
with the injection site's stable identifiers (region id, attempt number,
relation side) through a SplitMix64 finaliser and feeding the result to
:func:`repro.rng.ensure_rng`.  Retrying regions in a different order
therefore never shifts any other region's fate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.relation import Relation
from repro.rng import ensure_rng

_MASK64 = (1 << 64) - 1
#: Stable small codes for each injection site (mixed into the hash).
_SITE_CORRUPT = 1
_SITE_REGION_FAIL = 2
_SITE_PERSISTENT = 3
_SITE_STRAGGLER = 4
_SITE_WORKER_KILL = 5
_SITE_TENANT_BURST = 6

#: Corruption kinds cycled through by :meth:`FaultPlan.corrupt_relation`.
CORRUPTION_KINDS: "tuple[str, ...]" = ("nan", "posinf", "neginf", "domain")


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: avalanche one 64-bit integer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _derive_seed(seed: int, *parts: int) -> int:
    """Deterministic child seed for one injection site."""
    acc = _mix64(seed ^ 0x9E3779B97F4A7C15)
    for part in parts:
        acc = _mix64(acc ^ _mix64(part))
    return acc


@dataclass(frozen=True)
class InjectedFault:
    """One corruption applied to a base table (for audit trails)."""

    relation: str
    row: int
    attribute: str
    kind: str


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes of the deterministic fault schedule."""

    #: Master seed; identical seeds replay identical fault schedules.
    seed: int = 0
    #: Fraction of each table's rows that get one corrupted measure.
    corrupt_fraction: float = 0.0
    #: Per-(region, attempt) probability of a transient executor failure.
    region_failure_rate: float = 0.0
    #: Per-region probability of failing *every* attempt (forces the
    #: recovery layer down the quarantine path).
    persistent_failure_rate: float = 0.0
    #: Per-region probability of being a straggler.
    straggler_rate: float = 0.0
    #: Virtual-clock multiplier applied to a straggler region's work.
    straggler_factor: float = 4.0
    #: Magnitude written by the "domain" corruption kind (must exceed the
    #: sanitizer's domain limit to be caught).
    domain_violation_value: float = 1e12

    def validate(self) -> None:
        for name in (
            "corrupt_fraction",
            "region_failure_rate",
            "persistent_failure_rate",
            "straggler_rate",
        ):
            rate = float(getattr(self, name))
            if not 0.0 <= rate <= 1.0:
                raise ExecutionError(
                    f"fault rate {name!r} must lie in [0, 1], got {rate}"
                )
        if self.straggler_factor < 1.0:
            raise ExecutionError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, order-independent fault schedule (see module docstring)."""

    config: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        self.config.validate()

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True iff any injection point can ever fire."""
        cfg = self.config
        return (
            cfg.corrupt_fraction > 0.0
            or cfg.region_failure_rate > 0.0
            or cfg.persistent_failure_rate > 0.0
            or cfg.straggler_rate > 0.0
        )

    def _uniform(self, site: int, *parts: int) -> float:
        rng = ensure_rng(_derive_seed(self.config.seed, site, *parts))
        return float(rng.random())

    # -- corrupted inputs ---------------------------------------------- #
    def corrupt_relation(
        self, relation: Relation, side_code: int
    ) -> "tuple[Relation, list[InjectedFault]]":
        """Corrupt a seeded subset of ``relation``'s measure values.

        Returns the (possibly new) relation plus an audit list; with a
        zero ``corrupt_fraction`` the input object is returned unchanged
        so disabled runs stay bit-identical.
        """
        cfg = self.config
        n = relation.cardinality
        measures = relation.schema.measure_names
        count = int(round(cfg.corrupt_fraction * n))
        if count == 0 or not measures:
            return relation, []
        rng = ensure_rng(_derive_seed(cfg.seed, _SITE_CORRUPT, side_code))
        rows = np.sort(rng.choice(n, size=min(count, n), replace=False))
        attr_picks = rng.integers(0, len(measures), size=len(rows))
        kind_picks = rng.integers(0, len(CORRUPTION_KINDS), size=len(rows))
        columns = {
            name: np.array(relation.column(name), copy=True)
            for name in relation.schema.names
        }
        injected: "list[InjectedFault]" = []
        for row, a_pick, k_pick in zip(
            rows.tolist(), attr_picks.tolist(), kind_picks.tolist()
        ):
            attribute = measures[a_pick]
            kind = CORRUPTION_KINDS[k_pick]
            column = columns[attribute]
            if not np.issubdtype(column.dtype, np.floating):
                column = column.astype(float)
                columns[attribute] = column
            if kind == "nan":
                column[row] = np.nan
            elif kind == "posinf":
                column[row] = np.inf
            elif kind == "neginf":
                column[row] = -np.inf
            else:
                column[row] = cfg.domain_violation_value
            injected.append(
                InjectedFault(relation.name, row, attribute, kind)
            )
        return Relation(relation.name, relation.schema, columns), injected

    def corrupt_pair(
        self, left: Relation, right: Relation
    ) -> "tuple[Relation, Relation, list[InjectedFault]]":
        """Corrupt both base tables (side codes 0 and 1)."""
        new_left, faults_left = self.corrupt_relation(left, 0)
        new_right, faults_right = self.corrupt_relation(right, 1)
        return new_left, new_right, faults_left + faults_right

    # -- region failures ----------------------------------------------- #
    def region_fails(self, region_id: int, attempt: int) -> bool:
        """Should tuple-level processing of this attempt raise?"""
        cfg = self.config
        if cfg.persistent_failure_rate > 0.0 and (
            self._uniform(_SITE_PERSISTENT, region_id)
            < cfg.persistent_failure_rate
        ):
            return True
        if cfg.region_failure_rate <= 0.0:
            return False
        return (
            self._uniform(_SITE_REGION_FAIL, region_id, attempt)
            < cfg.region_failure_rate
        )

    # -- stragglers ----------------------------------------------------- #
    def straggler_factor_for(self, region_id: int) -> float:
        """Virtual-clock multiplier for one region (1.0 = on time)."""
        cfg = self.config
        if cfg.straggler_rate <= 0.0:
            return 1.0
        if self._uniform(_SITE_STRAGGLER, region_id) < cfg.straggler_rate:
            return float(cfg.straggler_factor)
        return 1.0


@dataclass(frozen=True)
class WorkerKillPlan:
    """Process-level chaos: deterministic worker-kill triggers (§14.6).

    Unlike :class:`FaultPlan` (whose decisions the *driver* consults),
    kill triggers fire **worker-side**: a worker announces its task claim
    on the pool's claim channel and then hard-kills its own process
    (``SIGKILL`` — no cleanup, no goodbye), which is exactly what an OOM
    kill or segfault looks like to the supervisor.  Because each trigger
    is a pure function of ``(worker_id, that worker's own claim count)``
    or of the claimed region id, the schedule is independent of OS
    scheduling jitter: the same plan kills the same workers at the same
    points in their individual task streams on every run.

    The supervision contract (docs/ARCHITECTURE.md §14) is that none of
    this may move an observable: requeue, respawn, poison quarantine and
    degraded-mode fallback only cost wall-clock time, so a run under any
    kill plan stays bit-identical to the serial engine —
    ``tools/kill_worker_audit.py`` proves it with real SIGKILLs.
    """

    #: ``(worker_id, nth_claim)`` pairs: that worker dies when claiming
    #: its nth task.  Worker ids continue past the initial pool size as
    #: respawns arrive, so a plan can also target replacement workers.
    kills: "tuple[tuple[int, int], ...]" = ()
    #: Region ids whose claim kills *any* worker — the poison-region
    #: scenario (a task that takes down every process that touches it).
    poison_regions: "tuple[int, ...]" = ()
    #: Every worker — including respawns — dies when claiming its nth
    #: task.  With a finite restart budget this reaches "all workers
    #: dead" and forces the degraded-mode (inline/serial) fallback.
    kill_all_after: "int | None" = None

    def __post_init__(self) -> None:
        for _, nth in self.kills:
            if nth < 1:
                raise ExecutionError(
                    f"kill trigger counts must be >= 1, got {nth}"
                )
        if self.kill_all_after is not None and self.kill_all_after < 1:
            raise ExecutionError(
                f"kill_all_after must be >= 1, got {self.kill_all_after}"
            )

    @property
    def active(self) -> bool:
        """True iff any worker can ever be killed by this plan."""
        return bool(
            self.kills or self.poison_regions or self.kill_all_after
        )

    def kill_after_for(self, worker_id: int) -> "int | None":
        """Claim count at which ``worker_id`` dies (``None`` = never)."""
        for wid, nth in self.kills:
            if wid == worker_id:
                return nth
        return self.kill_all_after

    @classmethod
    def seeded(cls, seed: int, workers: int) -> "WorkerKillPlan":
        """A seeded plan over ``workers`` initial processes.

        Worker 0 always dies on its first claim — every seeded plan
        therefore exercises requeue and respawn deterministically — and
        each further worker dies early in its task stream with
        probability one half, derived through the same SplitMix64 /
        :func:`~repro.rng.ensure_rng` discipline as the other injection
        sites (order-independent, replayable).
        """
        if workers < 1:
            raise ExecutionError(
                f"a seeded kill plan needs workers >= 1, got {workers}"
            )
        kills: "list[tuple[int, int]]" = [(0, 1)]
        for wid in range(1, workers):
            rng = ensure_rng(_derive_seed(seed, _SITE_WORKER_KILL, wid))
            if rng.random() < 0.5:
                kills.append((wid, int(rng.integers(1, 4))))
        return cls(kills=tuple(kills))


@dataclass(frozen=True)
class TenantBurstPlan:
    """Serving-layer chaos: deterministic per-tenant arrival bursts (§15.4).

    The multi-tenant load generator consults this plan to modulate each
    synthetic tenant's arrival rate over *virtual* time: a seeded subset
    of tenants flips between quiet and bursting on a duty-cycled square
    wave, with a per-tenant phase offset so bursts collide rather than
    synchronise.  Every decision is a pure function of ``(seed,
    tenant_id)`` plus the queried virtual timestamp — same SplitMix64 /
    :func:`~repro.rng.ensure_rng` discipline as the other injection
    sites — so two runs at one seed replay the identical burst schedule
    regardless of completion interleaving.
    """

    #: Master seed; identical seeds replay identical burst schedules.
    seed: int = 0
    #: Fraction of tenants that burst at all.
    burst_fraction: float = 0.5
    #: Arrival-rate multiplier while a tenant is bursting (its closed-loop
    #: think time is divided by this).
    burst_factor: float = 4.0
    #: Virtual-time length of one quiet/burst cycle.
    burst_period: float = 2000.0
    #: Fraction of each cycle spent bursting.
    burst_duty: float = 0.3

    def __post_init__(self) -> None:
        for name in ("burst_fraction", "burst_duty"):
            rate = float(getattr(self, name))
            if not 0.0 <= rate <= 1.0:
                raise ExecutionError(
                    f"{name} must lie in [0, 1], got {rate}"
                )
        if self.burst_factor < 1.0:
            raise ExecutionError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_period <= 0.0:
            raise ExecutionError(
                f"burst_period must be positive, got {self.burst_period}"
            )

    @property
    def active(self) -> bool:
        """True iff any tenant can ever burst."""
        return (
            self.burst_fraction > 0.0
            and self.burst_duty > 0.0
            and self.burst_factor > 1.0
        )

    def is_bursty(self, tenant_id: int) -> bool:
        """Does this tenant ever burst?  (Seeded per-tenant coin.)"""
        if self.burst_fraction <= 0.0:
            return False
        rng = ensure_rng(
            _derive_seed(self.seed, _SITE_TENANT_BURST, tenant_id, 0)
        )
        return float(rng.random()) < self.burst_fraction

    def rate_multiplier(self, tenant_id: int, virtual_time: float) -> float:
        """Arrival-rate multiplier for ``tenant_id`` at ``virtual_time``.

        1.0 while quiet; ``burst_factor`` during the burst phase of the
        tenant's (phase-shifted) duty cycle.
        """
        if not self.active or not self.is_bursty(tenant_id):
            return 1.0
        rng = ensure_rng(
            _derive_seed(self.seed, _SITE_TENANT_BURST, tenant_id, 1)
        )
        phase_offset = float(rng.random())
        phase = (virtual_time / self.burst_period + phase_offset) % 1.0
        return float(self.burst_factor) if phase < self.burst_duty else 1.0


__all__ = [
    "CORRUPTION_KINDS",
    "FaultConfig",
    "FaultPlan",
    "InjectedFault",
    "TenantBurstPlan",
    "WorkerKillPlan",
]
