"""Input sanitisation: quarantine corrupted tuples before they poison runs.

Skyline dominance over IEEE floats is silently wrong in the presence of
``NaN`` (every comparison involving it is false, so a ``NaN`` tuple is
never dominated *and* never dominates — it lodges in every window it
reaches), and ``±inf`` collapses whole subspaces.  The sanitizer scans a
relation's measure columns once, quarantines offending rows into a
structured per-relation report, and hands the engine a clean relation.

Two dispositions:

* ``"quarantine"`` (default) — drop bad rows, record each offending
  *(row, attribute, reason)* triple in the :class:`QuarantineReport`;
* ``"raise"`` — raise :class:`~repro.errors.DataError` on the first bad
  relation (for pipelines that prefer failing loudly to dropping data).

A relation with no violations is returned *unchanged* (same object), so
enabling sanitisation on clean data is bit-identical to disabling it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError, ExecutionError
from repro.relation import Relation

#: Default magnitude bound for the "domain" check: benchmark measures are
#: generated in small positive ranges, so anything beyond this is a feed
#: glitch rather than data.
DEFAULT_DOMAIN_LIMIT = 1e9


@dataclass(frozen=True)
class QuarantinedTuple:
    """One quarantined row and the first violation found in it."""

    row: int
    attribute: str
    reason: str  # "nan" | "inf" | "domain"


@dataclass
class QuarantineReport:
    """Structured outcome of sanitising one relation."""

    relation: str
    quarantined: "list[QuarantinedTuple]" = field(default_factory=list)
    rows_scanned: int = 0

    @property
    def rows_dropped(self) -> int:
        return len(self.quarantined)

    @property
    def rows_kept(self) -> int:
        return self.rows_scanned - self.rows_dropped

    def counts_by_reason(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for record in self.quarantined:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def __bool__(self) -> bool:
        return bool(self.quarantined)


def sanitize_relation(
    relation: Relation,
    *,
    domain_limit: float = DEFAULT_DOMAIN_LIMIT,
    on_violation: str = "quarantine",
) -> "tuple[Relation, QuarantineReport]":
    """Scan measure columns; quarantine (or raise on) corrupted rows.

    Returns ``(clean_relation, report)``.  When nothing is wrong the
    input relation object itself is returned, guaranteeing bit-identical
    behaviour for clean data.
    """
    if on_violation not in ("quarantine", "raise"):
        raise ExecutionError(
            f"unknown sanitizer disposition {on_violation!r}; "
            "expected 'quarantine' or 'raise'"
        )
    if domain_limit <= 0:
        raise ExecutionError(
            f"sanitizer domain_limit must be positive, got {domain_limit}"
        )
    report = QuarantineReport(
        relation=relation.name, rows_scanned=relation.cardinality
    )
    n = relation.cardinality
    measures = relation.schema.measure_names
    if n == 0 or not measures:
        return relation, report

    bad_rows = np.zeros(n, dtype=bool)
    # First violation per row wins, scanning attributes in schema order so
    # the report is deterministic regardless of numpy internals.
    first_reason: "dict[int, QuarantinedTuple]" = {}
    for attribute in measures:
        values = np.asarray(relation.column(attribute), dtype=float)
        nan_mask = np.isnan(values)
        inf_mask = np.isinf(values)
        domain_mask = ~nan_mask & ~inf_mask & (np.abs(values) > domain_limit)
        for reason, mask in (
            ("nan", nan_mask),
            ("inf", inf_mask),
            ("domain", domain_mask),
        ):
            for row in np.nonzero(mask)[0].tolist():
                if row not in first_reason:
                    first_reason[row] = QuarantinedTuple(
                        row=row, attribute=attribute, reason=reason
                    )
        bad_rows |= nan_mask | inf_mask | domain_mask

    if not bad_rows.any():
        return relation, report

    report.quarantined = [
        first_reason[row] for row in sorted(first_reason)
    ]
    if on_violation == "raise":
        worst = report.quarantined[0]
        raise DataError(
            f"relation {relation.name!r}: {report.rows_dropped} corrupted "
            f"row(s); first at row {worst.row}, attribute "
            f"{worst.attribute!r} ({worst.reason})"
        )
    keep = np.nonzero(~bad_rows)[0]
    return relation.take(keep), report


__all__ = [
    "DEFAULT_DOMAIN_LIMIT",
    "QuarantineReport",
    "QuarantinedTuple",
    "sanitize_relation",
]
