"""Region-level recovery: retry with backoff, quarantine, degradation.

The state machines here are deliberately *pure* — they decide, the driver
(:mod:`repro.core.caqe` / :mod:`repro.core.continuous`) acts — so the
recovery semantics can be unit-tested without running the engine.

Lifecycle of a failing region (see docs/ARCHITECTURE.md §9):

``healthy --RegionFailure--> retrying --(attempts < max)--> retry with
capped exponential backoff charged to the virtual clock --(attempts ==
max)--> quarantined``.

A quarantined region is removed from the dependency graph through the
normal :meth:`~repro.core.depgraph.DependencyGraph.remove_node` path, so
its dependents are *promoted to roots*, never discarded or blocked; the
queries it served receive a :class:`DegradedReport` built from the
region's coarse MQLA bounds instead of tuple-level results.  The same
degraded answer shape backs graceful degradation when a query's
virtual-time budget runs out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ExecutionError

#: Supervisor verdicts after one recorded failure.
RETRY = "retry"
QUARANTINE = "quarantine"

#: Reasons attached to degraded reports.
REASON_BUDGET = "budget"
REASON_QUARANTINE = "quarantine"
#: Serving-layer reasons: a per-submission virtual deadline expired, or
#: the multi-tenant scheduler browned the submission out under overload.
REASON_DEADLINE = "deadline"
REASON_BROWNOUT = "brownout"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed region evaluations."""

    #: Total evaluation attempts per region (1 initial + retries).
    max_attempts: int = 3
    #: Virtual-time backoff before the first retry.
    backoff_base: float = 50.0
    #: Multiplier applied per additional retry.
    backoff_factor: float = 2.0
    #: Hard cap on a single backoff charge.
    backoff_cap: float = 800.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ExecutionError("backoff charges must be non-negative")
        if self.backoff_factor < 1.0:
            raise ExecutionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def max_retries(self) -> int:
        """Retries after the initial attempt (0 = quarantine on first failure)."""
        return self.max_attempts - 1

    def backoff(self, failure_count: int) -> float:
        """Virtual time charged after the ``failure_count``-th failure.

        Overflow-safe: ``backoff_factor ** (failure_count - 1)`` exceeds
        float range long before ``failure_count`` exhausts any realistic
        retry budget, but a supervisor with a huge ``max_attempts`` (or a
        caller probing directly) must still get the capped charge instead
        of an :class:`OverflowError`.
        """
        if failure_count < 1:
            raise ExecutionError(
                f"failure_count must be >= 1, got {failure_count}"
            )
        if self.backoff_base == 0.0:
            # A zero base stays zero under any growth factor; short-circuit
            # so gigantic exponents cannot overflow a product with 0.
            return 0.0
        try:
            raw = self.backoff_base * self.backoff_factor ** (failure_count - 1)
        except OverflowError:
            return float(self.backoff_cap)
        if math.isinf(raw) or raw > self.backoff_cap:
            return float(self.backoff_cap)
        return float(raw)


@dataclass(frozen=True)
class DegradedReport:
    """Approximate answer for one (query, region) served from MQLA bounds.

    Emitted instead of tuple-level results when a region is quarantined or
    a query's time budget runs out: consumers learn *where* the missing
    results would lie (the region's output-space box) and roughly how many
    there were, flagged unambiguously as approximate.
    """

    query_name: str
    region_id: int
    #: Coarse output-space bounds of the unprocessed region.
    lower: "tuple[float, ...]"
    upper: "tuple[float, ...]"
    #: MQLA's estimated join-result count for the region.
    est_join_count: float
    #: Why the region was degraded: "budget" or "quarantine".
    reason: str
    #: Virtual time at which the degraded answer was issued.
    timestamp: float


@dataclass
class RegionSupervisor:
    """Tracks per-region failures and issues retry/quarantine verdicts."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    failures: "dict[int, int]" = field(default_factory=dict)
    quarantined: "set[int]" = field(default_factory=set)

    def next_attempt(self, region_id: int) -> int:
        """1-based attempt number the region's next evaluation will be."""
        return self.failures.get(region_id, 0) + 1

    def record_failure(self, region_id: int) -> str:
        """Register one failure; return :data:`RETRY` or :data:`QUARANTINE`."""
        count = self.failures.get(region_id, 0) + 1
        self.failures[region_id] = count
        if count >= self.policy.max_attempts:
            self.quarantined.add(region_id)
            return QUARANTINE
        return RETRY

    def backoff_for(self, region_id: int) -> float:
        """Backoff charge for the region's most recent failure."""
        count = self.failures.get(region_id, 0)
        if count < 1:
            raise ExecutionError(
                f"region #{region_id} has no recorded failure to back off from"
            )
        return self.policy.backoff(count)

    def is_quarantined(self, region_id: int) -> bool:
        return region_id in self.quarantined


__all__ = [
    "QUARANTINE",
    "REASON_BROWNOUT",
    "REASON_BUDGET",
    "REASON_DEADLINE",
    "REASON_QUARANTINE",
    "RETRY",
    "DegradedReport",
    "RegionSupervisor",
    "RetryPolicy",
]
