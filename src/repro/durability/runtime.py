"""Driver-side durability coordinator (docs/ARCHITECTURE.md §10.3).

:class:`RunDurability` sits between a driver loop (finite
:class:`~repro.core.caqe.CAQE` or :class:`~repro.core.continuous.ContinuousCAQE`)
and the on-disk journal/snapshots.  The driver calls
:meth:`RunDurability.on_region_complete` after every completed region
with the region's journal record and a zero-argument state dumper;
the coordinator then either

* **verifies** — while replaying a resumed run through the journalled
  region sequence, the freshly computed record must equal the persisted
  one field for field (bit-identical floats included), else
  :class:`~repro.errors.ResumeMismatch`; or
* **appends** — past the old journal tail, the record is fsync'd before
  the driver proceeds (write-ahead: a crash can lose at most the region
  currently in flight, never a journalled one);

and, every ``checkpoint_every_regions`` completed regions, writes a full
snapshot (skipped when the file already exists from the pre-crash run).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.durability.checkpoint import snapshot_path, write_snapshot
from repro.durability.journal import RegionJournal
from repro.errors import ResumeMismatch

import os


class RunDurability:
    """Verify-then-append journal cursor plus checkpoint cadence."""

    def __init__(
        self,
        journal: RegionJournal,
        directory: str,
        fingerprint: str,
        checkpoint_every: int,
        expected: "list[dict[str, Any]] | None" = None,
    ) -> None:
        self.journal = journal
        self.directory = directory
        self.fingerprint = fingerprint
        self.checkpoint_every = max(int(checkpoint_every), 1)
        #: Journal records ahead of the restored snapshot, awaiting
        #: re-execution; drained front to back as regions complete.
        self._expected: "deque[dict[str, Any]]" = deque(expected or [])

    # ------------------------------------------------------------------ #
    @property
    def verifying(self) -> bool:
        """True while replaying the journalled tail of a resumed run."""
        return bool(self._expected)

    def on_region_complete(
        self,
        record: "dict[str, Any]",
        dump_state: "Callable[[], dict[str, Any]]",
    ) -> None:
        if self._expected:
            persisted = self._expected.popleft()
            if persisted != record:
                drift = sorted(
                    k
                    for k in set(persisted) | set(record)
                    if persisted.get(k) != record.get(k)
                )
                raise ResumeMismatch(
                    f"replay diverged from journal at seq "
                    f"{record.get('seq')}: fields {drift} differ "
                    f"(journalled {persisted!r}, replayed {record!r})"
                )
        else:
            self.journal.append(record)
        seq = int(record["seq"])
        if seq % self.checkpoint_every == 0:
            self.checkpoint_now(seq, dump_state)

    def checkpoint_now(
        self, seq: int, dump_state: "Callable[[], dict[str, Any]]"
    ) -> None:
        """Write the snapshot for ``seq`` unless one already exists.

        An existing file means the pre-crash run already wrote this
        snapshot; determinism makes the two byte-equivalent in content,
        so keeping the original is safe and cheaper.
        """
        if not os.path.exists(snapshot_path(self.directory, seq)):
            write_snapshot(self.directory, seq, self.fingerprint, dump_state())

    def close(self) -> None:
        self.journal.close()


__all__ = ["RunDurability"]
