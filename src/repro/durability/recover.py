"""Resume entry points for killed runs (docs/ARCHITECTURE.md §10.4).

Recovery is *replay with verification*: the engine re-runs the
deterministic prologue from the original inputs, overwrites the mutable
loop state from the newest intact snapshot, then re-executes the regions
the journal records past that snapshot — and every freshly computed
record must equal the persisted one field for field
(:class:`~repro.errors.ResumeMismatch` otherwise).  Past the old journal
tail the run simply continues, appending new records.  The net effect is
a continuation that is bit-identical to the run that was never killed:
same ``region_trace``, same comparison counts, same virtual-clock
readings, same reported results.

The engine imports live inside the functions — this module is imported
by the :mod:`repro.durability` package, which the engines themselves
import lazily, and function-level imports keep that cycle open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.durability.checkpoint import latest_snapshot
from repro.durability.journal import RegionJournal, run_fingerprint
from repro.errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.contracts.base import Contract
    from repro.core.caqe import CAQEConfig, RunResult
    from repro.query.workload import Workload
    from repro.relation import Relation


@dataclass
class ResumeState:
    """Everything a resumed run needs from the durability directory."""

    #: The journal, torn tail already truncated, reopened for appending.
    journal: RegionJournal
    #: Newest intact snapshot at or before the journal tail (``None``
    #: when the run died before its first checkpoint — journal-only
    #: resume replays from the start).
    snapshot: "dict[str, Any] | None"
    #: Journal records past the snapshot, awaiting verified replay.
    expected: "list[dict[str, Any]]" = field(default_factory=list)
    fingerprint: str = ""


def load_resume_state(config: "CAQEConfig", fingerprint: str) -> ResumeState:
    """Open the journal directory and pick the recovery point."""
    if not config.enable_journal or not config.journal_dir:
        raise DurabilityError(
            "resume requires enable_journal=True and a journal_dir"
        )
    journal, records = RegionJournal.open_resume(config.journal_dir, fingerprint)
    for position, record in enumerate(records, start=1):
        if int(record.get("seq", -1)) != position:
            journal.close()
            raise DurabilityError(
                f"journal at {journal.path} is not contiguous: record "
                f"{position} carries seq {record.get('seq')!r}"
            )
    max_seq = int(records[-1]["seq"]) if records else None
    try:
        snapshot = latest_snapshot(
            config.journal_dir, fingerprint, max_seq=max_seq
        )
    except DurabilityError:
        journal.close()
        raise
    start = int(snapshot["seq"]) if snapshot is not None else 0
    expected = [r for r in records if int(r["seq"]) > start]
    return ResumeState(
        journal=journal,
        snapshot=snapshot,
        expected=expected,
        fingerprint=fingerprint,
    )


def resume_run(
    left: "Relation",
    right: "Relation",
    workload: "Workload",
    contracts: "dict[str, Contract]",
    config: "CAQEConfig",
) -> "RunResult":
    """Resume a killed finite :class:`~repro.core.caqe.CAQE` run.

    Must be called with the *same* config, workload, and input relations
    as the killed run — the journal fingerprint enforces this.
    """
    from repro.core.caqe import CAQE

    fingerprint = run_fingerprint(config, left, right, workload)
    state = load_resume_state(config, fingerprint)
    return CAQE(config).run(left, right, workload, contracts, _resume=state)


def resume_continuous(
    workload: "Workload",
    contracts: "dict[str, Contract]",
    config: "CAQEConfig",
):
    """Resume a killed :class:`~repro.core.continuous.ContinuousCAQE`.

    Returns the reconstructed engine, positioned after the last epoch
    whose snapshot survived; feed it the remaining deltas to continue.
    """
    from repro.core.continuous import ContinuousCAQE

    return ContinuousCAQE.resume(workload, contracts, config)


__all__ = [
    "ResumeState",
    "load_resume_state",
    "resume_continuous",
    "resume_run",
]
