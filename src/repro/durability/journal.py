"""The write-ahead region journal (docs/ARCHITECTURE.md §10.1).

One journal file per run, line-oriented and append-only::

    <crc32:8 hex> <payload JSON>\\n

The first record is a header carrying the format magic and the run
*fingerprint* (a SHA-256 over the configuration, the workload shape and
the exact input bytes); every later record describes one **completed**
region — its id, static RQL, the cumulative skyline-comparison count,
the virtual-clock reading, per-query reported-result counts, and the
fault-plan decision cursor.  Records are flushed and ``os.fsync``'d
before the driver continues, so after a SIGKILL the journal prefix up to
the last fsync is intact and at most the final line is torn.

Torn tails are handled on open: the file is truncated back to the last
line whose CRC verifies.  JSON is used (not pickle) because CPython's
``repr``-based float formatting round-trips ``float`` exactly — the
virtual-clock readings recorded here are compared *bit-identically*
against the resumed run.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import TYPE_CHECKING, Any

from repro.errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.relation import Relation

#: Format magic checked on resume.
JOURNAL_MAGIC = "caqe-journal-v1"
#: File name of the journal inside ``CAQEConfig.journal_dir``.
JOURNAL_FILENAME = "journal.caqe"


def _crc_hex(payload: bytes) -> str:
    return format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")


def _encode(payload: "dict[str, Any]") -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{_crc_hex(body.encode('utf-8'))} {body}\n".encode("utf-8")


def _decode_line(line: bytes) -> "dict[str, Any] | None":
    """Parse one journal line; ``None`` marks a torn/corrupt line."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    if not text.endswith("\n") or len(text) < 10 or text[8] != " ":
        return None
    crc, body = text[:8], text[9:-1]
    if _crc_hex(body.encode("utf-8")) != crc:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


# --------------------------------------------------------------------- #
# Run fingerprinting
# --------------------------------------------------------------------- #
#: Config fields with no effect on run observables (durability and
#: serving knobs).  They are pinned to defaults before fingerprinting so
#: a journal can be moved to a new directory or resumed under a
#: different checkpoint cadence without a spurious identity mismatch.
_NEUTRAL_FIELDS = {
    "enable_journal": False,
    "journal_dir": None,
    "checkpoint_every_regions": 25,
    "server_queue_limit": 16,
    "server_workers": 2,
    "server_breaker_threshold": 3,
    "server_breaker_cooldown": 8,
    "server_default_deadline": None,
}


def _config_identity(config: object) -> str:
    from dataclasses import is_dataclass, replace

    if is_dataclass(config):
        config = replace(config, **_NEUTRAL_FIELDS)  # type: ignore[type-var]
    return repr(config)


def relation_digest(relation: "Relation") -> str:
    """SHA-256 over a relation's name, schema, and exact column bytes."""
    digest = hashlib.sha256()
    digest.update(relation.name.encode("utf-8"))
    for attr in relation.schema.attributes:
        digest.update(f"|{attr.name}:{attr.role.value}".encode("utf-8"))
    for name in relation.schema.names:
        column = relation.column(name)
        digest.update(str(column.dtype).encode("utf-8"))
        digest.update(column.tobytes())
    return digest.hexdigest()


def run_fingerprint(config: object, left: "Relation", right: "Relation", workload: object) -> str:
    """Identity of one (config, workload, inputs) triple.

    A journal written under one fingerprint refuses to resume under any
    other — deterministic replay is only sound against identical inputs.
    ``repr`` is used for the config and queries because both define
    stable, address-free representations (dataclasses of scalars; the
    query repr lists function *names*, never function objects).
    """
    digest = hashlib.sha256()
    digest.update(_config_identity(config).encode("utf-8"))
    for query in workload:  # type: ignore[attr-defined]
        digest.update(f"|{query.name}={query!r}".encode("utf-8"))
    digest.update(relation_digest(left).encode("utf-8"))
    digest.update(relation_digest(right).encode("utf-8"))
    return digest.hexdigest()


def continuous_fingerprint(config: object, workload: object) -> str:
    """Identity of one continuous (streaming) run.

    Deltas arrive over time, so input bytes cannot be part of the
    identity — the snapshots themselves persist the merged tables.
    """
    digest = hashlib.sha256()
    digest.update(b"continuous")
    digest.update(_config_identity(config).encode("utf-8"))
    for query in workload:  # type: ignore[attr-defined]
        digest.update(f"|{query.name}={query!r}".encode("utf-8"))
    return digest.hexdigest()


# --------------------------------------------------------------------- #
# The journal proper
# --------------------------------------------------------------------- #
class RegionJournal:
    """Append-only fsync'd record log for one run.

    Use :meth:`create` for a fresh run and :meth:`open_resume` to
    recover — the constructor is internal.
    """

    def __init__(self, path: str, handle: "Any") -> None:
        self.path = path
        self._handle = handle

    # -- lifecycle ------------------------------------------------------ #
    @classmethod
    def create(cls, directory: str, fingerprint: str) -> "RegionJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, JOURNAL_FILENAME)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            raise DurabilityError(
                f"journal already exists at {path}; resume it via "
                "repro.durability.resume_run or point journal_dir at a "
                "fresh directory"
            )
        handle = open(path, "wb")
        journal = cls(path, handle)
        journal.append({"type": "header", "magic": JOURNAL_MAGIC, "fingerprint": fingerprint})
        return journal

    @classmethod
    def open_resume(
        cls, directory: str, fingerprint: str
    ) -> "tuple[RegionJournal, list[dict]]":
        """Open an existing journal for resume.

        Truncates a torn tail (any suffix of lines failing CRC/parse),
        verifies the header against ``fingerprint``, and returns the
        journal positioned for appending plus the surviving region
        records in order.
        """
        path = os.path.join(directory, JOURNAL_FILENAME)
        if not os.path.exists(path):
            raise DurabilityError(f"no journal to resume at {path}")
        with open(path, "rb") as handle:
            raw = handle.read()
        records: "list[dict]" = []
        valid_bytes = 0
        for line in raw.splitlines(keepends=True):
            payload = _decode_line(line)
            if payload is None:
                break  # torn tail: discard this line and everything after
            records.append(payload)
            valid_bytes += len(line)
        if not records:
            raise DurabilityError(f"journal at {path} has no intact header record")
        header, region_records = records[0], records[1:]
        if header.get("type") != "header" or header.get("magic") != JOURNAL_MAGIC:
            raise DurabilityError(f"journal at {path} is not a {JOURNAL_MAGIC} file")
        if header.get("fingerprint") != fingerprint:
            raise DurabilityError(
                "journal fingerprint mismatch: the journal was written for "
                "a different configuration, workload, or input data"
            )
        if valid_bytes < len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        handle = open(path, "ab")
        return cls(path, handle), region_records

    # -- record I/O ----------------------------------------------------- #
    def append(self, payload: "dict[str, Any]") -> None:
        """Write one record and force it to stable storage (fsync)."""
        self._handle.write(_encode(payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RegionJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "JOURNAL_FILENAME",
    "JOURNAL_MAGIC",
    "RegionJournal",
    "continuous_fingerprint",
    "relation_digest",
    "run_fingerprint",
]
