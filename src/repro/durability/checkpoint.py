"""Snapshot serialisation for crash recovery (docs/ARCHITECTURE.md §10.2).

A snapshot captures exactly the *mutable* driver state of a run.  The
immutable prologue — partitioning, cuboid construction, coarse join and
coarse skyline, dependency-graph build, benefit-model attachment — is
deterministic, so recovery re-runs it from the original inputs and then
overwrites the mutable pieces from the snapshot (including the stats and
virtual clock, which erases the prologue's re-charges).

Everything is JSON: CPython serialises floats via ``repr``, which
round-trips ``float64`` exactly, so a restored clock reading or weight
vector is bit-identical to the value that was saved.  Snapshot files are
self-checksummed (CRC32 over the body) and committed atomically
(``tmp`` + fsync + rename), so a crash mid-snapshot leaves the previous
snapshot as the recovery point instead of a torn file.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.contracts.score import ResultLog
from repro.core.depgraph import DependencyGraph
from repro.core.region import OutputRegion
from repro.errors import DurabilityError
from repro.partition.bounds import HyperRect
from repro.partition.cells import LeafCell
from repro.relation import Relation
from repro.relation.schema import Attribute, Role, Schema
from repro.robustness.recovery import DegradedReport
from repro.robustness.sanitize import QuarantinedTuple, QuarantineReport

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.executor import JoinResultStore
    from repro.core.stats import ExecutionStats
    from repro.plan.shared_plan import WorkloadPlan
    from repro.robustness.recovery import RegionSupervisor

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")


# --------------------------------------------------------------------- #
# Snapshot files
# --------------------------------------------------------------------- #
def snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"snapshot-{seq:08d}.json")


def write_snapshot(
    directory: str, seq: int, fingerprint: str, state: "dict[str, Any]"
) -> str:
    """Atomically persist one snapshot; returns its path."""
    path = snapshot_path(directory, seq)
    body = json.dumps(
        {"seq": seq, "fingerprint": fingerprint, "state": state},
        sort_keys=True,
        separators=(",", ":"),
    )
    crc = format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(crc + "\n" + body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def read_snapshot(path: str) -> "dict[str, Any] | None":
    """Load one snapshot; ``None`` when missing or corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
    except OSError:
        return None
    head, _, body = content.partition("\n")
    if not body:
        return None
    if format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x") != head:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def list_snapshots(directory: str) -> "list[tuple[int, str]]":
    """(seq, path) of every snapshot file present, ascending by seq."""
    if not os.path.isdir(directory):
        return []
    found: "list[tuple[int, str]]" = []
    for name in os.listdir(directory):
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def latest_snapshot(
    directory: str, fingerprint: str, max_seq: "int | None" = None
) -> "dict[str, Any] | None":
    """Newest intact snapshot matching ``fingerprint`` (and ``max_seq``).

    Corrupt snapshot files are skipped (an older intact one still
    recovers the run); a fingerprint mismatch is an error because it
    means the directory holds a different run's state.
    """
    for seq, path in reversed(list_snapshots(directory)):
        if max_seq is not None and seq > max_seq:
            continue
        payload = read_snapshot(path)
        if payload is None:
            continue
        if payload.get("fingerprint") != fingerprint:
            raise DurabilityError(
                f"snapshot {path} belongs to a different run "
                "(fingerprint mismatch)"
            )
        return payload
    return None


# --------------------------------------------------------------------- #
# Component codecs
# --------------------------------------------------------------------- #
def dump_stats(stats: "ExecutionStats") -> "dict[str, Any]":
    return {
        "clock": float(stats.clock.time),
        "comparisons": int(stats.comparison_counter.comparisons),
        "join_results": stats.join_results,
        "join_probes": stats.join_probes,
        "tuples_inserted": stats.tuples_inserted,
        "regions_processed": stats.regions_processed,
        "regions_discarded": stats.regions_discarded,
        "coarse_comparisons": stats.coarse_comparisons,
        "results_reported": stats.results_reported,
        "tuples_quarantined": stats.tuples_quarantined,
        "region_retries": stats.region_retries,
        "regions_quarantined": stats.regions_quarantined,
        "degraded_reports": stats.degraded_reports,
        "straggler_penalty": float(stats.straggler_penalty),
        "region_trace": list(stats.region_trace),
    }


def load_stats(stats: "ExecutionStats", data: "dict[str, Any]") -> None:
    """Overwrite ``stats`` in place — erases any prologue re-charges."""
    stats.clock.time = float(data["clock"])
    stats.comparison_counter.comparisons = int(data["comparisons"])
    stats.join_results = int(data["join_results"])
    stats.join_probes = int(data["join_probes"])
    stats.tuples_inserted = int(data["tuples_inserted"])
    stats.regions_processed = int(data["regions_processed"])
    stats.regions_discarded = int(data["regions_discarded"])
    stats.coarse_comparisons = int(data["coarse_comparisons"])
    stats.results_reported = int(data["results_reported"])
    stats.tuples_quarantined = int(data["tuples_quarantined"])
    stats.region_retries = int(data["region_retries"])
    stats.regions_quarantined = int(data["regions_quarantined"])
    stats.degraded_reports = int(data["degraded_reports"])
    stats.straggler_penalty = float(data["straggler_penalty"])
    stats.region_trace = [int(r) for r in data["region_trace"]]


def dump_store(store: "JoinResultStore") -> "dict[str, Any]":
    return {
        "next": store._next,
        "entries": [
            [
                key,
                [store.identities[key].left_row, store.identities[key].right_row],
                store.region_of[key],
                [float(v) for v in store.vectors[key]],
            ]
            for key in store.vectors
        ],
    }


def load_store(store: "JoinResultStore", data: "dict[str, Any]") -> None:
    from repro.core.executor import ResultIdentity

    store.vectors.clear()
    store.identities.clear()
    store.region_of.clear()
    for key, identity, region_id, vector in data["entries"]:
        key = int(key)
        store.vectors[key] = np.asarray(vector, dtype=float)
        store.identities[key] = ResultIdentity(int(identity[0]), int(identity[1]))
        store.region_of[key] = int(region_id)
    store._next = int(data["next"])


def dump_plan_windows(plan: "WorkloadPlan") -> "list[list[Any]]":
    """Window contents per (plan group, cuboid mask), in group order."""
    groups: "list[list[Any]]" = []
    for group in plan._groups:
        shared = group["plan"]
        windows: "list[list[Any]]" = []
        for mask in shared.cuboid.masks:
            keys, rows = shared.window(mask).dump_entries()
            windows.append([int(mask), list(keys), rows])
        groups.append(windows)
    return groups


def load_plan_windows(plan: "WorkloadPlan", data: "list[list[Any]]") -> None:
    if len(data) != len(plan._groups):
        raise DurabilityError(
            f"snapshot has {len(data)} plan groups, run has {len(plan._groups)}"
        )
    for group, windows in zip(plan._groups, data):
        shared = group["plan"]
        for mask, keys, rows in windows:
            shared.window(int(mask)).load_entries([int(k) for k in keys], rows)


def dump_graph(graph: DependencyGraph) -> "dict[str, Any]":
    return {
        "nodes": sorted(graph.nodes),
        # Adjacency in insertion order — scheduling reads it through
        # dict iteration, so order is part of the state.
        "edges": [
            [node, [[t, m] for t, m in graph.edges_out[node].items()]]
            for node in graph.edges_out
        ],
    }


def load_graph(data: "dict[str, Any]") -> DependencyGraph:
    graph = DependencyGraph()
    for node in data["nodes"]:
        graph.add_node(int(node))
    for node, targets in data["edges"]:
        node = int(node)
        graph.edges_out.setdefault(node, {})
        for target, mask in targets:
            target = int(target)
            graph.edges_out[node][target] = int(mask)
            graph.edges_in.setdefault(target, {})[node] = int(mask)
    return graph


def dump_logs(logs: "dict[str, ResultLog]") -> "dict[str, list]":
    return {
        name: [[list(event.key), float(event.timestamp)] for event in log.events]
        for name, log in logs.items()
    }


def load_logs(data: "dict[str, list]") -> "dict[str, ResultLog]":
    logs: "dict[str, ResultLog]" = {}
    for name, events in data.items():
        log = ResultLog(name)
        for key, timestamp in events:
            log.report(tuple(int(v) for v in key), float(timestamp))
        logs[name] = log
    return logs


def dump_supervisor(supervisor: "RegionSupervisor | None") -> "dict[str, Any] | None":
    if supervisor is None:
        return None
    return {
        "failures": [[rid, n] for rid, n in sorted(supervisor.failures.items())],
        "quarantined": sorted(supervisor.quarantined),
    }


def load_supervisor(
    supervisor: "RegionSupervisor | None", data: "dict[str, Any] | None"
) -> None:
    if supervisor is None or data is None:
        return
    supervisor.failures = {int(rid): int(n) for rid, n in data["failures"]}
    supervisor.quarantined = {int(rid) for rid in data["quarantined"]}


def dump_degraded(
    degraded: "dict[str, list[DegradedReport]]",
) -> "dict[str, list]":
    return {
        name: [
            {
                "query_name": r.query_name,
                "region_id": r.region_id,
                "lower": list(r.lower),
                "upper": list(r.upper),
                "est_join_count": float(r.est_join_count),
                "reason": r.reason,
                "timestamp": float(r.timestamp),
            }
            for r in reports
        ]
        for name, reports in degraded.items()
    }


def load_degraded(data: "dict[str, list]") -> "dict[str, list[DegradedReport]]":
    return {
        name: [
            DegradedReport(
                query_name=r["query_name"],
                region_id=int(r["region_id"]),
                lower=tuple(float(v) for v in r["lower"]),
                upper=tuple(float(v) for v in r["upper"]),
                est_join_count=float(r["est_join_count"]),
                reason=r["reason"],
                timestamp=float(r["timestamp"]),
            )
            for r in reports
        ]
        for name, reports in data.items()
    }


def dump_quarantine(
    reports: "dict[str, QuarantineReport]",
) -> "dict[str, Any]":
    return {
        key: {
            "relation": report.relation,
            "rows_scanned": report.rows_scanned,
            "quarantined": [
                [t.row, t.attribute, t.reason] for t in report.quarantined
            ],
        }
        for key, report in reports.items()
    }


def load_quarantine(data: "dict[str, Any]") -> "dict[str, QuarantineReport]":
    return {
        key: QuarantineReport(
            relation=entry["relation"],
            quarantined=[
                QuarantinedTuple(int(row), attribute, reason)
                for row, attribute, reason in entry["quarantined"]
            ],
            rows_scanned=int(entry["rows_scanned"]),
        )
        for key, entry in data.items()
    }


# --------------------------------------------------------------------- #
# Input-side codecs (continuous runs persist their merged tables)
# --------------------------------------------------------------------- #
def dump_relation(relation: Relation) -> "dict[str, Any]":
    return {
        "name": relation.name,
        "attrs": [[a.name, a.role.value] for a in relation.schema.attributes],
        "columns": [
            [name, str(relation.column(name).dtype), relation.column(name).tolist()]
            for name in relation.schema.names
        ],
    }


def load_relation(data: "dict[str, Any]") -> Relation:
    schema = Schema([Attribute(name, Role(role)) for name, role in data["attrs"]])
    columns = {
        name: np.asarray(values, dtype=np.dtype(dtype))
        for name, dtype, values in data["columns"]
    }
    return Relation(data["name"], schema, columns)


def _scalar(value: "Any") -> "Any":
    return value.item() if hasattr(value, "item") else value


def dump_cell(cell: LeafCell) -> "dict[str, Any]":
    return {
        "cell_id": cell.cell_id,
        "relation": cell.relation_name,
        "indices": [int(i) for i in cell.indices],
        "measure_attrs": list(cell.measure_attrs),
        "bounds": [
            [float(v) for v in cell.bounds.lower],
            [float(v) for v in cell.bounds.upper],
        ],
        "signatures": [
            [name, sorted(_scalar(v) for v in values)]
            for name, values in sorted(cell.signatures.items())
        ],
    }


def load_cell(data: "dict[str, Any]") -> LeafCell:
    return LeafCell(
        cell_id=int(data["cell_id"]),
        relation_name=data["relation"],
        indices=np.asarray(data["indices"], dtype=np.intp),
        measure_attrs=tuple(data["measure_attrs"]),
        bounds=HyperRect(
            tuple(float(v) for v in data["bounds"][0]),
            tuple(float(v) for v in data["bounds"][1]),
        ),
        signatures={
            name: frozenset(values) for name, values in data["signatures"]
        },
    )


def dump_region(region: OutputRegion) -> "dict[str, Any]":
    return {
        "region_id": region.region_id,
        "left_cell_id": region.left_cell_id,
        "right_cell_id": region.right_cell_id,
        "condition_name": region.condition_name,
        "lower": [float(v) for v in region.lower],
        "upper": [float(v) for v in region.upper],
        "rql": region.rql,
        "coord_lo": list(region.coord_lo),
        "coord_hi": list(region.coord_hi),
        "est_join_count": float(region.est_join_count),
        "left_size": region.left_size,
        "right_size": region.right_size,
        "active_rql": region.active_rql,
    }


def load_region(data: "dict[str, Any]") -> OutputRegion:
    return OutputRegion(
        region_id=int(data["region_id"]),
        left_cell_id=int(data["left_cell_id"]),
        right_cell_id=int(data["right_cell_id"]),
        condition_name=data["condition_name"],
        lower=np.asarray(data["lower"], dtype=float),
        upper=np.asarray(data["upper"], dtype=float),
        rql=int(data["rql"]),
        coord_lo=tuple(int(v) for v in data["coord_lo"]),
        coord_hi=tuple(int(v) for v in data["coord_hi"]),
        est_join_count=float(data["est_join_count"]),
        left_size=int(data["left_size"]),
        right_size=int(data["right_size"]),
        active_rql=int(data["active_rql"]),
    )


__all__ = [
    "dump_cell",
    "dump_degraded",
    "dump_graph",
    "dump_logs",
    "dump_plan_windows",
    "dump_quarantine",
    "dump_region",
    "dump_relation",
    "dump_stats",
    "dump_store",
    "dump_supervisor",
    "latest_snapshot",
    "list_snapshots",
    "load_cell",
    "load_degraded",
    "load_graph",
    "load_logs",
    "load_plan_windows",
    "load_quarantine",
    "load_region",
    "load_relation",
    "load_stats",
    "load_store",
    "load_supervisor",
    "read_snapshot",
    "snapshot_path",
    "write_snapshot",
]
