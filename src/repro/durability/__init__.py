"""Crash-safe durability: write-ahead region journal + snapshots.

Layered on the engine's deterministic virtual time (no wall clocks in
``src/repro``, enforced by caqe-check rule CQ007), a CAQE run becomes a
pure function of its inputs — so durability only needs to persist *how
far* the run got, not what it computed:

* :mod:`repro.durability.journal` — an append-only, fsync'd, CRC32
  checksummed record per completed region (the write-ahead log);
* :mod:`repro.durability.checkpoint` — periodic full snapshots of the
  mutable driver state (skyline windows, dependency-graph frontier,
  stats/clock, feedback weights, reporting state);
* :mod:`repro.durability.recover` — resume entry points that replay
  snapshot + journal to a **bit-identical** continuation of the killed
  run (same ``region_trace``, comparison counts, reported results);
* :mod:`repro.durability.runtime` — the driver-side coordinator gluing
  the three together (verify-then-append journal cursor, checkpoint
  cadence).

See docs/ARCHITECTURE.md §10 for the formats and the recovery protocol,
and ``tools/kill_resume_audit.py`` for the SIGKILL harness that proves
the guarantee end to end.
"""

from repro.durability.checkpoint import (
    latest_snapshot,
    list_snapshots,
    snapshot_path,
    write_snapshot,
)
from repro.durability.journal import RegionJournal, run_fingerprint
from repro.durability.recover import (
    ResumeState,
    load_resume_state,
    resume_continuous,
    resume_run,
)
from repro.durability.runtime import RunDurability

__all__ = [
    "RegionJournal",
    "ResumeState",
    "RunDurability",
    "latest_snapshot",
    "list_snapshots",
    "load_resume_state",
    "resume_continuous",
    "resume_run",
    "run_fingerprint",
    "snapshot_path",
    "write_snapshot",
]
