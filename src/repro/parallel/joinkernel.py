"""Order-exact vectorised equi-join of two leaf cells.

:func:`repro.core.executor.join_cell_pair` materialises join pairs with a
Python bucket loop in a very specific order — right rows outer (cell
order), matching left rows inner (ascending cell-local position, the
bucket append order).  Everything downstream of the join (the SFS presort
tie-breaks, the insertion-id assignment in :class:`JoinResultStore`, the
skyline replay) is sensitive to that order, so the parallel layer's
kernel reproduces it exactly: a stable argsort groups equal left keys
while preserving local position, and ``searchsorted`` locates each right
key's run.

The dict-based loop and the sort-based kernel can only disagree on keys
whose hash equality differs from numeric comparison — in practice NaN
(never equal to itself) — or on non-numeric key columns; for those inputs
:func:`vectorized_equi_join` declines and :func:`cell_join` falls back to
the bucket loop.
"""

from __future__ import annotations

import numpy as np

_NUMERIC_KINDS = "biuf"


def vectorized_equi_join(
    left_values: np.ndarray, right_values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Cell-local match positions in bucket-loop order, or ``None``.

    Returns ``(left_local, right_local)`` index arrays into the given
    value arrays, ordered exactly like the hash-join bucket loop, or
    ``None`` when the inputs are outside the kernel's domain (non-numeric
    dtypes, or float keys containing NaN).
    """
    lv = np.asarray(left_values)
    rv = np.asarray(right_values)
    if lv.dtype.kind not in _NUMERIC_KINDS or rv.dtype.kind not in _NUMERIC_KINDS:
        return None
    if lv.dtype.kind == "f" and bool(np.isnan(lv).any()):
        return None
    if rv.dtype.kind == "f" and bool(np.isnan(rv).any()):
        return None
    order = np.argsort(lv, kind="stable")
    sorted_lv = lv[order]
    starts = np.searchsorted(sorted_lv, rv, side="left")
    ends = np.searchsorted(sorted_lv, rv, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    right_local = np.repeat(np.arange(len(rv), dtype=np.intp), counts)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.intp) - np.repeat(offsets, counts)
    left_local = order[np.repeat(starts, counts) + within]
    return left_local.astype(np.intp, copy=False), right_local


def _bucket_join(
    left_values: np.ndarray, right_values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """The reference bucket loop (hash-equality fallback path)."""
    buckets: "dict[object, list[int]]" = {}
    for local, value in enumerate(left_values):
        key = value.item() if hasattr(value, "item") else value
        buckets.setdefault(key, []).append(local)
    left_out: "list[int]" = []
    right_out: "list[int]" = []
    for local_r, value in enumerate(right_values):
        key = value.item() if hasattr(value, "item") else value
        for local_l in buckets.get(key, ()):
            left_out.append(local_l)
            right_out.append(local_r)
    return (
        np.asarray(left_out, dtype=np.intp),
        np.asarray(right_out, dtype=np.intp),
    )


def cell_join(
    left_values: np.ndarray,
    right_values: np.ndarray,
    left_indices: np.ndarray,
    right_indices: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Global (left, right) row-index pairs of one cell pair's equi-join.

    Identical output — values *and* order — to
    :func:`repro.core.executor.join_cell_pair`, via the vectorised kernel
    when the key columns are in its domain and the bucket loop otherwise.
    """
    local = vectorized_equi_join(left_values, right_values)
    if local is None:
        local = _bucket_join(left_values, right_values)
    left_local, right_local = local
    return (
        np.asarray(left_indices, dtype=np.intp)[left_local],
        np.asarray(right_indices, dtype=np.intp)[right_local],
    )


__all__ = ["cell_join", "vectorized_equi_join"]
