"""Order-exact vectorised equi-join of two leaf cells.

:func:`repro.core.executor.join_cell_pair` materialises join pairs with a
Python bucket loop in a very specific order — right rows outer (cell
order), matching left rows inner (ascending cell-local position, the
bucket append order).  Everything downstream of the join (the SFS presort
tie-breaks, the insertion-id assignment in :class:`JoinResultStore`, the
skyline replay) is sensitive to that order, so the vectorised kernel
reproduces it exactly: a stable argsort groups equal left keys while
preserving local position, and ``searchsorted`` locates each right key's
run.

The build side (the stable argsort of the left key column) is reusable
across every probe against the same cell, so it is split out as
:class:`GroupedBuild` / :func:`build_grouped`; the executor caches one per
``(cell_id, condition)`` exactly like the old dict-of-lists build tables.

The dict-based loop and the sort-based kernel can only disagree on keys
whose hash equality differs from numeric comparison — in practice NaN
(never equal to itself) — or on non-numeric key columns; for those inputs
:func:`build_grouped` / :func:`probe_grouped` decline and the caller falls
back to the bucket loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relation.values import unbox

_NUMERIC_KINDS = "biuf"


@dataclass(frozen=True, slots=True)
class GroupedBuild:
    """Sorted build side of one cell's join key column.

    ``values`` keeps the original (cell-order) key array so a probe that
    declines — NaN on the right side — can still fall back to the
    reference bucket loop against the identical build input.
    """

    values: np.ndarray
    order: np.ndarray
    sorted_values: np.ndarray


def build_grouped(values: np.ndarray) -> "GroupedBuild | None":
    """Group a key column for repeated probes, or ``None`` out of domain.

    Declines (returns ``None``) on non-numeric dtypes and on float keys
    containing NaN, where sort-order grouping and hash equality diverge.
    """
    lv = np.asarray(values)
    if lv.dtype.kind not in _NUMERIC_KINDS:
        return None
    if lv.dtype.kind == "f" and bool(np.isnan(lv).any()):
        return None
    order = np.argsort(lv, kind="stable")
    return GroupedBuild(values=lv, order=order, sorted_values=lv[order])


def probe_grouped(
    build: GroupedBuild, right_values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Cell-local match positions in bucket-loop order, or ``None``.

    Returns ``(left_local, right_local)`` index arrays into the build's
    value array and ``right_values``, ordered exactly like the hash-join
    bucket loop, or ``None`` when the probe side is outside the kernel's
    domain (non-numeric dtype, or float keys containing NaN).
    """
    rv = np.asarray(right_values)
    if rv.dtype.kind not in _NUMERIC_KINDS:
        return None
    if rv.dtype.kind == "f" and bool(np.isnan(rv).any()):
        return None
    sorted_lv = build.sorted_values
    starts = np.searchsorted(sorted_lv, rv, side="left")
    ends = np.searchsorted(sorted_lv, rv, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    right_local = np.repeat(np.arange(len(rv), dtype=np.intp), counts)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.intp) - np.repeat(offsets, counts)
    left_local = build.order[np.repeat(starts, counts) + within]
    return left_local.astype(np.intp, copy=False), right_local


def vectorized_equi_join(
    left_values: np.ndarray, right_values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """One-shot :func:`build_grouped` + :func:`probe_grouped`."""
    build = build_grouped(left_values)
    if build is None:
        return None
    return probe_grouped(build, right_values)


def bucket_join(
    left_values: np.ndarray, right_values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """The reference bucket loop (hash-equality fallback path)."""
    buckets: "dict[object, list[int]]" = {}
    for local, value in enumerate(left_values):  # caqe-check: disable=CQ009
        buckets.setdefault(unbox(value), []).append(local)
    left_out: "list[int]" = []
    right_out: "list[int]" = []
    for local_r, value in enumerate(right_values):  # caqe-check: disable=CQ009
        for local_l in buckets.get(unbox(value), ()):
            left_out.append(local_l)
            right_out.append(local_r)
    return (
        np.asarray(left_out, dtype=np.intp),
        np.asarray(right_out, dtype=np.intp),
    )


def cell_join(
    left_values: np.ndarray,
    right_values: np.ndarray,
    left_indices: np.ndarray,
    right_indices: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Global (left, right) row-index pairs of one cell pair's equi-join.

    Identical output — values *and* order — to
    :func:`repro.core.executor.join_cell_pair`, via the vectorised kernel
    when the key columns are in its domain and the bucket loop otherwise.
    """
    local = vectorized_equi_join(left_values, right_values)
    if local is None:
        local = bucket_join(left_values, right_values)
    left_local, right_local = local
    return (
        np.asarray(left_indices, dtype=np.intp)[left_local],
        np.asarray(right_indices, dtype=np.intp)[right_local],
    )


__all__ = [
    "GroupedBuild",
    "bucket_join",
    "build_grouped",
    "cell_join",
    "probe_grouped",
    "vectorized_equi_join",
]
