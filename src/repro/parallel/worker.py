"""Worker-side region preparation (the pure half of tuple processing).

A prepare task is a function of immutable inputs only — the base
relations, a join condition, and the two cells' row indices — so it can
run on any process at any time without affecting a single observable:
the driver charges all modelled costs itself at the deterministic commit
point, and `region.active_rql` (which shrinks as discards land) is
applied there too, never in the worker.

Tasks carry their join condition (a tiny frozen dataclass) and, when the
workload's mapping functions survive pickling, the function tuple — so
one long-lived pool can serve many different workloads (the serving
layer shares a single pool across submissions).  The built-in function
factories close over lambdas and therefore do *not* pickle; for them the
task ships ``functions=None`` and the driver projects at commit, exactly
like the serial path.

The same :func:`prepare_payload` powers the driver's inline fallback
(work stealing when a payload is not ready), so parallel and serial
prepare share one code path.

Supervision protocol (docs/ARCHITECTURE.md §14): before touching a
task, the worker announces a **claim** — ``(worker_id, client,
region_id)`` — on a synchronous claim channel, and every result message
leads with the worker id, so the pool always knows which in-flight task
each process owns.  Payloads carry a CRC32 over their packed bytes (the
durability journal's checksum idiom); the pool verifies on receipt and
falls back to inline prepare on mismatch.  Chaos kill triggers
(``kill_after`` / ``poison_regions``) fire at *claim time* with a raw
``SIGKILL`` — after the claim's pipe write, before any result ``put`` —
so a scheduled death never tears a pickle mid-flight and the supervisor
can requeue deterministically.
"""

from __future__ import annotations

import os
import queue
import signal
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.parallel.joinkernel import cell_join
from repro.parallel.shm import RelationHandle, attach_relation
from repro.query.evaluate import apply_functions
from repro.query.mapping import MappingFunction
from repro.query.predicates import JoinCondition
from repro.relation import Relation


@dataclass(frozen=True)
class PrepareTask:
    """One region's prepare request, shipped to a worker.

    ``client`` namespaces region ids: a shared pool serves several
    concurrent runs, each with its own region-id space.
    """

    client: int
    region_id: int
    condition: JoinCondition
    left_cell_id: int
    right_cell_id: int
    left_indices: np.ndarray
    right_indices: np.ndarray
    functions: "tuple[MappingFunction, ...] | None"


@dataclass(frozen=True)
class PreparedRegion:
    """A region's raw tuple-level products, before any commit decision.

    ``matrix`` holds the mapping-function outputs for *all* join pairs
    (row-aligned with ``left_idx``/``right_idx``); it is ``None`` when the
    preparer had no shippable functions and the driver computes the
    projection at commit instead.  Worker-side evaluation assumes the
    functions are row-independent (Section 2.2: one output per join
    tuple) so filtering rows after evaluation equals evaluating after
    filtering.
    """

    region_id: int
    left_idx: np.ndarray
    right_idx: np.ndarray
    matrix: "np.ndarray | None"


@dataclass(frozen=True)
class PackedRegion:
    """A :class:`PreparedRegion` flattened into one contiguous buffer.

    The wire format for the result queue: ``payload`` is the raw bytes of
    ``left_idx`` (int64), ``right_idx`` (int64) and, when ``width >= 0``,
    the row-major float64 ``matrix`` — back to back.  Packing turns the
    three per-array pickle buffers into a single block, and unpacking is
    three zero-copy ``frombuffer`` views, so a region payload crosses the
    process boundary with exactly one copy each way.

    ``crc`` is a CRC32 over ``payload`` computed sender-side; the pool
    recomputes it on receipt (:func:`packed_crc_ok`) and treats any
    mismatch as a lost task — the driver prepares inline instead of
    committing bytes a dying process may have mangled.
    """

    region_id: int
    rows: int
    #: Matrix column count, or -1 when the preparer shipped no matrix.
    width: int
    #: ``bytearray`` sender-side (written in place through typed views);
    #: both it and ``bytes`` pickle across the queue identically.
    payload: "bytes | bytearray"
    crc: int


def pack_prepared(prepared: PreparedRegion) -> PackedRegion:
    """Flatten a prepared region into the contiguous wire format.

    The payload buffer is allocated once and each column is written
    through a typed view over it, so every array crosses into the wire
    format with exactly one copy (``tobytes`` plus ``join`` would pay
    two).
    """
    left = np.ascontiguousarray(prepared.left_idx, dtype=np.int64)
    right = np.ascontiguousarray(prepared.right_idx, dtype=np.int64)
    parts = [left, right]
    width = -1
    if prepared.matrix is not None:
        matrix = np.ascontiguousarray(prepared.matrix, dtype=np.float64)
        width = int(matrix.shape[1])
        parts.append(matrix)
    payload = bytearray(sum(a.nbytes for a in parts))
    offset = 0
    for a in parts:
        np.frombuffer(payload, dtype=a.dtype, count=a.size, offset=offset)[
            :
        ] = a.reshape(-1)
        offset += a.nbytes
    return PackedRegion(
        region_id=prepared.region_id,
        rows=len(left),
        width=width,
        payload=payload,
        crc=zlib.crc32(payload) & 0xFFFFFFFF,
    )


def packed_crc_ok(packed: PackedRegion) -> bool:
    """Does the payload still hash to the checksum stamped at pack time?"""
    return (zlib.crc32(packed.payload) & 0xFFFFFFFF) == packed.crc


def unpack_prepared(packed: PackedRegion) -> PreparedRegion:
    """Rebuild the prepared region as views over the packed buffer.

    The views alias the shared buffer (read-only when the payload is
    ``bytes``); every consumer gathers rows through fancy indexing,
    which copies, so downstream code never mutates them in place.
    """
    n = packed.rows
    buf = packed.payload
    left_idx = np.frombuffer(buf, dtype=np.int64, count=n)
    right_idx = np.frombuffer(buf, dtype=np.int64, count=n, offset=8 * n)
    matrix = None
    if packed.width >= 0:
        matrix = np.frombuffer(
            buf, dtype=np.float64, count=n * packed.width, offset=16 * n
        ).reshape(n, packed.width)
    return PreparedRegion(packed.region_id, left_idx, right_idx, matrix)


@dataclass(frozen=True)
class WorkerInit:
    """Immutable worker start-up state (shipped once per process)."""

    left: "RelationHandle | Relation"
    right: "RelationHandle | Relation"


def prepare_payload(
    task: PrepareTask,
    left: Relation,
    right: Relation,
    build_values: "Callable[[], np.ndarray] | None" = None,
) -> PreparedRegion:
    """Join one cell pair and project its tuples; pure in the inputs."""
    condition = task.condition
    left_values = (
        build_values()
        if build_values is not None
        else condition.left_values(left)[task.left_indices]
    )
    right_values = condition.right_values(right)[task.right_indices]
    left_idx, right_idx = cell_join(
        left_values, right_values, task.left_indices, task.right_indices
    )
    matrix = None
    if task.functions is not None and len(left_idx):
        matrix = apply_functions(task.functions, left, right, left_idx, right_idx)
    return PreparedRegion(task.region_id, left_idx, right_idx, matrix)


class _WorkerState:
    """Per-process caches: attached relations + per-cell key columns."""

    def __init__(self, init: WorkerInit) -> None:
        self._segments = []
        self.left = self._resolve(init.left)
        self.right = self._resolve(init.right)
        # Left-cell key columns memoised per (condition, cell): a build
        # side shared by many regions is gathered once per worker.
        self._left_keys: "dict[tuple[JoinCondition, int], np.ndarray]" = {}

    def _resolve(self, ref: "RelationHandle | Relation") -> Relation:
        if isinstance(ref, Relation):
            return ref
        relation, segments = attach_relation(ref)
        self._segments.extend(segments)
        return relation

    def prepare(self, task: PrepareTask) -> PreparedRegion:
        cache_key = (task.condition, task.left_cell_id)
        left_values = self._left_keys.get(cache_key)
        if left_values is None:
            left_values = task.condition.left_values(self.left)[task.left_indices]
            self._left_keys[cache_key] = left_values
        return prepare_payload(
            task, self.left, self.right, build_values=lambda: left_values
        )


#: Seconds between orphan checks while idle.  A queue timeout parameter,
#: not a wall-clock read — the worker never observes the time itself.
_ORPHAN_POLL = 2.0


def _kill_self() -> None:
    """Die the way a crashed worker dies: SIGKILL, no cleanup, no goodbye.

    The chaos layer's kill triggers route through this single audited
    point.  ``SIGKILL`` (not ``sys.exit``) is deliberate — atexit hooks,
    queue feeder flushes and multiprocessing finalisers all get skipped,
    which is exactly the failure mode (OOM kill, segfault) the pool's
    supervisor must survive.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def worker_main(
    init: WorkerInit,
    tasks: "object",
    results: "object",
    claims: "object | None" = None,
    worker_id: int = 0,
    kill_after: "int | None" = None,
    poison_regions: "tuple[int, ...]" = (),
) -> None:
    """Worker process entry point: drain tasks until the ``None`` sentinel.

    Each task is claimed on ``claims`` — a ``SimpleQueue``, whose ``put``
    is a synchronous pipe write — *before* any work happens, so the pool
    can attribute every in-flight task to a live process id even if that
    process dies an instant later.  Any error is shipped back as
    ``(worker_id, client, region_id, repr(exc))`` and the driver falls
    back to inline preparation — a worker bug can cost wall-clock time
    but never correctness.

    ``kill_after`` / ``poison_regions`` are chaos triggers (set only by a
    :class:`~repro.robustness.faults.WorkerKillPlan`): the worker
    SIGKILLs itself when claiming its ``kill_after``-th task, or when
    claiming any listed poison region.  Both fire after the claim write
    and before any result ``put``, so the supervisor's books are always
    consistent with what was lost.

    A driver that dies without sending sentinels (SIGKILL — the
    kill-resume audit does exactly this) must not leave orphan workers
    blocked on the task queue forever: while idle, the worker
    periodically checks whether it has been reparented and exits when
    its original parent is gone.
    """
    state = _WorkerState(init)
    parent = os.getppid()
    claimed = 0
    while True:
        try:
            task = tasks.get(timeout=_ORPHAN_POLL)
        except queue.Empty:
            if os.getppid() != parent:
                break
            continue
        if task is None:
            break
        claimed += 1
        if claims is not None:
            claims.put((worker_id, task.client, task.region_id))
        if (kill_after is not None and claimed >= kill_after) or (
            task.region_id in poison_regions
        ):
            _kill_self()
        try:
            payload = state.prepare(task)
        except Exception as exc:  # caqe-check: disable=CQ006 — process boundary
            results.put((worker_id, task.client, task.region_id, repr(exc)))
            continue
        results.put(
            (worker_id, task.client, task.region_id, pack_prepared(payload))
        )


__all__ = [
    "PackedRegion",
    "PrepareTask",
    "PreparedRegion",
    "WorkerInit",
    "pack_prepared",
    "packed_crc_ok",
    "prepare_payload",
    "unpack_prepared",
    "worker_main",
]
