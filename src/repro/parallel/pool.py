"""The deterministic region worker pool.

:class:`RegionPool` runs :func:`repro.parallel.worker.worker_main` on
``workers`` processes over one pair of base relations.  Engine runs talk
to it through a :class:`PoolClient` (one per run), which namespaces
region ids so a long-lived pool — the serving layer builds one per
server — can prepare regions for several concurrent submissions at once:

* :meth:`PoolClient.dispatch` enqueues a region's prepare task
  (idempotent — a region is shipped at most once per client);
* :meth:`PoolClient.fetch` returns the region's
  :class:`~repro.parallel.worker.PreparedRegion` if a worker finished
  it; when it has not, the driver *steals the work*, preparing inline
  with the same kernel, so liveness never depends on the pool;
* results for regions that died meanwhile (discarded, quarantined) are
  dropped via :meth:`PoolClient.forget`.

Start method: ``fork`` where the platform offers it (cheap, inherits the
parent image), ``spawn`` otherwise.  The pool must therefore be created
before any threads start (the serving layer builds its shared pool in
the server constructor, ahead of its worker threads).
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as queue_module
import threading

from repro.parallel.shm import SharedRelationStore
from repro.parallel.worker import (
    PrepareTask,
    PackedRegion,
    PreparedRegion,
    WorkerInit,
    unpack_prepared,
    worker_main,
)
from repro.partition.cells import LeafCell
from repro.query.predicates import JoinCondition
from repro.query.workload import Workload
from repro.relation import Relation

#: Bounded waits, in seconds of *wall* patience (parameter values only —
#: no wall-clock reads, CQ007).  Fetch waits at most
#: ``_FETCH_ATTEMPTS * _FETCH_WAIT`` for an in-flight payload before the
#: driver steals the work inline; teardown polls likewise.
_FETCH_WAIT = 0.02
_FETCH_ATTEMPTS = 100
_CLOSE_JOIN_TIMEOUT = 0.1
_CLOSE_ATTEMPTS = 20


class RegionPool:
    """A pool of prepare workers over shared-memory relation views."""

    def __init__(
        self,
        left: Relation,
        right: Relation,
        *,
        workers: int,
        use_shared_memory: bool = True,
        start_method: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"RegionPool needs workers >= 1, got {workers}")
        self.workers = workers
        method = start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        self._store: "SharedRelationStore | None" = None
        if use_shared_memory:
            self._store = SharedRelationStore()
            left_ref: "object" = self._store.share(left)
            right_ref: "object" = self._store.share(right)
        else:
            left_ref, right_ref = left, right
        init = WorkerInit(left=left_ref, right=right_ref)
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._procs = [
            context.Process(
                target=worker_main,
                args=(init, self._tasks, self._results),
                name=f"caqe-region-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        # One lock guards the books (pending/ready/forgotten); the queues
        # are process-safe on their own.  Several server threads may hold
        # clients concurrently.
        self._lock = threading.Lock()
        self._client_ids = itertools.count(1)
        self._pending: "set[tuple[int, int]]" = set()
        self._ready: "dict[tuple[int, int], PreparedRegion]" = {}
        self._forgotten: "set[tuple[int, int]]" = set()
        self._closed = False

    def client(self) -> "PoolClient":
        """A fresh namespace for one engine run's region ids."""
        return PoolClient(self, next(self._client_ids))

    # -- client plumbing -------------------------------------------------- #
    def _dispatch(self, task: PrepareTask) -> bool:
        key = (task.client, task.region_id)
        with self._lock:
            if self._closed or key in self._pending or key in self._ready:
                return False
            self._pending.add(key)
            self._forgotten.discard(key)
        self._tasks.put(task)
        return True

    def _absorb(self, client: int, region_id: int, payload: object) -> None:
        key = (client, region_id)
        with self._lock:
            self._pending.discard(key)
            if key in self._forgotten:
                self._forgotten.discard(key)
                return
            if isinstance(payload, PackedRegion):
                self._ready[key] = unpack_prepared(payload)
            elif isinstance(payload, PreparedRegion):
                self._ready[key] = payload
            # else: worker error repr — drop; the driver prepares inline.

    def _drain(self, timeout: "float | None" = None) -> bool:
        """Absorb finished results; True iff at least one arrived."""
        got = False
        while True:
            try:
                if timeout is not None and not got:
                    client, region_id, payload = self._results.get(
                        timeout=timeout
                    )
                else:
                    client, region_id, payload = self._results.get_nowait()
            except queue_module.Empty:
                return got
            got = True
            self._absorb(client, region_id, payload)

    def _fetch(self, client: int, region_id: int, wait: bool) -> "PreparedRegion | None":
        key = (client, region_id)
        self._drain()
        with self._lock:
            payload = self._ready.pop(key, None)
            in_flight = key in self._pending
        if payload is not None or not wait or not in_flight:
            return payload
        # Bounded patience for an in-flight payload: on a busy machine the
        # worker is typically a few scheduler quanta away; past the bound
        # the caller steals the work inline (liveness without the pool).
        for _ in range(_FETCH_ATTEMPTS):
            self._drain(timeout=_FETCH_WAIT)
            with self._lock:
                payload = self._ready.pop(key, None)
                in_flight = key in self._pending
            if payload is not None or not in_flight:
                return payload
        return None

    def _forget(self, client: int, region_id: int) -> None:
        key = (client, region_id)
        with self._lock:
            self._ready.pop(key, None)
            if key in self._pending:
                # The result is still coming; mark it to be dropped.
                self._pending.discard(key)
                self._forgotten.add(key)

    def _in_flight(self, client: int, region_id: int) -> bool:
        key = (client, region_id)
        with self._lock:
            return key in self._pending or key in self._ready

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Stop workers, drop queues, release shared memory."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._procs:
            self._tasks.put(None)
        # Bounded drain-and-join: a child blocked flushing results would
        # never see the sentinel, so keep emptying the result queue.
        for _ in range(_CLOSE_ATTEMPTS):
            self._drain()
            if all(not proc.is_alive() for proc in self._procs):
                break
            for proc in self._procs:
                proc.join(timeout=_CLOSE_JOIN_TIMEOUT)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_CLOSE_JOIN_TIMEOUT)
        self._tasks.close()
        self._results.close()
        if self._store is not None:
            self._store.close()
            self._store = None
        with self._lock:
            self._pending.clear()
            self._ready.clear()
            self._forgotten.clear()

    def __enter__(self) -> "RegionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolClient:
    """One run's window onto a (possibly shared) :class:`RegionPool`."""

    def __init__(self, pool: RegionPool, client_id: int) -> None:
        self._pool = pool
        self._client_id = client_id
        self._functions: "tuple | None" = None
        self._workload_key: "int | None" = None

    def set_workload(self, workload: Workload) -> None:
        """Decide once per run whether mapping functions ship to workers.

        Tasks travel through a pickling queue, so functions built from
        lambdas (every built-in factory) stay driver-side; the worker
        then returns join pairs only and the driver projects at commit.
        """
        key = id(workload)
        if key == self._workload_key:
            return
        self._workload_key = key
        functions = tuple(
            workload.function_for(dim) for dim in workload.output_dims
        )
        self._functions = functions if _picklable(functions) else None

    def dispatch(
        self,
        region_id: int,
        condition: JoinCondition,
        left_cell: LeafCell,
        right_cell: LeafCell,
    ) -> bool:
        """Ship a region's prepare task once; True iff newly dispatched."""
        return self._pool._dispatch(
            PrepareTask(
                client=self._client_id,
                region_id=region_id,
                condition=condition,
                left_cell_id=left_cell.cell_id,
                right_cell_id=right_cell.cell_id,
                left_indices=left_cell.indices,
                right_indices=right_cell.indices,
                functions=self._functions,
            )
        )

    def fetch(self, region_id: int, wait: bool = True) -> "PreparedRegion | None":
        """The region's payload, briefly waiting if a worker holds it."""
        return self._pool._fetch(self._client_id, region_id, wait)

    def forget(self, region_id: int) -> None:
        """Discard interest in a region (it died before commit)."""
        self._pool._forget(self._client_id, region_id)

    def in_flight(self, region_id: int) -> bool:
        return self._pool._in_flight(self._client_id, region_id)


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    return True


__all__ = ["PoolClient", "RegionPool"]
