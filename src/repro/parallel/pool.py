"""The deterministic, self-healing region worker pool.

:class:`RegionPool` runs :func:`repro.parallel.worker.worker_main` on
``workers`` processes over one pair of base relations.  Engine runs talk
to it through a :class:`PoolClient` (one per run), which namespaces
region ids so a long-lived pool — the serving layer builds one per
server — can prepare regions for several concurrent submissions at once:

* :meth:`PoolClient.dispatch` enqueues a region's prepare task
  (idempotent — a region is shipped at most once per client);
* :meth:`PoolClient.fetch` returns the region's
  :class:`~repro.parallel.worker.PreparedRegion` if a worker finished
  it; when it has not, the driver *steals the work*, preparing inline
  with the same kernel, so liveness never depends on the pool;
* results for regions that died meanwhile (discarded, quarantined) are
  dropped via :meth:`PoolClient.forget`.

Supervision (docs/ARCHITECTURE.md §14).  Workers announce each task
claim on a synchronous channel before touching it, so when a process
dies mid-task (OOM kill, segfault, chaos SIGKILL) the pool knows exactly
which task was lost: ``_drain`` folds in a reap pass that detects dead
processes via ``Process.is_alive``, **requeues** the lost task for a
surviving or replacement worker, and **respawns** up to
``restart_budget`` replacements (each respawn charges capped
:class:`~repro.robustness.recovery.RetryPolicy`-shaped backoff to a
pool-local diagnostic accumulator — never to any run's virtual clock,
which would break bit-identity to the serial engine).  A task that kills
``poison_threshold`` workers is **poisoned**: permanently routed to the
driver's inline prepare and reported through the run's quarantine
machinery.  Payload CRCs are verified on receipt; a corrupt payload is
dropped and the driver prepares inline.  When the restart budget is
exhausted and no worker remains, the pool enters **degraded mode**: all
pending work is released to inline prepare, further dispatches are
refused, and the engine is effectively serial — slower, never wrong.
:meth:`RegionPool.health` snapshots all of this for stats and serving.

Start method: ``fork`` where the platform offers it (cheap, inherits the
parent image), ``spawn`` otherwise.  The pool must therefore be created
before any threads start (the serving layer builds its shared pool in
the server constructor, ahead of its worker threads); respawns reuse the
same context, mirroring ``multiprocessing.Pool``'s own repopulation.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as queue_module
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.parallel.shm import SharedRelationStore
from repro.parallel.worker import (
    PrepareTask,
    PackedRegion,
    PreparedRegion,
    WorkerInit,
    packed_crc_ok,
    unpack_prepared,
    worker_main,
)
from repro.partition.cells import LeafCell
from repro.query.predicates import JoinCondition
from repro.query.workload import Workload
from repro.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.robustness.faults import WorkerKillPlan
    from repro.robustness.recovery import RetryPolicy

#: Bounded waits, in seconds of *wall* patience (parameter values only —
#: no wall-clock reads, CQ007).  Fetch waits at most
#: ``_FETCH_ATTEMPTS * _FETCH_WAIT`` for an in-flight payload before the
#: driver steals the work inline; teardown polls likewise.
_FETCH_WAIT = 0.02
_FETCH_ATTEMPTS = 100
_CLOSE_JOIN_TIMEOUT = 0.1
_CLOSE_ATTEMPTS = 20

#: Cap on retained first-error reprs (a long-lived server pool must not
#: grow an unbounded error museum; the counts keep counting regardless).
_ERROR_SAMPLE_LIMIT = 16

#: Queue-level decode failures treated as a corrupt payload: a worker
#: killed at exactly the wrong instant can tear a pickle in the pipe.
_DECODE_ERRORS = (EOFError, OSError, pickle.UnpicklingError)


@dataclass(frozen=True)
class PoolHealth:
    """One consistent snapshot of the pool's supervision state."""

    #: Worker processes currently alive.
    workers_alive: int
    #: Processes ever started (initial size + restarts).
    workers_started: int
    #: Replacement workers spawned after crashes.
    restarts: int
    #: Tasks requeued after their owning worker died mid-claim.
    requeues: int
    #: Tasks permanently routed to inline prepare (killed >= K workers).
    poison_regions: int
    #: Payloads dropped on CRC mismatch or queue-level decode failure.
    corrupt_payloads: int
    #: Worker-side exceptions shipped back instead of payloads.
    worker_errors: int
    #: Prepare tasks ever dispatched to the pool.
    dispatched: int
    #: True once the restart budget is spent with no survivors: the pool
    #: refuses new work and every fetch resolves to inline prepare.
    degraded: bool
    #: Accumulated RetryPolicy-shaped respawn backoff.  A *diagnostic*
    #: virtual-cost channel local to the pool — deliberately never
    #: charged to any run's clock (supervision must not move observables).
    restart_backoff: float
    #: First error repr per failing region: ``(client, region_id, repr)``.
    error_samples: "tuple[tuple[int, int, str], ...]"

    def as_dict(self) -> "dict[str, object]":
        """Plain-dict form for stats/metrics surfaces."""
        return {
            "workers_alive": self.workers_alive,
            "workers_started": self.workers_started,
            "restarts": self.restarts,
            "requeues": self.requeues,
            "poison_regions": self.poison_regions,
            "corrupt_payloads": self.corrupt_payloads,
            "worker_errors": self.worker_errors,
            "dispatched": self.dispatched,
            "degraded": self.degraded,
            "restart_backoff": self.restart_backoff,
            "error_samples": list(self.error_samples),
        }


class RegionPool:
    """A supervised pool of prepare workers over shared-memory views."""

    def __init__(
        self,
        left: Relation,
        right: Relation,
        *,
        workers: int,
        use_shared_memory: bool = True,
        start_method: "str | None" = None,
        restart_budget: int = 3,
        poison_threshold: int = 2,
        kill_plan: "WorkerKillPlan | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"RegionPool needs workers >= 1, got {workers}")
        if restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        if poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        self.workers = workers
        method = start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._context = multiprocessing.get_context(method)
        context = self._context
        self._store: "SharedRelationStore | None" = None
        if use_shared_memory:
            self._store = SharedRelationStore()
            left_ref: "object" = self._store.share(left)
            right_ref: "object" = self._store.share(right)
        else:
            left_ref, right_ref = left, right
        self._init = WorkerInit(left=left_ref, right=right_ref)
        self._tasks = context.Queue()
        self._results = context.Queue()
        # Claims ride a SimpleQueue: its put is a synchronous pipe write
        # under a lock (no feeder thread), so a worker's claim is already
        # on the driver side before the worker can possibly die from a
        # scheduled kill — the supervisor's books never miss a loss.
        self._claims = context.SimpleQueue()
        self._kill_plan = (
            kill_plan if kill_plan is not None and kill_plan.active else None
        )
        self._worker_ids = itertools.count(workers)
        self._procs: "dict[int, object]" = {}
        for wid in range(workers):
            self._procs[wid] = self._spawn(wid)
        # One lock guards the books (pending/ready/forgotten/supervision);
        # the queues are process-safe on their own.  Several server
        # threads may hold clients concurrently; the claim lock serialises
        # the SimpleQueue's empty()+get() window across those threads.
        self._lock = threading.Lock()
        self._claim_lock = threading.Lock()
        self._client_ids = itertools.count(1)
        self._pending: "set[tuple[int, int]]" = set()
        self._ready: "dict[tuple[int, int], PreparedRegion]" = {}
        self._forgotten: "set[tuple[int, int]]" = set()
        #: Last-dispatched task per pending key, for deterministic requeue.
        self._task_specs: "dict[tuple[int, int], PrepareTask]" = {}
        #: worker_id -> key that worker most recently claimed (unfinished).
        self._claimed: "dict[int, tuple[int, int]]" = {}
        #: Workers killed while holding each key (poison detection).
        self._kill_counts: "dict[tuple[int, int], int]" = {}
        self._poisoned: "set[tuple[int, int]]" = set()
        self._restart_budget = restart_budget
        self._poison_threshold = poison_threshold
        self._retry_policy: "RetryPolicy | None" = None
        self._restarts = 0
        self._requeues = 0
        self._corrupt_payloads = 0
        self._worker_errors = 0
        self._dispatched = 0
        self._restart_backoff = 0.0
        self._error_samples: "dict[tuple[int, int], str]" = {}
        self._degraded = False
        self._closed = False
        self._queues_closed = False

    def client(self) -> "PoolClient":
        """A fresh namespace for one engine run's region ids."""
        return PoolClient(self, next(self._client_ids))

    # -- supervision ------------------------------------------------------ #
    def _spawn(self, worker_id: int) -> "object":
        """Start one worker process, wiring its chaos triggers if any."""
        kill_after = None
        poison: "tuple[int, ...]" = ()
        if self._kill_plan is not None:
            kill_after = self._kill_plan.kill_after_for(worker_id)
            poison = self._kill_plan.poison_regions
        proc = self._context.Process(
            target=worker_main,
            args=(
                self._init,
                self._tasks,
                self._results,
                self._claims,
                worker_id,
                kill_after,
                poison,
            ),
            name=f"caqe-region-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        return proc

    def _drain_claims(self) -> None:
        """Fold announced claims into the ownership book."""
        with self._claim_lock:
            while not self._claims.empty():
                worker_id, client, region_id = self._claims.get()
                with self._lock:
                    self._claimed[worker_id] = (client, region_id)

    def _restart_charge(self) -> float:
        """RetryPolicy-shaped backoff for the current restart count."""
        if self._retry_policy is None:
            # Deferred import: repro.parallel sits below repro.robustness
            # in the layer DAG (CQ011); only the supervisor's diagnostic
            # backoff shape reaches up, and only at first respawn.
            from repro.robustness.recovery import RetryPolicy

            self._retry_policy = RetryPolicy()
        return self._retry_policy.backoff(max(1, self._restarts))

    def _reap(self) -> None:
        """Detect dead workers; requeue their claims, respawn or degrade."""
        with self._lock:
            if self._closed or self._degraded or not self._procs:
                return
            dead = [
                wid
                for wid, proc in self._procs.items()
                if not proc.is_alive()
            ]
        if not dead:
            return
        # Claims are written synchronously before any scheduled death, so
        # every dead worker's final claim is already in the pipe.
        self._drain_claims()
        requeue: "list[PrepareTask]" = []
        respawn_ids: "list[int]" = []
        with self._lock:
            if self._closed or self._degraded:
                return
            for wid in dead:
                proc = self._procs.pop(wid, None)
                if proc is None:
                    continue
                proc.join(timeout=_CLOSE_JOIN_TIMEOUT)
                key = self._claimed.pop(wid, None)
                if key is not None and key in self._pending:
                    count = self._kill_counts.get(key, 0) + 1
                    self._kill_counts[key] = count
                    if count >= self._poison_threshold:
                        # Poison: this task keeps killing its hosts.
                        # Route it to inline prepare forever.
                        self._pending.discard(key)
                        self._task_specs.pop(key, None)
                        self._poisoned.add(key)
                    else:
                        task = self._task_specs.get(key)
                        if task is not None:
                            self._requeues += 1
                            requeue.append(task)
                if self._restarts < self._restart_budget:
                    self._restarts += 1
                    self._restart_backoff += self._restart_charge()
                    respawn_ids.append(next(self._worker_ids))
            degrade = not respawn_ids and not any(
                proc.is_alive() for proc in self._procs.values()
            )
            if degrade:
                # Budget spent, nobody left: release all pending work to
                # the driver's inline path and refuse further dispatch.
                self._degraded = True
                self._pending.clear()
                self._task_specs.clear()
                self._claimed.clear()
        for task in requeue:
            self._tasks.put(task)
        for wid in respawn_ids:
            proc = self._spawn(wid)
            with self._lock:
                if self._closed:
                    proc.terminate()
                else:
                    self._procs[wid] = proc

    def health(self) -> PoolHealth:
        """Snapshot supervision state (drains results/claims first)."""
        if not self._queues_closed:
            self._drain()
        with self._lock:
            samples = tuple(
                (client, region_id, message)
                for (client, region_id), message in sorted(
                    self._error_samples.items()
                )
            )
            return PoolHealth(
                workers_alive=sum(
                    1 for proc in self._procs.values() if proc.is_alive()
                ),
                workers_started=self.workers + self._restarts,
                restarts=self._restarts,
                requeues=self._requeues,
                poison_regions=len(self._poisoned),
                corrupt_payloads=self._corrupt_payloads,
                worker_errors=self._worker_errors,
                dispatched=self._dispatched,
                degraded=self._degraded,
                restart_backoff=self._restart_backoff,
                error_samples=samples,
            )

    @property
    def degraded(self) -> bool:
        """True once the pool has fallen back to pure serial operation."""
        with self._lock:
            return self._degraded

    def _poisoned_for(self, client: int) -> "list[int]":
        with self._lock:
            return sorted(
                region_id
                for client_id, region_id in self._poisoned
                if client_id == client
            )

    # -- client plumbing -------------------------------------------------- #
    def _dispatch(self, task: PrepareTask) -> bool:
        key = (task.client, task.region_id)
        with self._lock:
            if (
                self._closed
                or self._degraded
                or key in self._pending
                or key in self._ready
                or key in self._poisoned
            ):
                return False
            self._pending.add(key)
            self._task_specs[key] = task
            self._forgotten.discard(key)
            self._dispatched += 1
        self._tasks.put(task)
        return True

    def _absorb(
        self, worker_id: int, client: int, region_id: int, payload: object
    ) -> None:
        key = (client, region_id)
        with self._lock:
            if self._claimed.get(worker_id) == key:
                del self._claimed[worker_id]
            self._pending.discard(key)
            self._task_specs.pop(key, None)
            if key in self._forgotten:
                self._forgotten.discard(key)
                return
            if isinstance(payload, PackedRegion):
                if not packed_crc_ok(payload):
                    # Bytes mangled in flight: drop; driver prepares inline.
                    self._corrupt_payloads += 1
                    return
                self._ready[key] = unpack_prepared(payload)
            elif isinstance(payload, PreparedRegion):
                self._ready[key] = payload
            else:
                # Worker error repr: count it, keep the first per region,
                # and let the driver prepare inline.
                self._worker_errors += 1
                if (
                    key not in self._error_samples
                    and len(self._error_samples) < _ERROR_SAMPLE_LIMIT
                ):
                    self._error_samples[key] = str(payload)

    def _drain(self, timeout: "float | None" = None) -> bool:
        """Absorb finished results; True iff at least one arrived.

        Also the supervision heartbeat: after the result queue runs dry,
        claims are folded in and dead workers reaped, so every fetch/wait
        cycle observes crashes promptly.
        """
        got = False
        while True:
            try:
                if timeout is not None and not got:
                    message = self._results.get(timeout=timeout)
                else:
                    message = self._results.get_nowait()
            except queue_module.Empty:
                break
            except _DECODE_ERRORS:
                # A worker died mid-put and tore the pickle; the reap
                # pass below requeues whatever that worker had claimed.
                with self._lock:
                    self._corrupt_payloads += 1
                continue
            got = True
            worker_id, client, region_id, payload = message
            self._absorb(worker_id, client, region_id, payload)
        self._drain_claims()
        self._reap()
        return got

    def _fetch(self, client: int, region_id: int, wait: bool) -> "PreparedRegion | None":
        key = (client, region_id)
        self._drain()
        with self._lock:
            payload = self._ready.pop(key, None)
            in_flight = key in self._pending
        if payload is not None or not wait or not in_flight:
            return payload
        # Bounded patience for an in-flight payload: on a busy machine the
        # worker is typically a few scheduler quanta away; past the bound
        # the caller steals the work inline (liveness without the pool).
        # Requeue/poison/degraded transitions clear ``_pending`` and end
        # the wait early, so a crashed pool never costs the full bound.
        for _ in range(_FETCH_ATTEMPTS):
            self._drain(timeout=_FETCH_WAIT)
            with self._lock:
                payload = self._ready.pop(key, None)
                in_flight = key in self._pending
            if payload is not None or not in_flight:
                return payload
        return None

    def _forget(self, client: int, region_id: int) -> None:
        key = (client, region_id)
        with self._lock:
            self._ready.pop(key, None)
            self._task_specs.pop(key, None)
            if key in self._pending:
                # The result is still coming; mark it to be dropped.
                self._pending.discard(key)
                self._forgotten.add(key)

    def _in_flight(self, client: int, region_id: int) -> bool:
        key = (client, region_id)
        with self._lock:
            return key in self._pending or key in self._ready

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Stop workers, drop queues, release shared memory."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            procs = list(self._procs.values())
        for _ in procs:
            self._tasks.put(None)
        # Bounded drain-and-join: a child blocked flushing results would
        # never see the sentinel, so keep emptying the result queue.
        for _ in range(_CLOSE_ATTEMPTS):
            self._drain_closing()
            if all(not proc.is_alive() for proc in procs):
                break
            for proc in procs:
                proc.join(timeout=_CLOSE_JOIN_TIMEOUT)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_CLOSE_JOIN_TIMEOUT)
        self._queues_closed = True
        self._tasks.close()
        self._results.close()
        self._claims.close()
        if self._store is not None:
            self._store.close()
            self._store = None
        with self._lock:
            self._pending.clear()
            self._ready.clear()
            self._forgotten.clear()
            self._task_specs.clear()
            self._claimed.clear()

    def _drain_closing(self) -> None:
        """Teardown drain: empty the result queue, never reap/respawn."""
        while True:
            try:
                self._results.get_nowait()
            except queue_module.Empty:
                return
            except _DECODE_ERRORS:
                continue

    def __enter__(self) -> "RegionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolClient:
    """One run's window onto a (possibly shared) :class:`RegionPool`."""

    def __init__(self, pool: RegionPool, client_id: int) -> None:
        self._pool = pool
        self._client_id = client_id
        self._functions: "tuple | None" = None
        #: Strong reference to the workload last analysed: identity
        #: comparison is only sound while the object is pinned alive
        #: (``id()`` of a collected workload can be recycled by the
        #: allocator and alias an unrelated one).
        self._workload: "Workload | None" = None

    def set_workload(self, workload: Workload) -> None:
        """Decide once per run whether mapping functions ship to workers.

        Tasks travel through a pickling queue, so functions built from
        lambdas (every built-in factory) stay driver-side; the worker
        then returns join pairs only and the driver projects at commit.
        """
        if workload is self._workload:
            return
        self._workload = workload
        functions = tuple(
            workload.function_for(dim) for dim in workload.output_dims
        )
        self._functions = functions if _picklable(functions) else None

    def dispatch(
        self,
        region_id: int,
        condition: JoinCondition,
        left_cell: LeafCell,
        right_cell: LeafCell,
    ) -> bool:
        """Ship a region's prepare task once; True iff newly dispatched."""
        return self._pool._dispatch(
            PrepareTask(
                client=self._client_id,
                region_id=region_id,
                condition=condition,
                left_cell_id=left_cell.cell_id,
                right_cell_id=right_cell.cell_id,
                left_indices=left_cell.indices,
                right_indices=right_cell.indices,
                functions=self._functions,
            )
        )

    def fetch(self, region_id: int, wait: bool = True) -> "PreparedRegion | None":
        """The region's payload, briefly waiting if a worker holds it."""
        return self._pool._fetch(self._client_id, region_id, wait)

    def forget(self, region_id: int) -> None:
        """Discard interest in a region (it died before commit)."""
        self._pool._forget(self._client_id, region_id)

    def in_flight(self, region_id: int) -> bool:
        return self._pool._in_flight(self._client_id, region_id)

    def poisoned(self) -> "list[int]":
        """Region ids of this run quarantined as worker-killers."""
        return self._pool._poisoned_for(self._client_id)


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
    except (
        pickle.PicklingError,
        TypeError,
        AttributeError,
        RecursionError,
        ValueError,
    ):
        # RecursionError/ValueError: self-referential or otherwise
        # pathological mapping closures must degrade to driver-side
        # projection, not crash dispatch.
        return False
    return True


__all__ = ["PoolClient", "PoolHealth", "RegionPool"]
