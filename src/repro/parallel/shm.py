"""Shared-memory input blocks for worker processes.

One :class:`SharedRelationStore` per run copies each relation column into
a ``multiprocessing.shared_memory`` segment **once**; workers then attach
zero-copy numpy views by segment name, so per-region tasks carry only row
indices — never base data.  The driver owns segment lifetime (create and
unlink); workers merely attach and detach.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.relation import Relation
from repro.relation.schema import Schema


@dataclass(frozen=True)
class ColumnHandle:
    """Address of one relation column inside shared memory."""

    attribute: str
    segment: str
    dtype: str
    length: int


@dataclass(frozen=True)
class RelationHandle:
    """Everything a worker needs to rebuild a relation over shared memory."""

    name: str
    schema: Schema
    columns: "tuple[ColumnHandle, ...]"


class SharedRelationStore:
    """Owns the shared-memory segments of a run's base relations."""

    def __init__(self) -> None:
        self._segments: "list[shared_memory.SharedMemory]" = []

    def share(self, relation: Relation) -> RelationHandle:
        """Copy ``relation``'s columns into fresh segments; return handle."""
        handles: "list[ColumnHandle]" = []
        for attr in relation.schema.names:
            column = np.ascontiguousarray(relation.column(attr))
            segment = shared_memory.SharedMemory(
                create=True, size=max(column.nbytes, 1)
            )
            view = np.ndarray(column.shape, dtype=column.dtype, buffer=segment.buf)
            view[:] = column
            self._segments.append(segment)
            handles.append(
                ColumnHandle(attr, segment.name, column.dtype.str, len(column))
            )
        return RelationHandle(relation.name, relation.schema, tuple(handles))

    def segment_names(self) -> "list[str]":
        """Names of every live segment (leak assertions in tests)."""
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Release and unlink every segment (driver-side teardown)."""
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = []


def attach_relation(
    handle: RelationHandle,
) -> "tuple[Relation, list[shared_memory.SharedMemory]]":
    """Rebuild a relation over shared memory inside a worker.

    Returns the relation plus the attached segments, which the caller
    must keep alive for as long as the relation is used (the numpy views
    borrow their buffers).  Workers share the driver's resource tracker
    (they are ``multiprocessing`` children), so attaching re-registers
    the same name idempotently and the driver's single ``unlink`` settles
    the accounting — no per-worker unregister is needed or wanted.
    """
    segments: "list[shared_memory.SharedMemory]" = []
    columns: "dict[str, np.ndarray]" = {}
    for column in handle.columns:
        segment = shared_memory.SharedMemory(name=column.segment)
        segments.append(segment)
        columns[column.attribute] = np.ndarray(
            (column.length,), dtype=np.dtype(column.dtype), buffer=segment.buf
        )
    return Relation(handle.name, handle.schema, columns), segments


__all__ = [
    "ColumnHandle",
    "RelationHandle",
    "SharedRelationStore",
    "attach_relation",
]
