"""Deterministic multi-core region execution (docs/ARCHITECTURE.md §11).

The parallel layer splits Algorithm 1 into a *prepare* phase that is pure
in the base tables (hash join of a region's cell pair, mapping-function
projection) and a *commit* phase that touches shared state (skyline
windows, progressive reporting, the feedback loop).  Prepare work is
farmed out to a pool of worker processes over shared-memory views of the
relation columns; commits are applied by the driver **in the exact serial
benefit order**, so every observable — region trace, charged comparisons,
virtual clock, reported tuples, satisfaction — is bit-identical to the
serial engine (``workers=0``).

All process construction in ``src/repro`` lives in this package
(caqe-check rule CQ008); the rest of the engine only ever talks to
:class:`RegionPool`.
"""

from repro.parallel.joinkernel import cell_join, vectorized_equi_join
from repro.parallel.pool import PoolClient, PoolHealth, RegionPool
from repro.parallel.shm import SharedRelationStore, attach_relation
from repro.parallel.worker import (
    PackedRegion,
    PrepareTask,
    PreparedRegion,
    pack_prepared,
    packed_crc_ok,
    prepare_payload,
    unpack_prepared,
)

__all__ = [
    "PackedRegion",
    "PoolClient",
    "PoolHealth",
    "PrepareTask",
    "PreparedRegion",
    "RegionPool",
    "SharedRelationStore",
    "attach_relation",
    "cell_join",
    "pack_prepared",
    "packed_crc_ok",
    "prepare_payload",
    "unpack_prepared",
    "vectorized_equi_join",
]
