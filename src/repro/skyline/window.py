"""Incremental skyline maintenance (the BNL window).

A :class:`SkylineWindow` holds the skyline of every point inserted so far
over one fixed subspace.  It is the building block shared by the BNL and
SFS algorithms, the full skycube, the min-max-cuboid shared plan and all
executors: inserting a point either rejects it (dominated by the current
window) or admits it, evicting any window entries it dominates.

Skyline-over-join queries are **non-monotonic** (Section 1.4): an admitted
point may invalidate previously admitted ones.  Evictions are therefore
reported back to the caller so progressive executors know which earlier
results became invalid.

The window is stored as a growing numpy matrix so a whole scan is one
vectorised comparison; the *charged* comparison count keeps sequential-BNL
semantics (a rejected insert pays only up to its first dominator, an
admitted insert pays one comparison per window entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter, dims_index

_INITIAL_CAPACITY = 16

#: Shared read-only eviction list for batch rows that evicted nothing —
#: the replay kernel assigns a fresh list at every admission, so this
#: sentinel is never mutated.
_NO_EVICTIONS: "list" = []


@dataclass(frozen=True, slots=True)
class WindowEntry:
    """A point kept in the window plus its caller-supplied identity."""

    key: Hashable
    vector: np.ndarray  # values over the window's subspace only


@dataclass
class InsertOutcome:
    """Result of one :meth:`SkylineWindow.insert` call."""

    admitted: bool
    evicted: "list[WindowEntry]" = field(default_factory=list)
    #: True when an identical vector was already present (ties are kept:
    #: strict dominance cannot discard an equal point).
    duplicate: bool = False


@dataclass
class BatchInsertOutcome:
    """Result of one :meth:`SkylineWindow.insert_batch` call.

    Index ``i`` of every field describes what a sequential
    :meth:`SkylineWindow.insert` of batch element ``i`` would have done —
    the batch form is an execution strategy, not a semantic change.
    """

    admitted: np.ndarray  # bool per batch element
    evicted: "list[list[WindowEntry]]"
    duplicate: np.ndarray  # bool per batch element

    def outcome(self, i: int) -> InsertOutcome:
        """The equivalent scalar :class:`InsertOutcome` of element ``i``."""
        return InsertOutcome(
            admitted=bool(self.admitted[i]),
            evicted=list(self.evicted[i]),
            duplicate=bool(self.duplicate[i]),
        )


class SkylineWindow:
    """Skyline of all inserted points over a fixed list of dimensions."""

    __slots__ = (
        "dims", "counter", "_matrix", "_keys", "_keyset", "_size",
        "_dims_index",
    )

    def __init__(
        self,
        dims: "Sequence[int] | None" = None,
        counter: "ComparisonCounter | None" = None,
    ) -> None:
        #: Column indices (into the full point vector) this window compares;
        #: ``None`` means the full space.
        self.dims = tuple(dims) if dims is not None else None
        self._dims_index = dims_index(self.dims) if self.dims is not None else None
        self.counter = counter
        self._matrix: "np.ndarray | None" = None
        self._keys: list[Hashable] = []
        # Mirror of ``_keys`` for O(1) membership tests; window keys are
        # unique result identities, so a set tracks the list exactly.
        self._keyset: set = set()
        self._size = 0

    # ------------------------------------------------------------------ #
    def _project(self, point: np.ndarray) -> np.ndarray:
        vec = np.asarray(point, dtype=float)
        if self._dims_index is not None:
            vec = vec[self._dims_index]
        return vec

    def _ensure_capacity(self, width: int) -> None:
        if self._matrix is None:
            self._matrix = np.empty((_INITIAL_CAPACITY, width))
        elif self._size == len(self._matrix):
            grown = np.empty((2 * len(self._matrix), width))
            grown[: self._size] = self._matrix
            self._matrix = grown

    def _append(self, key: Hashable, vec: np.ndarray) -> None:
        self._ensure_capacity(len(vec))
        self._matrix[self._size] = vec
        self._keys.append(key)
        self._keyset.add(key)
        self._size += 1

    def _compact(self, keep_mask: np.ndarray) -> "list[WindowEntry]":
        """Drop entries where ``keep_mask`` is False; return them."""
        removed: list[WindowEntry] = []
        if np.all(keep_mask):
            return removed
        removed_idx = np.nonzero(~keep_mask)[0]
        for i in removed_idx:
            removed.append(WindowEntry(self._keys[i], self._matrix[i].copy()))
        kept_idx = np.nonzero(keep_mask)[0]
        self._matrix[: len(kept_idx)] = self._matrix[kept_idx]
        self._keys = [self._keys[i] for i in kept_idx]
        self._keyset.difference_update(e.key for e in removed)
        self._size = len(kept_idx)
        return removed

    # ------------------------------------------------------------------ #
    def insert(self, key: Hashable, point: np.ndarray) -> InsertOutcome:
        """Try to add ``point``; returns admission status and evictions."""
        vec = self._project(point)
        if self._size == 0:
            self._append(key, vec)
            return InsertOutcome(admitted=True)
        window = self._matrix[: self._size]
        entry_le = np.all(window <= vec, axis=1)
        new_le = np.all(vec <= window, axis=1)
        equal = entry_le & new_le
        dominators = entry_le & ~equal
        duplicate = bool(np.any(equal))
        if np.any(dominators):
            # Sequential BNL stops at the first dominating entry.
            if self.counter is not None:
                self.counter.record(int(np.argmax(dominators)) + 1)
            return InsertOutcome(admitted=False, duplicate=duplicate)
        if self.counter is not None:
            self.counter.record(self._size)
        dominated = new_le & ~equal
        evicted = self._compact(~dominated)
        self._append(key, vec)
        return InsertOutcome(admitted=True, evicted=evicted, duplicate=duplicate)

    def insert_known_member(self, key: Hashable, point: np.ndarray) -> InsertOutcome:
        """Insert a point expected to belong to this skyline (Theorem 1).

        The sharing shortcut of Theorem 1 / Corollary 1: a point in a child
        subspace's skyline is — under the DVA property — guaranteed to be in
        the parent's skyline, so the scan never needs to stop early to hunt
        for a dominator.  The full scan performed for evictions verifies the
        claim as a side effect at no extra comparison cost, so the method
        stays *correct* even when DVA does not hold (duplicate attribute
        values): a genuinely dominated point is rejected, exactly like
        :meth:`insert`, just without the early-termination discount.
        """
        vec = self._project(point)
        if self._size == 0:
            self._append(key, vec)
            return InsertOutcome(admitted=True)
        if self.counter is not None:
            self.counter.record(self._size)
        window = self._matrix[: self._size]
        entry_le = np.all(window <= vec, axis=1)
        new_le = np.all(vec <= window, axis=1)
        equal = entry_le & new_le
        if bool(np.any(entry_le & ~equal)):
            # DVA violated: the "guaranteed member" is actually dominated.
            return InsertOutcome(admitted=False, duplicate=bool(np.any(equal)))
        dominated = new_le & ~equal
        evicted = self._compact(~dominated)
        self._append(key, vec)
        return InsertOutcome(
            admitted=True, evicted=evicted, duplicate=bool(np.any(equal))
        )

    # ------------------------------------------------------------------ #
    def insert_batch(
        self,
        keys: "Sequence[Hashable]",
        matrix: np.ndarray,
        known_member: "np.ndarray | None" = None,
        kernel: str = "rounds",
    ) -> BatchInsertOutcome:
        """Insert many points at once, preserving sequential-BNL semantics.

        Equivalent to calling :meth:`insert` (or, where ``known_member[i]``
        is True, :meth:`insert_known_member`) once per batch element in
        order — identical admissions, evictions, duplicate flags, final
        window contents *and charged comparison counts* — but computed with
        bulk dominance passes instead of per-tuple control flow.

        The replay works in rounds: one ``(window × remaining)`` broadcast
        classifies every not-yet-inserted point against the current window.
        All points up to the first admissible one are rejected wholesale
        (their charge is the position of their first dominator, read from
        the same matrix), the admissible point is admitted — evicting the
        window rows it dominates — and the next round rescans the shrunken
        remainder against the updated window.  Rounds therefore cost one
        vectorised pass per *admission*, not per insertion, and skyline
        admissions are a vanishing fraction of inserts on all but tiny
        batches.

        ``kernel`` selects the execution strategy: ``"rounds"`` (the
        rescan-per-admission replay above) or ``"replay"`` (the parallel
        layer's cross-round dominance-caching commit kernel, see
        :meth:`_insert_batch_replay`) — both produce the same admissions,
        evictions, duplicate flags, final window and charge.
        """
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2:
            mat = mat.reshape(len(keys), -1)
        if self._dims_index is not None:
            mat = mat[:, self._dims_index]
        m = len(keys)
        admitted = np.zeros(m, dtype=bool)
        duplicate = np.zeros(m, dtype=bool)
        if known_member is None:
            known = np.zeros(m, dtype=bool)
        else:
            known = np.asarray(known_member, dtype=bool)
        if kernel == "replay":
            # Eviction lists are written only at admissions, so rejected
            # rows can all share one immutable empty list (callers never
            # mutate outcome rows; ``per_entry`` copies).
            evicted = [_NO_EVICTIONS] * m
            if m == 0:
                return BatchInsertOutcome(admitted, evicted, duplicate)
            return self._insert_batch_replay(
                keys, mat, known, admitted, duplicate, evicted
            )
        evicted = [[] for _ in range(m)]
        if m == 0:
            return BatchInsertOutcome(admitted, evicted, duplicate)
        cur = (
            self._matrix[: self._size]
            if self._size
            else np.empty((0, mat.shape[1]))
        )
        cur_keys = list(self._keys)
        total_charge = 0
        pos = 0
        while pos < m:
            n_w = len(cur_keys)
            if n_w == 0:
                # Empty window: the first point enters for free.
                admitted[pos] = True
                cur = mat[pos : pos + 1]
                cur_keys = [keys[pos]]
                pos += 1
                continue
            rem = mat[pos:]
            # entry_le[i, j]: window row i <= remaining point j everywhere.
            entry_le = (cur[:, None, :] <= rem[None, :, :]).all(axis=2)
            new_le = (cur[:, None, :] >= rem[None, :, :]).all(axis=2)
            equal = entry_le & new_le
            dominators = entry_le & ~equal
            has_dom = dominators.any(axis=0)
            open_slots = np.flatnonzero(~has_dom)
            first = int(open_slots[0]) if open_slots.size else m - pos
            if first:
                # Rejected prefix: sequential BNL pays up to the first
                # dominating entry; a Theorem-1 insert pays the full scan.
                duplicate[pos : pos + first] = equal[:, :first].any(axis=0)
                charges = np.where(
                    known[pos : pos + first],
                    n_w,
                    dominators[:, :first].argmax(axis=0) + 1,
                )
                total_charge += int(charges.sum())
            if pos + first < m:
                j = pos + first
                admitted[j] = True
                duplicate[j] = bool(equal[:, first].any())
                total_charge += n_w
                kill = new_le[:, first] & ~equal[:, first]
                if kill.any():
                    kill_idx = np.flatnonzero(kill)
                    evicted[j] = [
                        WindowEntry(cur_keys[i], cur[i].copy())
                        for i in kill_idx.tolist()
                    ]
                    keep = ~kill
                    cur = cur[keep]
                    cur_keys = [
                        k for k, kept in zip(cur_keys, keep.tolist()) if kept
                    ]
                cur = np.vstack([cur, mat[j : j + 1]])
                cur_keys.append(keys[j])
                pos = j + 1
            else:
                break
        if self.counter is not None and total_charge:
            self.counter.record(total_charge)
        self._size = len(cur_keys)
        self._keys = cur_keys
        self._keyset = set(cur_keys)
        width = cur.shape[1] if cur.size else mat.shape[1]
        capacity = max(_INITIAL_CAPACITY, 1 << max(self._size - 1, 0).bit_length())
        self._matrix = np.empty((capacity, width))
        self._matrix[: self._size] = cur
        return BatchInsertOutcome(admitted, evicted, duplicate)

    def _insert_batch_replay(
        self,
        keys: "Sequence[Hashable]",
        mat: np.ndarray,
        known: np.ndarray,
        admitted: np.ndarray,
        duplicate: np.ndarray,
        evicted: "list[list[WindowEntry]]",
    ) -> BatchInsertOutcome:
        """The parallel layer's commit kernel: cached-dominance replay.

        Sequential-BNL semantics identical to the ``"rounds"`` kernel, but
        the dominance structure is computed **once** instead of once per
        admission round:

        * batch-vs-initial-window dominance/equality matrices are built in
          a single broadcast;
        * each *admission* adds one cached dominance row (the new entry
          against the whole batch), so the "does a window entry dominate
          point j" predicate is maintained incrementally — an evicted
          entry's dominance is always covered by its evictor (strict
          dominance is transitive through the eviction chain), which makes
          the predicate monotone and cache-safe;
        * per-round work is then just boolean gathers over the rejected
          prefix, not a fresh ``(window × remaining × dims)`` float pass.

        Total comparison work drops from O(admissions · batch · window ·
        dims) to O((window + batch) · batch · dims) while every decision,
        eviction list, duplicate flag, final window entry order and the
        charged comparison total replay the scalar insert loop exactly.
        """
        m = len(keys)
        w0 = self._size
        width = mat.shape[1]
        if w0:
            window = self._matrix[:w0]
            entry_le0 = (window[:, None, :] <= mat[None, :, :]).all(axis=2)
            new_le0 = (window[:, None, :] >= mat[None, :, :]).all(axis=2)
            eq0 = entry_le0 & new_le0
            dom0 = entry_le0 & ~eq0
            has_dom = dom0.any(axis=0)
        else:
            window = np.empty((0, width))
            new_le0 = eq0 = dom0 = np.zeros((0, m), dtype=bool)
            has_dom = np.zeros(m, dtype=bool)
        # Alive initial entries, in original window order.  ``old_contig``
        # stays True until the first old-entry eviction, letting the hot
        # prefix reads slice ``dom0``/``eq0`` directly instead of gathering.
        old_rows = np.arange(w0)
        old_contig = True
        # Admitted batch entries still in the window (admission order) and
        # their cached dominance/equality rows over the whole batch, kept
        # in growable row-matrix buffers so per-round prefix reads are one
        # slice, not a Python-level stack of cached rows.
        cap = 8
        adm_pos = np.empty(cap, dtype=np.intp)
        adm_dom = np.empty((cap, m), dtype=bool)
        adm_eq = np.empty((cap, m), dtype=bool)
        n_adm = 0

        def batch_rows(vec: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            le = (vec[None, :] <= mat).all(axis=1)
            ge = (vec[None, :] >= mat).all(axis=1)
            eq_row = le & ge
            return le & ~eq_row, eq_row

        total_charge = 0
        pos = 0
        while pos < m:
            n_old = int(old_rows.size)
            n_w = n_old + n_adm
            if n_w == 0:
                # Empty window: the point enters for free.
                admitted[pos] = True
                dom_row, eq_row = batch_rows(mat[pos])
                adm_pos[0] = pos
                adm_dom[0] = dom_row
                adm_eq[0] = eq_row
                n_adm = 1
                np.logical_or(has_dom, dom_row, out=has_dom)
                pos += 1
                continue
            tail = has_dom[pos:]
            first = int(np.argmin(tail))
            if tail[first]:
                first = m - pos
            if first:
                if n_old:
                    if old_contig:
                        dom_old = dom0[:, pos : pos + first]
                        eq_old = eq0[:, pos : pos + first]
                    else:
                        prefix = np.arange(pos, pos + first)
                        dom_old = dom0[np.ix_(old_rows, prefix)]
                        eq_old = eq0[np.ix_(old_rows, prefix)]
                    dup = eq_old.any(axis=0)
                    any_old = dom_old.any(axis=0)
                    first_old = dom_old.argmax(axis=0)
                else:
                    dup = np.zeros(first, dtype=bool)
                    any_old = np.zeros(first, dtype=bool)
                    first_old = np.zeros(first, dtype=np.intp)
                if n_adm:
                    dom_adm = adm_dom[:n_adm, pos : pos + first]
                    dup = dup | adm_eq[:n_adm, pos : pos + first].any(axis=0)
                    first_adm = dom_adm.argmax(axis=0) + n_old
                else:
                    first_adm = np.zeros(first, dtype=np.intp)
                # Every rejected point has an *alive* dominator (the
                # eviction-chain invariant), so the old-part position wins
                # when present and the admitted part covers the rest.
                firsts = np.where(any_old, first_old, first_adm)
                charges = np.where(known[pos : pos + first], n_w, firsts + 1)
                total_charge += int(charges.sum())
                duplicate[pos : pos + first] = dup
            j = pos + first
            if j >= m:
                break
            dom_row, eq_row = batch_rows(mat[j])
            admitted[j] = True
            dup_j = bool(eq0[old_rows, j].any()) if n_old else False
            if not dup_j and n_adm:
                dup_j = bool(adm_eq[:n_adm, j].any())
            duplicate[j] = dup_j
            total_charge += n_w
            # Evictions in current-window order: surviving initial entries
            # (original order) first, then admitted ones (admission order).
            evs: "list[WindowEntry]" = []
            if n_old:
                kill_old = new_le0[old_rows, j] & ~eq0[old_rows, j]
                if kill_old.any():
                    for i in old_rows[kill_old].tolist():
                        evs.append(WindowEntry(self._keys[i], window[i].copy()))
                    old_rows = old_rows[~kill_old]
                    old_contig = False
            if n_adm:
                kill_adm = dom_row[adm_pos[:n_adm]]
                if kill_adm.any():
                    evs.extend(
                        WindowEntry(keys[p], mat[p].copy())
                        for p in adm_pos[:n_adm][kill_adm].tolist()
                    )
                    keep = ~kill_adm
                    kept = int(keep.sum())
                    adm_pos[:kept] = adm_pos[:n_adm][keep]
                    adm_dom[:kept] = adm_dom[:n_adm][keep]
                    adm_eq[:kept] = adm_eq[:n_adm][keep]
                    n_adm = kept
            evicted[j] = evs
            if n_adm == cap:
                cap *= 2
                grown_pos = np.empty(cap, dtype=np.intp)
                grown_pos[:n_adm] = adm_pos[:n_adm]
                grown_dom = np.empty((cap, m), dtype=bool)
                grown_dom[:n_adm] = adm_dom[:n_adm]
                grown_eq = np.empty((cap, m), dtype=bool)
                grown_eq[:n_adm] = adm_eq[:n_adm]
                adm_pos, adm_dom, adm_eq = grown_pos, grown_dom, grown_eq
            adm_pos[n_adm] = j
            adm_dom[n_adm] = dom_row
            adm_eq[n_adm] = eq_row
            n_adm += 1
            np.logical_or(has_dom, dom_row, out=has_dom)
            pos = j + 1
        if self.counter is not None and total_charge:
            self.counter.record(total_charge)
        if old_contig and int(old_rows.size) == w0:
            # No old-entry eviction: the initial window prefix is intact in
            # place, so the rebuild reduces to appending the surviving
            # admissions (or to nothing at all).
            if n_adm == 0:
                return BatchInsertOutcome(admitted, evicted, duplicate)
            if self._matrix is not None and w0 + n_adm <= len(self._matrix):
                final_adm = adm_pos[:n_adm].tolist()
                self._matrix[w0 : w0 + n_adm] = mat[final_adm]
                new_keys = [keys[a] for a in final_adm]
                self._keys.extend(new_keys)
                self._keyset.update(new_keys)
                self._size = w0 + n_adm
                return BatchInsertOutcome(admitted, evicted, duplicate)
        final_adm = adm_pos[:n_adm].tolist()
        final_keys = [self._keys[i] for i in old_rows.tolist()]
        final_keys.extend(keys[a] for a in final_adm)
        parts = []
        if old_rows.size:
            parts.append(window[old_rows])
        if final_adm:
            parts.append(mat[final_adm])
        cur = np.vstack(parts) if parts else np.empty((0, width))
        self._size = len(final_keys)
        self._keys = final_keys
        self._keyset = set(final_keys)
        capacity = max(_INITIAL_CAPACITY, 1 << max(self._size - 1, 0).bit_length())
        self._matrix = np.empty((capacity, width))
        self._matrix[: self._size] = cur
        return BatchInsertOutcome(admitted, evicted, duplicate)

    # ------------------------------------------------------------------ #
    # Durability hooks (docs/ARCHITECTURE.md §10): snapshots capture the
    # window's exact entry order because BNL charges depend on it (a
    # rejected insert pays up to its *first* dominator).
    # ------------------------------------------------------------------ #
    def dump_entries(self) -> "tuple[list[Hashable], list[list[float]]]":
        """Window contents in entry order, as JSON-serialisable lists."""
        rows = [
            [float(v) for v in self._matrix[i]] for i in range(self._size)
        ]
        return list(self._keys), rows

    def load_entries(
        self, keys: "Sequence[Hashable]", rows: "Sequence[Sequence[float]]"
    ) -> None:
        """Restore a dumped window verbatim — no comparisons are charged.

        Direct state injection for checkpoint recovery: the entries were
        already paid for when originally inserted, and the restored stats
        snapshot carries those charges.
        """
        if len(keys) != len(rows):
            raise ValueError("window restore: keys/rows length mismatch")
        self._keys = list(keys)
        self._keyset = set(self._keys)
        self._size = len(self._keys)
        if self._size == 0:
            self._matrix = None
            return
        width = len(rows[0])
        capacity = max(
            _INITIAL_CAPACITY, 1 << max(self._size - 1, 0).bit_length()
        )
        self._matrix = np.empty((capacity, width))
        for i, row in enumerate(rows):
            self._matrix[i] = np.asarray(row, dtype=float)

    # ------------------------------------------------------------------ #
    def contains_key(self, key: Hashable) -> bool:
        return key in self._keyset

    def remove_key(self, key: Hashable) -> bool:
        """Drop an entry by identity (used when a result is retracted)."""
        try:
            index = self._keys.index(key)
        except ValueError:
            return False
        keep = np.ones(self._size, dtype=bool)
        keep[index] = False
        self._compact(keep)
        return True

    @property
    def keys(self) -> "list[Hashable]":
        return list(self._keys)

    @property
    def vectors(self) -> np.ndarray:
        if self._size == 0:
            width = len(self.dims) if self.dims is not None else 0
            return np.empty((0, width))
        return self._matrix[: self._size].copy()

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> "Iterator[WindowEntry]":
        return (
            WindowEntry(self._keys[i], self._matrix[i].copy())
            for i in range(self._size)
        )

    def __repr__(self) -> str:
        return f"SkylineWindow(dims={self.dims}, size={self._size})"


__all__ = ["BatchInsertOutcome", "InsertOutcome", "SkylineWindow", "WindowEntry"]
