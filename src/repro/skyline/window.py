"""Incremental skyline maintenance (the BNL window).

A :class:`SkylineWindow` holds the skyline of every point inserted so far
over one fixed subspace.  It is the building block shared by the BNL and
SFS algorithms, the full skycube, the min-max-cuboid shared plan and all
executors: inserting a point either rejects it (dominated by the current
window) or admits it, evicting any window entries it dominates.

Skyline-over-join queries are **non-monotonic** (Section 1.4): an admitted
point may invalidate previously admitted ones.  Evictions are therefore
reported back to the caller so progressive executors know which earlier
results became invalid.

Storage layout (docs/ARCHITECTURE.md §16) is a structure of arrays:

* ``_store`` — a growable float64 matrix whose row order *is* admission
  order (BNL charges depend on entry order, so the order is load-bearing);
* ``_key_hash`` — an int64 column of key hashes, with ``_key_list`` as the
  collision-safe side table holding the actual :class:`Hashable` keys;
* ``_admit_round`` — the monotone mutation round that admitted each row;
* ``_live`` — liveness tombstones: an eviction only flips a bit.

Rows grow geometrically and evictions never move data; dead rows are
swept out by a deferred compaction that fires once the dead fraction
crosses ``_DEAD_FRACTION``.  Live rows in physical row order are exactly
the window's entries in admission order at all times — every public view
(``keys``, ``vectors``, iteration, :meth:`dump_entries`) reads that
sequence, so the layout is invisible to observables: charged comparison
counts, admissions, evictions and duplicate flags are bit-identical to a
naive entry-list implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter, dims_index

_INITIAL_CAPACITY = 16

#: Compact once dead rows outnumber this fraction of all physical rows.
#: 0.5 bounds wasted scan width at 2× the live window while keeping
#: compaction cost amortised O(1) per eviction.
_DEAD_FRACTION = 0.5

#: Shared read-only eviction list for batch rows that evicted nothing —
#: the batch kernels assign a fresh list at every admission, so this
#: sentinel is never mutated.
_NO_EVICTIONS: "list" = []


@dataclass(frozen=True, slots=True)
class WindowEntry:
    """A point kept in the window plus its caller-supplied identity."""

    key: Hashable
    vector: np.ndarray  # values over the window's subspace only


@dataclass
class InsertOutcome:
    """Result of one :meth:`SkylineWindow.insert` call."""

    admitted: bool
    evicted: "list[WindowEntry]" = field(default_factory=list)
    #: True when an identical vector was already present (ties are kept:
    #: strict dominance cannot discard an equal point).
    duplicate: bool = False


@dataclass
class BatchInsertOutcome:
    """Result of one :meth:`SkylineWindow.insert_batch` call.

    Index ``i`` of every field describes what a sequential
    :meth:`SkylineWindow.insert` of batch element ``i`` would have done —
    the batch form is an execution strategy, not a semantic change.
    """

    admitted: np.ndarray  # bool per batch element
    evicted: "list[list[WindowEntry]]"
    duplicate: np.ndarray  # bool per batch element

    def outcome(self, i: int) -> InsertOutcome:
        """The equivalent scalar :class:`InsertOutcome` of element ``i``."""
        return InsertOutcome(
            admitted=bool(self.admitted[i]),
            evicted=list(self.evicted[i]),
            duplicate=bool(self.duplicate[i]),
        )


class SkylineWindow:
    """Skyline of all inserted points over a fixed list of dimensions."""

    __slots__ = (
        "dims", "counter", "_dims_index", "_store", "_key_hash",
        "_admit_round", "_live", "_key_list", "_keyset", "_size",
        "_live_count", "_round",
    )

    def __init__(
        self,
        dims: "Sequence[int] | None" = None,
        counter: "ComparisonCounter | None" = None,
    ) -> None:
        #: Column indices (into the full point vector) this window compares;
        #: ``None`` means the full space.
        self.dims = tuple(dims) if dims is not None else None
        self._dims_index = dims_index(self.dims) if self.dims is not None else None
        self.counter = counter
        #: Flat columns; ``None`` until the first admission sizes the width.
        self._store: "np.ndarray | None" = None
        self._key_hash: "np.ndarray | None" = None
        self._admit_round: "np.ndarray | None" = None
        self._live: "np.ndarray | None" = None
        #: Side table resolving key-hash collisions: the actual key object
        #: per physical row (stale at dead rows until compaction).
        self._key_list: list[Hashable] = []
        # Live keys for O(1) membership tests; window keys are unique
        # result identities, so a set tracks the live rows exactly.
        self._keyset: set = set()
        #: Physical rows in use (live + tombstoned).
        self._size = 0
        #: Live rows only — the window size every charge is based on.
        self._live_count = 0
        #: Monotone mutation round, stamped into ``_admit_round``.
        self._round = 0

    # ------------------------------------------------------------------ #
    # Storage plumbing (never charges a comparison)
    # ------------------------------------------------------------------ #
    def _project(self, point: np.ndarray) -> np.ndarray:
        vec = np.asarray(point, dtype=float)
        if self._dims_index is not None:
            vec = vec[self._dims_index]
        return vec

    def _ensure_capacity(self, width: int, needed: int) -> None:
        if self._store is None:
            capacity = _INITIAL_CAPACITY
            while capacity < needed:
                capacity *= 2
            self._store = np.empty((capacity, width))
            self._key_hash = np.empty(capacity, dtype=np.int64)
            self._admit_round = np.empty(capacity, dtype=np.int64)
            self._live = np.zeros(capacity, dtype=bool)
        elif needed > len(self._store):
            capacity = len(self._store)
            while capacity < needed:
                capacity *= 2
            for name in ("_store", "_key_hash", "_admit_round", "_live"):
                old = getattr(self, name)
                shape = (capacity, width) if old.ndim == 2 else (capacity,)
                grown = np.zeros(shape, dtype=old.dtype)
                grown[: self._size] = old[: self._size]
                setattr(self, name, grown)

    def _append(self, key: Hashable, vec: np.ndarray) -> None:
        self._ensure_capacity(len(vec), self._size + 1)
        row = self._size
        self._store[row] = vec
        self._key_hash[row] = hash(key)
        self._admit_round[row] = self._round
        self._live[row] = True
        self._key_list.append(key)
        self._keyset.add(key)
        self._size += 1
        self._live_count += 1

    def _append_rows(self, keys: "list[Hashable]", rows: np.ndarray) -> None:
        """Bulk append of already-projected live rows (batch commit)."""
        k = len(keys)
        if k == 0:
            return
        self._ensure_capacity(rows.shape[1], self._size + k)
        sl = slice(self._size, self._size + k)
        self._store[sl] = rows
        self._key_hash[sl] = [hash(key) for key in keys]
        self._admit_round[sl] = self._round
        self._live[sl] = True
        self._key_list.extend(keys)
        self._keyset.update(keys)
        self._size += k
        self._live_count += k

    def _evict_rows(self, rows: np.ndarray) -> "list[WindowEntry]":
        """Tombstone live rows (ascending row order = window order)."""
        # Key side-table walk: eviction reports carry Python key objects.
        # caqe-check: disable=CQ009
        removed = [
            WindowEntry(self._key_list[i], self._store[i].copy())
            for i in rows.tolist()
        ]
        self._live[rows] = False
        self._live_count -= len(removed)
        for entry in removed:
            self._keyset.discard(entry.key)
        return removed

    def _maybe_compact(self) -> None:
        """Sweep tombstones once the dead fraction crosses the threshold.

        Invariants: live rows keep their relative order (admission order),
        no comparison is charged, and no public view can tell a compacted
        window from an uncompacted one.
        """
        dead = self._size - self._live_count
        if dead == 0 or dead <= int(self._size * _DEAD_FRACTION):
            return
        if self._live_count == 0:
            self._size = 0
            self._key_list = []
            return
        live_idx = np.flatnonzero(self._live[: self._size])
        k = live_idx.size
        self._store[:k] = self._store[live_idx]
        self._key_hash[:k] = self._key_hash[live_idx]
        self._admit_round[:k] = self._admit_round[live_idx]
        self._live[: self._size] = False
        self._live[:k] = True
        # Key side-table sweep (Python objects; no column data reboxed).
        # caqe-check: disable=CQ009
        self._key_list = [self._key_list[i] for i in live_idx.tolist()]
        self._size = k

    def _replace_all(self, keys: "list[Hashable]", rows: np.ndarray) -> None:
        """Swap in a complete new window (rounds kernel / restore path)."""
        self._size = 0
        self._live_count = 0
        self._key_list = []
        self._keyset = set()
        if self._live is not None:
            self._live[:] = False
        if len(keys):
            self._append_rows(list(keys), np.asarray(rows, dtype=float))

    def _live_index(self) -> np.ndarray:
        return np.flatnonzero(self._live[: self._size])

    # ------------------------------------------------------------------ #
    def insert(self, key: Hashable, point: np.ndarray) -> InsertOutcome:
        """Try to add ``point``; returns admission status and evictions."""
        vec = self._project(point)
        self._round += 1
        if self._live_count == 0:
            self._maybe_compact()
            self._append(key, vec)
            return InsertOutcome(admitted=True)
        n_rows = self._size
        window = self._store[:n_rows]
        entry_le = np.all(window <= vec, axis=1)
        new_le = np.all(vec <= window, axis=1)
        compact = self._live_count == n_rows
        if not compact:
            live = self._live[:n_rows]
            entry_le &= live
            new_le &= live
        equal = entry_le & new_le
        dominators = entry_le & ~equal
        duplicate = bool(np.any(equal))
        if np.any(dominators):
            # Sequential BNL stops at the first dominating entry; the
            # charge is its position among *live* rows (entry order).
            if self.counter is not None:
                row = int(np.argmax(dominators))
                position = (
                    row if compact
                    else int(np.count_nonzero(self._live[:row]))
                )
                self.counter.record(position + 1)
            return InsertOutcome(admitted=False, duplicate=duplicate)
        if self.counter is not None:
            self.counter.record(self._live_count)
        dominated = new_le & ~equal
        evicted = (
            self._evict_rows(np.flatnonzero(dominated))
            if np.any(dominated)
            else []
        )
        self._maybe_compact()
        self._append(key, vec)
        return InsertOutcome(admitted=True, evicted=evicted, duplicate=duplicate)

    def insert_known_member(self, key: Hashable, point: np.ndarray) -> InsertOutcome:
        """Insert a point expected to belong to this skyline (Theorem 1).

        The sharing shortcut of Theorem 1 / Corollary 1: a point in a child
        subspace's skyline is — under the DVA property — guaranteed to be in
        the parent's skyline, so the scan never needs to stop early to hunt
        for a dominator.  The full scan performed for evictions verifies the
        claim as a side effect at no extra comparison cost, so the method
        stays *correct* even when DVA does not hold (duplicate attribute
        values): a genuinely dominated point is rejected, exactly like
        :meth:`insert`, just without the early-termination discount.
        """
        vec = self._project(point)
        self._round += 1
        if self._live_count == 0:
            self._maybe_compact()
            self._append(key, vec)
            return InsertOutcome(admitted=True)
        if self.counter is not None:
            self.counter.record(self._live_count)
        n_rows = self._size
        window = self._store[:n_rows]
        entry_le = np.all(window <= vec, axis=1)
        new_le = np.all(vec <= window, axis=1)
        if self._live_count != n_rows:
            live = self._live[:n_rows]
            entry_le &= live
            new_le &= live
        equal = entry_le & new_le
        if bool(np.any(entry_le & ~equal)):
            # DVA violated: the "guaranteed member" is actually dominated.
            return InsertOutcome(admitted=False, duplicate=bool(np.any(equal)))
        dominated = new_le & ~equal
        evicted = (
            self._evict_rows(np.flatnonzero(dominated))
            if np.any(dominated)
            else []
        )
        self._maybe_compact()
        self._append(key, vec)
        return InsertOutcome(
            admitted=True, evicted=evicted, duplicate=bool(np.any(equal))
        )

    # ------------------------------------------------------------------ #
    def insert_batch(
        self,
        keys: "Sequence[Hashable]",
        matrix: np.ndarray,
        known_member: "np.ndarray | None" = None,
        kernel: str = "rounds",
    ) -> BatchInsertOutcome:
        """Insert many points at once, preserving sequential-BNL semantics.

        Equivalent to calling :meth:`insert` (or, where ``known_member[i]``
        is True, :meth:`insert_known_member`) once per batch element in
        order — identical admissions, evictions, duplicate flags, final
        window contents *and charged comparison counts* — but computed with
        bulk dominance passes instead of per-tuple control flow.

        The replay works in rounds: one ``(window × remaining)`` broadcast
        classifies every not-yet-inserted point against the current window.
        All points up to the first admissible one are rejected wholesale
        (their charge is the position of their first dominator, read from
        the same matrix), the admissible point is admitted — evicting the
        window rows it dominates — and the next round rescans the shrunken
        remainder against the updated window.  Rounds therefore cost one
        vectorised pass per *admission*, not per insertion, and skyline
        admissions are a vanishing fraction of inserts on all but tiny
        batches.

        ``kernel`` selects the execution strategy: ``"rounds"`` (the
        rescan-per-admission replay above) or ``"replay"`` (the parallel
        layer's cross-round dominance-caching commit kernel, see
        :meth:`_insert_batch_replay`) — both produce the same admissions,
        evictions, duplicate flags, final window and charge.
        """
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2:
            mat = mat.reshape(len(keys), -1)
        if self._dims_index is not None:
            mat = mat[:, self._dims_index]
        m = len(keys)
        self._round += 1
        admitted = np.zeros(m, dtype=bool)
        duplicate = np.zeros(m, dtype=bool)
        if known_member is None:
            known = np.zeros(m, dtype=bool)
        else:
            known = np.asarray(known_member, dtype=bool)
        if kernel == "replay":
            # Eviction lists are written only at admissions, so rejected
            # rows can all share one immutable empty list (callers never
            # mutate outcome rows; ``per_entry`` copies).
            evicted = [_NO_EVICTIONS] * m
            if m == 0:
                return BatchInsertOutcome(admitted, evicted, duplicate)
            return self._insert_batch_replay(
                keys, mat, known, admitted, duplicate, evicted
            )
        evicted = [[] for _ in range(m)]
        if m == 0:
            return BatchInsertOutcome(admitted, evicted, duplicate)
        if self._live_count == 0:
            cur = np.empty((0, mat.shape[1]))
            cur_keys: "list[Hashable]" = []
        elif self._live_count == self._size:
            # Contiguous live prefix: the kernel never mutates ``cur`` in
            # place (evictions re-gather), so a view is safe.
            cur = self._store[: self._size]
            cur_keys = list(self._key_list)
        else:
            live_idx = self._live_index()
            cur = self._store[live_idx]
            # caqe-check: disable=CQ009
            cur_keys = [self._key_list[i] for i in live_idx.tolist()]
        total_charge = 0
        pos = 0
        while pos < m:
            n_w = len(cur_keys)
            if n_w == 0:
                # Empty window: the first point enters for free.
                admitted[pos] = True
                cur = mat[pos : pos + 1]
                cur_keys = [keys[pos]]
                pos += 1
                continue
            rem = mat[pos:]
            # entry_le[i, j]: window row i <= remaining point j everywhere.
            entry_le = (cur[:, None, :] <= rem[None, :, :]).all(axis=2)
            new_le = (cur[:, None, :] >= rem[None, :, :]).all(axis=2)
            equal = entry_le & new_le
            dominators = entry_le & ~equal
            has_dom = dominators.any(axis=0)
            open_slots = np.flatnonzero(~has_dom)
            first = int(open_slots[0]) if open_slots.size else m - pos
            if first:
                # Rejected prefix: sequential BNL pays up to the first
                # dominating entry; a Theorem-1 insert pays the full scan.
                duplicate[pos : pos + first] = equal[:, :first].any(axis=0)
                charges = np.where(
                    known[pos : pos + first],
                    n_w,
                    dominators[:, :first].argmax(axis=0) + 1,
                )
                total_charge += int(charges.sum())
            if pos + first < m:
                j = pos + first
                admitted[j] = True
                duplicate[j] = bool(equal[:, first].any())
                total_charge += n_w
                kill = new_le[:, first] & ~equal[:, first]
                if kill.any():
                    kill_idx = np.flatnonzero(kill)
                    # Reference kernel: deliberate scalar transliteration
                    # of the insert loop (keys are Python objects).
                    # caqe-check: disable=CQ009
                    evicted[j] = [
                        WindowEntry(cur_keys[i], cur[i].copy())
                        for i in kill_idx.tolist()
                    ]
                    keep = ~kill
                    cur = cur[keep]
                    # caqe-check: disable=CQ009
                    cur_keys = [
                        k for k, kept in zip(cur_keys, keep.tolist()) if kept
                    ]
                cur = np.vstack([cur, mat[j : j + 1]])
                cur_keys.append(keys[j])
                pos = j + 1
            else:
                break
        if self.counter is not None and total_charge:
            self.counter.record(total_charge)
        self._replace_all(cur_keys, cur)
        return BatchInsertOutcome(admitted, evicted, duplicate)

    def _insert_batch_replay(
        self,
        keys: "Sequence[Hashable]",
        mat: np.ndarray,
        known: np.ndarray,
        admitted: np.ndarray,
        duplicate: np.ndarray,
        evicted: "list[list[WindowEntry]]",
    ) -> BatchInsertOutcome:
        """The parallel layer's commit kernel: cached-dominance replay.

        Sequential-BNL semantics identical to the ``"rounds"`` kernel, but
        the dominance structure is computed **once** instead of once per
        admission round:

        * batch-vs-initial-window dominance/equality matrices are built in
          a single broadcast over the physical rows (tombstoned rows are
          zeroed out, so contiguous column slices stay valid all batch);
        * each *admission* adds one cached dominance row (the new entry
          against the whole batch), so the "does a window entry dominate
          point j" predicate is maintained incrementally — an evicted
          entry's dominance is always covered by its evictor (strict
          dominance is transitive through the eviction chain), which makes
          the predicate monotone and cache-safe;
        * per-round work is then just boolean gathers over the rejected
          prefix, not a fresh ``(window × remaining × dims)`` float pass;
        * charges need entry *positions*, not physical rows, so a
          live-prefix rank column maps a first-dominator row to its rank
          among live rows (recomputed only on the rare old-row eviction).

        Commits are pure column writes: old-row evictions flip tombstones,
        surviving admissions append in admission order — no entry objects,
        no key-list rebuild, no matrix reallocation beyond amortised
        geometric growth.  Every decision, eviction list, duplicate flag,
        final live entry order and the charged comparison total replay the
        scalar insert loop exactly.
        """
        m = len(keys)
        n_rows = self._size
        width = mat.shape[1]
        if n_rows:
            window = self._store[:n_rows]
            entry_le0 = (window[:, None, :] <= mat[None, :, :]).all(axis=2)
            new_le0 = (window[:, None, :] >= mat[None, :, :]).all(axis=2)
            eq0 = entry_le0 & new_le0
            dom0 = entry_le0 & ~eq0
            alive0 = self._live[:n_rows].copy()
            if self._live_count != n_rows:
                dead = ~alive0
                dom0[dead] = False
                eq0[dead] = False
                new_le0[dead] = False
            has_dom = dom0.any(axis=0)
            # Rank among live rows per physical row (valid at live rows).
            live_rank = np.cumsum(alive0) - alive0
        else:
            window = np.empty((0, width))
            new_le0 = eq0 = dom0 = np.zeros((0, m), dtype=bool)
            alive0 = np.zeros(0, dtype=bool)
            has_dom = np.zeros(m, dtype=bool)
            live_rank = np.zeros(0, dtype=np.int64)
        n_old = self._live_count
        killed_rows: "list[int]" = []
        # Admitted batch entries still in the window (admission order) and
        # their cached dominance/equality rows over the whole batch, kept
        # in growable row-matrix buffers so per-round prefix reads are one
        # slice, not a Python-level stack of cached rows.
        cap = 8
        adm_pos = np.empty(cap, dtype=np.intp)
        adm_dom = np.empty((cap, m), dtype=bool)
        adm_eq = np.empty((cap, m), dtype=bool)
        n_adm = 0

        def batch_rows(vec: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            le = (vec[None, :] <= mat).all(axis=1)
            ge = (vec[None, :] >= mat).all(axis=1)
            eq_row = le & ge
            return le & ~eq_row, eq_row

        total_charge = 0
        pos = 0
        while pos < m:
            n_w = n_old + n_adm
            if n_w == 0:
                # Empty window: the point enters for free.
                admitted[pos] = True
                dom_row, eq_row = batch_rows(mat[pos])
                adm_pos[0] = pos
                adm_dom[0] = dom_row
                adm_eq[0] = eq_row
                n_adm = 1
                np.logical_or(has_dom, dom_row, out=has_dom)
                pos += 1
                continue
            tail = has_dom[pos:]
            first = int(np.argmin(tail))
            if tail[first]:
                first = m - pos
            if first:
                if n_old:
                    dom_old = dom0[:, pos : pos + first]
                    dup = eq0[:, pos : pos + first].any(axis=0)
                    any_old = dom_old.any(axis=0)
                    first_old = live_rank[dom_old.argmax(axis=0)]
                else:
                    dup = np.zeros(first, dtype=bool)
                    any_old = np.zeros(first, dtype=bool)
                    first_old = np.zeros(first, dtype=np.intp)
                if n_adm:
                    dom_adm = adm_dom[:n_adm, pos : pos + first]
                    dup = dup | adm_eq[:n_adm, pos : pos + first].any(axis=0)
                    first_adm = dom_adm.argmax(axis=0) + n_old
                else:
                    first_adm = np.zeros(first, dtype=np.intp)
                # Every rejected point has an *alive* dominator (the
                # eviction-chain invariant), so the old-part position wins
                # when present and the admitted part covers the rest.
                firsts = np.where(any_old, first_old, first_adm)
                charges = np.where(known[pos : pos + first], n_w, firsts + 1)
                total_charge += int(charges.sum())
                duplicate[pos : pos + first] = dup
            j = pos + first
            if j >= m:
                break
            dom_row, eq_row = batch_rows(mat[j])
            admitted[j] = True
            dup_j = bool(eq0[:, j].any()) if n_old else False
            if not dup_j and n_adm:
                dup_j = bool(adm_eq[:n_adm, j].any())
            duplicate[j] = dup_j
            total_charge += n_w
            # Evictions in current-window order: surviving initial entries
            # (physical row order = original order) first, then admitted
            # ones (admission order).
            evs: "list[WindowEntry]" = []
            if n_old:
                kill_old = new_le0[:, j] & ~eq0[:, j]
                if kill_old.any():
                    kill_idx = np.flatnonzero(kill_old)
                    # Eviction report rows carry Python key objects.
                    # caqe-check: disable=CQ009
                    for i in kill_idx.tolist():
                        evs.append(WindowEntry(self._key_list[i], window[i].copy()))
                        killed_rows.append(i)
                    # Dead rows must stop dominating, tying and killing in
                    # later rounds — zero their cached columns and refresh
                    # the live-rank map (rare: old evictions only).
                    dom0[kill_idx] = False
                    eq0[kill_idx] = False
                    new_le0[kill_idx] = False
                    alive0[kill_idx] = False
                    n_old -= kill_idx.size
                    live_rank = np.cumsum(alive0) - alive0
            if n_adm:
                kill_adm = dom_row[adm_pos[:n_adm]]
                if kill_adm.any():
                    # caqe-check: disable=CQ009
                    evs.extend(
                        WindowEntry(keys[p], mat[p].copy())
                        for p in adm_pos[:n_adm][kill_adm].tolist()
                    )
                    keep = ~kill_adm
                    kept = int(keep.sum())
                    adm_pos[:kept] = adm_pos[:n_adm][keep]
                    adm_dom[:kept] = adm_dom[:n_adm][keep]
                    adm_eq[:kept] = adm_eq[:n_adm][keep]
                    n_adm = kept
            evicted[j] = evs
            if n_adm == cap:
                cap *= 2
                grown_pos = np.empty(cap, dtype=np.intp)
                grown_pos[:n_adm] = adm_pos[:n_adm]
                grown_dom = np.empty((cap, m), dtype=bool)
                grown_dom[:n_adm] = adm_dom[:n_adm]
                grown_eq = np.empty((cap, m), dtype=bool)
                grown_eq[:n_adm] = adm_eq[:n_adm]
                adm_pos, adm_dom, adm_eq = grown_pos, grown_dom, grown_eq
            adm_pos[n_adm] = j
            adm_dom[n_adm] = dom_row
            adm_eq[n_adm] = eq_row
            n_adm += 1
            np.logical_or(has_dom, dom_row, out=has_dom)
            pos = j + 1
        if self.counter is not None and total_charge:
            self.counter.record(total_charge)
        # Column-only commit: tombstone evicted old rows, append surviving
        # admissions, sweep if the dead fraction crossed the threshold.
        if killed_rows:
            self._live[killed_rows] = False
            self._live_count -= len(killed_rows)
            for i in killed_rows:
                self._keyset.discard(self._key_list[i])
        if n_adm:
            final_adm = adm_pos[:n_adm]
            self._append_rows(
                # caqe-check: disable=CQ009
                [keys[a] for a in final_adm.tolist()],
                mat[final_adm],
            )
        self._maybe_compact()
        return BatchInsertOutcome(admitted, evicted, duplicate)

    # ------------------------------------------------------------------ #
    # Durability hooks (docs/ARCHITECTURE.md §10): snapshots capture the
    # window's exact entry order because BNL charges depend on it (a
    # rejected insert pays up to its *first* dominator).
    # ------------------------------------------------------------------ #
    def dump_entries(self) -> "tuple[list[Hashable], list[list[float]]]":
        """Window contents in entry order, as JSON-serialisable lists."""
        if self._live_count == self._size:
            keys = list(self._key_list)
            rows = self._store[: self._size].tolist() if self._size else []
        else:
            live_idx = self._live_index()
            # Serialisation boundary: keys/rows leave as Python objects.
            # caqe-check: disable=CQ009
            keys = [self._key_list[i] for i in live_idx.tolist()]
            rows = self._store[live_idx].tolist()
        return keys, rows

    def load_entries(
        self, keys: "Sequence[Hashable]", rows: "Sequence[Sequence[float]]"
    ) -> None:
        """Restore a dumped window verbatim — no comparisons are charged.

        Direct state injection for checkpoint recovery: the entries were
        already paid for when originally inserted, and the restored stats
        snapshot carries those charges.
        """
        if len(keys) != len(rows):
            raise ValueError("window restore: keys/rows length mismatch")
        if len(keys) == 0:
            self._replace_all([], np.empty((0, 0)))
            return
        self._replace_all(list(keys), np.asarray(rows, dtype=float))

    # ------------------------------------------------------------------ #
    def contains_key(self, key: Hashable) -> bool:
        return key in self._keyset

    def remove_key(self, key: Hashable) -> bool:
        """Drop an entry by identity (used when a result is retracted)."""
        if key not in self._keyset:
            return False
        # The hash column narrows the scan to colliding rows; the key side
        # table settles which of them actually holds the key.
        candidates = np.flatnonzero(
            (self._key_hash[: self._size] == hash(key))
            & self._live[: self._size]
        )
        # Collision scan over the key side table (usually one row).
        # caqe-check: disable=CQ009
        for row in candidates.tolist():
            if self._key_list[row] == key:
                self._evict_rows(np.asarray([row], dtype=np.intp))
                self._maybe_compact()
                return True
        return False

    @property
    def keys(self) -> "list[Hashable]":
        if self._live_count == self._size:
            return list(self._key_list)
        # caqe-check: disable=CQ009
        return [self._key_list[i] for i in self._live_index().tolist()]

    @property
    def vectors(self) -> np.ndarray:
        if self._live_count == 0:
            width = len(self.dims) if self.dims is not None else 0
            if self._store is not None:
                width = self._store.shape[1]
            return np.empty((0, width))
        if self._live_count == self._size:
            return self._store[: self._size].copy()
        return self._store[self._live_index()]

    @property
    def admission_rounds(self) -> np.ndarray:
        """Mutation round that admitted each live entry, in entry order."""
        if self._live_count == 0:
            return np.empty(0, dtype=np.int64)
        if self._live_count == self._size:
            return self._admit_round[: self._size].copy()
        return self._admit_round[self._live_index()]

    @property
    def dead_fraction(self) -> float:
        """Tombstoned fraction of physical rows (compaction trigger gauge)."""
        if self._size == 0:
            return 0.0
        return (self._size - self._live_count) / self._size

    def __len__(self) -> int:
        return self._live_count

    def __iter__(self) -> "Iterator[WindowEntry]":
        live_idx = self._live_index() if self._size else np.empty(0, np.intp)
        # caqe-check: disable=CQ009
        return (
            WindowEntry(self._key_list[i], self._store[i].copy())
            for i in live_idx.tolist()
        )

    def __repr__(self) -> str:
        return f"SkylineWindow(dims={self.dims}, size={self._live_count})"


__all__ = ["BatchInsertOutcome", "InsertOutcome", "SkylineWindow", "WindowEntry"]
