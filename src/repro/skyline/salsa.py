"""SaLSa — Sort and Limit Skyline algorithm (Bartolini et al. [2]).

Like SFS, SaLSa presorts the input by a monotone function, but it also
maintains a *stop point*: once the minimum-coordinate statistic of the best
tuple seen so far proves that no unseen tuple can enter the skyline, the
scan terminates without reading the rest of the input ("computing the
skyline without scanning the whole sky").

We use the ``minC`` variant: sorting key ``min_k(v_k)`` (ties broken by the
sum), stop condition ``max_k(stop_k) <= key(next)`` where ``stop`` is the
coordinate-wise minimum... concretely, with the min-based key the scan can
stop at the first unseen tuple whose key exceeds the *minimum over
dimensions of the maximum coordinate* of some seen skyline point — we keep
the simplest sound form: stop when the smallest unseen sort key is at least
``min_k(p_k^max)`` for the current best stop point ``p``.

The practical upshot measured by the tests: identical skylines to BNL/SFS,
never more input tuples examined than the full scan, and often far fewer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


def salsa_order(points: np.ndarray, dims: "Sequence[int] | None" = None) -> np.ndarray:
    """SaLSa's minC sort: ascending min coordinate, then sum."""
    matrix = np.asarray(points, dtype=float)
    view = matrix if dims is None else matrix[:, list(dims)]
    mins = view.min(axis=1)
    sums = view.sum(axis=1)
    return np.lexsort((sums, mins))


def salsa_skyline(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "tuple[list[int], int]":
    """Skyline row-indices plus the number of input tuples examined.

    The second return value is SaLSa's selling point: it may be well below
    ``len(points)`` when an early tuple dominates aggressively.
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix of points, got shape {matrix.shape}")
    view = matrix if dims is None else matrix[:, list(dims)]
    order = salsa_order(matrix, dims)
    window = SkylineWindow(dims=dims, counter=counter)
    # Stop value: the minimum over seen skyline points of their maximum
    # coordinate.  Any unseen tuple q has min_k(q_k) >= its sort key; if
    # key(q) > stop then the stop point p satisfies p_k <= max_j p_j = stop
    # < min_k q_k <= q_k for every k, i.e. p dominates q.
    stop = np.inf
    examined = 0
    keys = view[order].min(axis=1)
    for position, row in enumerate(order):
        if keys[position] > stop:
            break
        examined += 1
        outcome = window.insert(int(row), matrix[row])
        if outcome.admitted:
            stop = min(stop, float(view[row].max()))
    return sorted(window.keys), examined


__all__ = ["salsa_order", "salsa_skyline"]
