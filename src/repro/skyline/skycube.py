"""The full skycube (Yuan et al. [36], the paper's Figure 5).

A skycube holds the skyline of a point set over *every* non-empty subspace
of its ``d`` dimensions — ``2^d - 1`` skylines.  The paper contrasts this
against its pruned min-max cuboid (Figure 6); we implement the full cube
both as the baseline substrate and to validate the cuboid against it.

Two computation strategies are provided:

* :func:`compute_naive` — an independent BNL per subspace (no sharing);
* :func:`compute_shared` — bottom-up with the Theorem 1 / Corollary 1
  shortcut (requires the DVA property): points already in any child
  subspace's skyline are admitted to the parent without membership checks.

Both return identical skylines under DVA; the shared variant performs
strictly fewer pairwise comparisons, which the tests assert.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.skyline import dva
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow

Subspace = "frozenset[int]"


def all_subspaces(d: int) -> "list[frozenset[int]]":
    """Every non-empty subset of ``range(d)``, smallest first (2^d - 1 of them)."""
    if d < 1:
        raise ReproError(f"dimensionality must be >= 1, got {d}")
    out: list[frozenset[int]] = []
    for size in range(1, d + 1):
        for combo in combinations(range(d), size):
            out.append(frozenset(combo))
    return out


class Skycube:
    """Mapping from subspace (frozenset of column indices) to skyline indices."""

    def __init__(
        self, dimensions: int, skylines: "dict[frozenset[int], frozenset[int]]"
    ) -> None:
        self.dimensions = dimensions
        self._skylines = dict(skylines)

    def skyline(self, subspace: "Iterable[int]") -> "frozenset[int]":
        key = frozenset(subspace)
        try:
            return self._skylines[key]
        except KeyError:
            raise ReproError(f"subspace {sorted(key)} not materialised in this skycube") from None

    @property
    def subspaces(self) -> "list[frozenset[int]]":
        return sorted(self._skylines, key=lambda s: (len(s), sorted(s)))

    def __len__(self) -> int:
        return len(self._skylines)

    def __contains__(self, subspace: object) -> bool:
        return frozenset(subspace) in self._skylines  # type: ignore[arg-type]


def compute_naive(
    points: np.ndarray,
    counter: "ComparisonCounter | None" = None,
) -> Skycube:
    """One independent BNL per subspace — the no-sharing baseline."""
    matrix = np.asarray(points, dtype=float)
    d = matrix.shape[1]
    skylines = {
        sub: frozenset(bnl_skyline(matrix, dims=sorted(sub), counter=counter))
        for sub in all_subspaces(d)
    }
    return Skycube(d, skylines)


def compute_shared(
    points: np.ndarray,
    counter: "ComparisonCounter | None" = None,
    *,
    assume_dva: "bool | None" = None,
) -> Skycube:
    """Bottom-up skycube with child-to-parent sharing (Theorem 1).

    ``assume_dva=None`` verifies the property on the data; pass ``True`` to
    skip the check (e.g. for real-valued generated data) or ``False`` to
    force the per-subspace fallback.
    """
    matrix = np.asarray(points, dtype=float)
    d = matrix.shape[1]
    if assume_dva is None:
        assume_dva = dva.holds(matrix)
    if not assume_dva:
        # Without DVA, child skylines need not be subsets of parents; fall
        # back to independent evaluation, which is always correct.
        return compute_naive(matrix, counter)

    skylines: dict[frozenset[int], frozenset[int]] = {}
    for sub in all_subspaces(d):
        dims = sorted(sub)
        seeded: set[int] = set()
        for drop in dims:
            child = sub - {drop}
            if child and child in skylines:
                seeded |= skylines[child]
        window = SkylineWindow(dims=dims, counter=counter)
        # Seed guaranteed members first (no membership checks, Corollary 1) …
        for idx in sorted(seeded):
            window.insert_known_member(idx, matrix[idx])
        # … then test the remaining points normally.
        for idx in range(len(matrix)):
            if idx not in seeded:
                window.insert(idx, matrix[idx])
        skylines[sub] = frozenset(window.keys)
    return Skycube(d, skylines)


__all__ = ["Skycube", "all_subspaces", "compute_naive", "compute_shared"]
