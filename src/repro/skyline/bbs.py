"""BBS — Branch-and-Bound Skyline (Papadias et al. [23]).

The optimal progressive skyline algorithm over an R-tree: expand index
entries from a min-heap ordered by ``mindist`` (L1 distance of the MBR's
lower corner from the origin).  A popped *point* that survives dominance
against the current skyline is immediately **final** — BBS's signature
progressiveness property — and a popped *node* whose lower corner is
dominated can be pruned wholesale without reading its subtree.

BBS touches each necessary node exactly once and performs dominance tests
only against confirmed skyline points, which is why [23] proves it I/O
optimal; the tests assert both the exact result and that it examines no
more points than BNL does.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.rtree import RTree, RTreeNode
from repro.skyline.window import SkylineWindow


def bbs_skyline_stream(
    tree: RTree,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "Iterator[int]":
    """Yield skyline row indices progressively (each is final on yield)."""
    matrix = tree.points
    if len(matrix) == 0:
        return
    dim_list = list(dims) if dims is not None else list(range(matrix.shape[1]))
    window = SkylineWindow(dims=tuple(dim_list))
    tiebreak = itertools.count()
    heap: list = []

    def push_node(node: "RTreeNode") -> None:
        heapq.heappush(
            heap, (float(node.lower[dim_list].sum()), next(tiebreak), "node", node)
        )

    def push_point(row: int) -> None:
        heapq.heappush(
            heap,
            (float(matrix[row][dim_list].sum()), next(tiebreak), "point", row),
        )

    def dominated(vector: np.ndarray) -> bool:
        """Is ``vector`` (over dims) dominated by a confirmed result?"""
        confirmed = window.vectors
        if counter is not None and len(confirmed):
            counter.record(len(confirmed))
        if not len(confirmed):
            return False
        le = np.all(confirmed <= vector, axis=1)
        lt = np.any(confirmed < vector, axis=1)
        return bool(np.any(le & lt))

    push_node(tree.root)
    while heap:
        _, _, kind, item = heapq.heappop(heap)
        if kind == "point":
            vector = matrix[item][dim_list]
            if not dominated(vector):
                window.insert(item, matrix[item])
                yield int(item)
        else:
            if dominated(item.lower[dim_list]):
                continue  # the entire subtree is dominated
            if item.is_leaf:
                for row in item.entries:
                    push_point(row)
            else:
                for child in item.children:
                    push_node(child)


def bbs_skyline(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
    *,
    fanout: int = 8,
) -> "list[int]":
    """Skyline row-indices via BBS (builds the R-tree internally)."""
    tree = RTree(points, fanout=fanout)
    return sorted(bbs_skyline_stream(tree, dims=dims, counter=counter))


__all__ = ["bbs_skyline", "bbs_skyline_stream"]
