"""A minimal in-memory R-tree (STR bulk-loaded) for index-based skylines.

The paper's related work (§8) contrasts non-index skyline algorithms (BNL,
SFS) with index-based ones — Nearest Neighbor [16] and Branch-and-Bound
Skyline [23] — both of which need a spatial index over the data.  This
module supplies that substrate: a static R-tree bulk-loaded with the
Sort-Tile-Recursive (STR) packing algorithm, exposing exactly what BBS
needs — per-node minimum bounding rectangles and child traversal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

#: Default maximum entries per node.
DEFAULT_FANOUT = 8


@dataclass
class RTreeNode:
    """One node: either ``children`` (internal) or ``entries`` (leaf)."""

    lower: np.ndarray
    upper: np.ndarray
    children: "list[RTreeNode]" = field(default_factory=list)
    #: Leaf payload: row indices into the indexed matrix.
    entries: "list[int]" = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def mindist(self) -> float:
        """L1 distance of the MBR's lower corner from the origin — the
        monotone priority BBS expands nodes by."""
        return float(self.lower.sum())


class RTree:
    """Static STR-packed R-tree over a point matrix."""

    def __init__(self, points: np.ndarray, fanout: int = DEFAULT_FANOUT) -> None:
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2:
            raise ReproError(f"expected a 2-d matrix, got shape {matrix.shape}")
        if fanout < 2:
            raise ReproError(f"fanout must be >= 2, got {fanout}")
        self.points = matrix
        self.fanout = fanout
        self.root = self._bulk_load(matrix, fanout)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _leaf(matrix: np.ndarray, rows: np.ndarray) -> RTreeNode:
        block = matrix[rows]
        return RTreeNode(
            lower=block.min(axis=0),
            upper=block.max(axis=0),
            entries=[int(r) for r in rows],
        )

    @classmethod
    def _str_tile(
        cls, matrix: np.ndarray, rows: np.ndarray, fanout: int, axis: int
    ) -> "list[np.ndarray]":
        """Sort-Tile-Recursive partitioning of ``rows`` into leaf groups."""
        if len(rows) <= fanout:
            return [rows]
        d = matrix.shape[1]
        ordered = rows[np.argsort(matrix[rows, axis % d], kind="stable")]
        leaves_needed = math.ceil(len(rows) / fanout)
        slabs = max(1, round(leaves_needed ** (1.0 / max(d - axis, 1))))
        slab_size = math.ceil(len(rows) / slabs)
        groups: list[np.ndarray] = []
        for start in range(0, len(ordered), slab_size):
            slab = ordered[start : start + slab_size]
            if axis + 1 < d and len(slab) > fanout:
                groups.extend(cls._str_tile(matrix, slab, fanout, axis + 1))
            else:
                for leaf_start in range(0, len(slab), fanout):
                    groups.append(slab[leaf_start : leaf_start + fanout])
        return groups

    @classmethod
    def _bulk_load(cls, matrix: np.ndarray, fanout: int) -> RTreeNode:
        if len(matrix) == 0:
            width = matrix.shape[1] if matrix.ndim == 2 else 0
            return RTreeNode(lower=np.zeros(width), upper=np.zeros(width))
        rows = np.arange(len(matrix), dtype=np.intp)
        groups = cls._str_tile(matrix, rows, fanout, axis=0)
        level: list[RTreeNode] = [cls._leaf(matrix, g) for g in groups if len(g)]
        while len(level) > 1:
            parents: list[RTreeNode] = []
            # Pack siblings in lower-corner-sum order to keep MBRs tight.
            level.sort(key=lambda n: float(n.lower.sum()))
            for start in range(0, len(level), fanout):
                children = level[start : start + fanout]
                parents.append(
                    RTreeNode(
                        lower=np.min([c.lower for c in children], axis=0),
                        upper=np.max([c.upper for c in children], axis=0),
                        children=children,
                    )
                )
            level = parents
        return level[0]

    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        def count(node: RTreeNode) -> int:
            return 1 + sum(count(c) for c in node.children)

        return count(self.root)

    def __len__(self) -> int:
        return len(self.points)


__all__ = ["DEFAULT_FANOUT", "RTree", "RTreeNode"]
