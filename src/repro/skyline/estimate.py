"""Skyline cardinality estimation.

Two estimators back CAQE's benefit model:

* :func:`buchta_skyline_size` — the closed form of Buchta [4] the paper's
  Equation 9 uses: for ``n`` independently distributed ``d``-dimensional
  points the expected skyline size is ``ln(n)^(d-1) / (d-1)!``.
* :class:`SampledSkylineEstimator` — the robust log-sampling approach of
  Chaudhuri et al. [5] (cited by the paper when noting that "cardinality
  estimation is very error prone" for skylines): fit ``s = A * ln(n)^B``
  from skyline sizes measured on nested samples of the actual data, which
  adapts to correlated and anti-correlated distributions where the
  independence assumption behind Buchta's formula fails badly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.rng import ensure_rng


def buchta_skyline_size(n: float, d: int) -> float:
    """Expected skyline cardinality of ``n`` independent ``d``-d points."""
    if d < 1:
        raise ReproError(f"dimensionality must be >= 1, got {d}")
    if n <= 1.0:
        return max(0.0, float(n))
    return math.log(n) ** (d - 1) / math.factorial(d - 1)


def region_cardinality(
    selectivity: float,
    left_count: int,
    right_count: int,
    d: int,
) -> float:
    """Equation 9: estimated skyline results a region can produce.

    ``left_count`` / ``right_count`` are the cardinalities of the input
    cells feeding the region; ``d`` is the query's skyline dimensionality.
    """
    if left_count < 0 or right_count < 0:
        raise ReproError("cell cardinalities must be non-negative")
    if not 0.0 <= selectivity <= 1.0:
        raise ReproError(f"selectivity must be in [0, 1], got {selectivity}")
    join_estimate = selectivity * left_count * right_count
    return buchta_skyline_size(join_estimate, d)


class SampledSkylineEstimator:
    """Log-sampling skyline-cardinality model (after Chaudhuri et al. [5]).

    Fitted once per dataset/subspace from skyline sizes of nested random
    samples; :meth:`predict` then extrapolates ``s(n) = A * ln(n)^B`` to
    any input size.  ``B`` is clamped to ``[0, d]`` and ``A >= 0`` so the
    model stays sane on degenerate fits.
    """

    def __init__(self, coefficient: float, exponent: float) -> None:
        if coefficient < 0:
            raise ReproError(f"coefficient must be >= 0, got {coefficient}")
        self.coefficient = float(coefficient)
        self.exponent = float(exponent)

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        dims: "tuple[int, ...] | None" = None,
        *,
        sample_sizes: "tuple[int, ...] | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> "SampledSkylineEstimator":
        """Fit from nested samples of ``points`` over ``dims``."""
        from repro.skyline.bnl import bnl_skyline

        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2 or len(matrix) < 4:
            raise ReproError("need a 2-d matrix with at least 4 rows to fit")
        d = len(dims) if dims is not None else matrix.shape[1]
        rng = ensure_rng(seed)
        order = rng.permutation(len(matrix))
        n = len(matrix)
        if sample_sizes is None:
            sizes, size = [], n
            while size >= 4 and len(sizes) < 5:
                sizes.append(size)
                size //= 2
            sample_sizes = tuple(reversed(sizes))
        xs, ys = [], []
        for size in sample_sizes:
            if size < 2 or size > n:
                continue
            sample = matrix[order[:size]]
            sky = len(bnl_skyline(sample, dims=dims))
            xs.append(math.log(math.log(max(size, 3))))
            ys.append(math.log(max(sky, 1)))
        if len(xs) < 2 or len(set(xs)) < 2:
            raise ReproError("not enough distinct sample sizes to fit")
        slope, intercept = np.polyfit(xs, ys, 1)
        exponent = float(np.clip(slope, 0.0, d))
        coefficient = float(math.exp(intercept))
        return cls(coefficient, exponent)

    def predict(self, n: float) -> float:
        """Estimated skyline size of an ``n``-point input."""
        if n <= 1.0:
            return max(0.0, float(n))
        return self.coefficient * math.log(n) ** self.exponent

    def __repr__(self) -> str:
        return (
            f"SampledSkylineEstimator(s(n) ~ {self.coefficient:.3g} "
            f"* ln(n)^{self.exponent:.3g})"
        )


__all__ = [
    "SampledSkylineEstimator",
    "buchta_skyline_size",
    "region_cardinality",
]
