"""Skyline substrate: dominance, windows, BNL/SFS, skycube, estimation."""

from repro.skyline.bbs import bbs_skyline, bbs_skyline_stream
from repro.skyline.bnl import bnl_skyline
from repro.skyline.csc import CompressedSkycube
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import (
    ComparisonCounter,
    Dominance,
    compare,
    dominance_broadcast,
    dominance_mask,
    dominates,
)
from repro.skyline.estimate import (
    SampledSkylineEstimator,
    buchta_skyline_size,
    region_cardinality,
)
from repro.skyline.rtree import RTree, RTreeNode
from repro.skyline.salsa import salsa_order, salsa_skyline
from repro.skyline.sfs import sfs_order, sfs_skyline, sfs_skyline_stream
from repro.skyline.skyband import SkybandWindow, k_skyband
from repro.skyline.skycube import Skycube, all_subspaces, compute_naive, compute_shared
from repro.skyline.window import InsertOutcome, SkylineWindow, WindowEntry

__all__ = [
    "ComparisonCounter",
    "CompressedSkycube",
    "Dominance",
    "InsertOutcome",
    "RTree",
    "RTreeNode",
    "SampledSkylineEstimator",
    "Skycube",
    "bbs_skyline",
    "bbs_skyline_stream",
    "SkybandWindow",
    "SkylineWindow",
    "WindowEntry",
    "all_subspaces",
    "bnl_skyline",
    "buchta_skyline_size",
    "compare",
    "compute_naive",
    "compute_shared",
    "dnc_skyline",
    "dominance_broadcast",
    "dominance_mask",
    "dominates",
    "k_skyband",
    "region_cardinality",
    "salsa_order",
    "salsa_skyline",
    "sfs_order",
    "sfs_skyline",
    "sfs_skyline_stream",
]
