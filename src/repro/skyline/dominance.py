"""Tuple-level dominance tests (Definitions 1 and 2).

All tests use the paper's convention: attribute values are non-negative and
*smaller values are preferred*.  ``a`` dominates ``b`` over dimensions ``V``
iff ``a`` is no worse than ``b`` in every dimension of ``V`` and strictly
better in at least one.

Pairwise dominance comparisons are the CPU-cost unit the paper reports
(Figure 10b), so every function here takes an optional
:class:`ComparisonCounter` and charges exactly one comparison per invoked
pair test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class ComparisonCounter:
    """Counts pairwise dominance comparisons (the paper's CPU metric)."""

    comparisons: int = 0
    #: Optional callback invoked with the increment, letting the virtual
    #: clock charge time for each comparison without a hard dependency.
    on_increment: "callable | None" = field(default=None, repr=False)

    def record(self, count: int = 1) -> None:
        self.comparisons += count
        if self.on_increment is not None:
            self.on_increment(count)


class Dominance(enum.Enum):
    """Outcome of a single pairwise comparison."""

    LEFT = "left"                  # a dominates b
    RIGHT = "right"                # b dominates a
    EQUAL = "equal"                # identical over the compared dims
    INCOMPARABLE = "incomparable"  # each better somewhere


#: Reusable index arrays per dims tuple — ``_subspace`` runs once per pair
#: test, so rebuilding ``list(dims)`` and re-running ``np.asarray`` on every
#: call dominates the cost of the comparison itself.
_DIMS_INDEX_CACHE: "dict[tuple[int, ...], np.ndarray]" = {}


def dims_index(dims: "Sequence[int]") -> np.ndarray:
    """A cached ``np.intp`` index array for one subspace's dimensions."""
    key = tuple(dims)
    index = _DIMS_INDEX_CACHE.get(key)
    if index is None:
        index = np.asarray(key, dtype=np.intp)
        _DIMS_INDEX_CACHE[key] = index
    return index


def _subspace(point: np.ndarray, dims: "Sequence[int] | None") -> np.ndarray:
    vec = np.asarray(point, dtype=float)
    if dims is None:
        return vec
    return vec[dims_index(dims)]


def compare(
    a: np.ndarray,
    b: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> Dominance:
    """Full three-way comparison of ``a`` vs ``b`` over ``dims``."""
    if counter is not None:
        counter.record()
    av = _subspace(a, dims)
    bv = _subspace(b, dims)
    a_le = bool(np.all(av <= bv))
    b_le = bool(np.all(bv <= av))
    if a_le and b_le:
        return Dominance.EQUAL
    if a_le:
        return Dominance.LEFT
    if b_le:
        return Dominance.RIGHT
    return Dominance.INCOMPARABLE


def dominates(
    a: np.ndarray,
    b: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> bool:
    """Definition 1 / 2: ``a`` strictly dominates ``b`` over ``dims``."""
    if counter is not None:
        counter.record()
    av = _subspace(a, dims)
    bv = _subspace(b, dims)
    return bool(np.all(av <= bv) and np.any(av < bv))


def dominance_broadcast(
    dominators: np.ndarray,
    candidates: np.ndarray,
    axis: int = -1,
) -> np.ndarray:
    """Broadcast form of Definition 1: ``all(<=, axis) & any(<, axis)``.

    ``dominators`` and ``candidates`` are broadcast against each other and
    reduced over ``axis`` (the attribute axis).  No comparisons are
    charged — callers on charged paths account for their own counts; this
    is the single audited implementation that CQ002 requires every
    vectorised dominance test to flow through.
    """
    le = (dominators <= candidates).all(axis=axis)
    lt = (dominators < candidates).any(axis=axis)
    return le & lt


def dominance_mask(dominators: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Cross mask: ``mask[i, j]`` iff ``dominators[i]`` dominates
    ``candidates[j]`` (both inputs ``(n, d)`` / ``(m, d)`` row matrices)."""
    return dominance_broadcast(
        dominators[:, None, :], candidates[None, :, :], axis=2
    )


def dominates_matrix(
    points: np.ndarray,
    candidate: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> bool:
    """True iff any row of ``points`` dominates ``candidate``.

    Vectorised helper used by the reference evaluator; charges one
    comparison per row actually examined (all of them — the vectorised form
    cannot short-circuit, matching a worst-case BNL pass).
    """
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        return False
    if dims is not None:
        pts = pts[:, dims_index(dims)]
        candidate = _subspace(candidate, dims)
    if counter is not None:
        counter.record(len(pts))
    le = np.all(pts <= candidate, axis=1)
    lt = np.any(pts < candidate, axis=1)
    return bool(np.any(le & lt))


__all__ = [
    "ComparisonCounter",
    "Dominance",
    "compare",
    "dims_index",
    "dominance_broadcast",
    "dominance_mask",
    "dominates",
    "dominates_matrix",
]
