"""K-skyband: tuples dominated by fewer than ``k`` others.

The skyline is the 1-skyband.  Progressive decision-support applications
use skybands to hedge against retraction: a tuple in the k-skyband stays a
top candidate even if up to ``k - 1`` better tuples arrive later.  This is
the paper's natural "richer result sets" extension — the contract model
and the executors are agnostic to which band the consumer asked for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.skyline.dominance import ComparisonCounter


@dataclass
class BandEntry:
    key: Hashable
    vector: np.ndarray
    dominated_by: int = 0


@dataclass
class SkybandWindow:
    """Incremental k-skyband maintenance (generalises SkylineWindow).

    Keeps every point dominated by fewer than ``k`` *current band members*
    whose own dominance count is...  precisely: a point belongs to the
    k-skyband of the inserted set iff fewer than ``k`` inserted points
    dominate it; dominators that are themselves dominated still count, so
    the window tracks counts against *all* inserted points that remain
    possible dominators — which is all points in the band plus none other,
    because a point outside the band (dominated >= k times) cannot be
    needed to certify another point's exclusion (its own k dominators
    transitively dominate the victim too).
    """

    k: int = 1
    dims: "tuple[int, ...] | None" = None
    counter: "ComparisonCounter | None" = None
    _entries: "list[BandEntry]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ReproError(f"k must be >= 1, got {self.k}")

    def _project(self, point: np.ndarray) -> np.ndarray:
        vec = np.asarray(point, dtype=float)
        if self.dims is not None:
            vec = vec[list(self.dims)]
        return vec

    def insert(self, key: Hashable, point: np.ndarray) -> bool:
        """Insert; returns True iff the point is currently in the band."""
        vec = self._project(point)
        dominated_by = 0
        for entry in self._entries:
            if self.counter is not None:
                self.counter.record()
            if bool(np.all(entry.vector <= vec) and np.any(entry.vector < vec)):
                dominated_by += 1
            elif bool(np.all(vec <= entry.vector) and np.any(vec < entry.vector)):
                entry.dominated_by += 1
        self._entries = [e for e in self._entries if e.dominated_by < self.k]
        if dominated_by < self.k:
            self._entries.append(
                BandEntry(key=key, vector=vec, dominated_by=dominated_by)
            )
            return True
        return False

    @property
    def keys(self) -> "list[Hashable]":
        return [e.key for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


def k_skyband(
    points: np.ndarray,
    k: int,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "list[int]":
    """Row indices of the k-skyband (ascending order)."""
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ReproError(f"expected a 2-d matrix of points, got shape {matrix.shape}")
    window = SkybandWindow(
        k=k, dims=tuple(dims) if dims is not None else None, counter=counter
    )
    for row in range(len(matrix)):
        window.insert(row, matrix[row])
    return sorted(window.keys)


__all__ = ["BandEntry", "SkybandWindow", "k_skyband"]
