"""Sort-Filter-Skyline (Chomicki et al. [6]).

SFS presorts the input by a monotone scoring function (we use the
entropy-free sum of the compared dimensions).  After sorting, a point can
never be dominated by a *later* point, so the window never evicts: every
admitted point is final, which is what makes SFS the natural engine for
sort-based progressive baselines such as SSMJ.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


def sfs_order(points: np.ndarray, dims: "Sequence[int] | None" = None) -> np.ndarray:
    """Row order used by SFS: ascending sum over the compared dimensions."""
    matrix = np.asarray(points, dtype=float)
    view = matrix if dims is None else matrix[:, list(dims)]
    scores = view.sum(axis=1)
    return np.argsort(scores, kind="stable")


def sfs_skyline(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "list[int]":
    """Skyline row-indices via SFS (ascending index order)."""
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix of points, got shape {matrix.shape}")
    window = SkylineWindow(dims=dims, counter=counter)
    for row_index in sfs_order(matrix, dims):
        # With exact arithmetic the presort makes evictions impossible; with
        # float64 score ties a dominating point can land after its victim,
        # so the window's normal eviction path handles those corner cases.
        window.insert(int(row_index), matrix[row_index])
    return sorted(window.keys)


def sfs_skyline_stream(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "Iterator[int]":
    """Yield skyline row-indices in SFS emission order (progressive form).

    Because the presort guarantees admitted points are final, each yielded
    index is immediately a confirmed skyline member — progressive baselines
    report results as this generator produces them.
    """
    matrix = np.asarray(points, dtype=float)
    window = SkylineWindow(dims=dims, counter=counter)
    for row_index in sfs_order(matrix, dims):
        outcome = window.insert(int(row_index), matrix[row_index])
        if outcome.admitted:
            yield int(row_index)


__all__ = ["sfs_order", "sfs_skyline", "sfs_skyline_stream"]
