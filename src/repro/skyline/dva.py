"""The Distinct Value Attributes (DVA) property [36].

DVA states that no two tuples share the same value in any single skyline
dimension.  Under DVA, a subspace skyline is contained in every superspace
skyline (Theorem 1), which is what lets the min-max cuboid reuse child
results without re-checking dominance.  Real-valued benchmark data satisfies
DVA with probability one; hand-crafted or integer data may not, so the
shared plan verifies (or is told) whether it may take the shortcut.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def holds(points: np.ndarray, dims: "Sequence[int] | None" = None) -> bool:
    """True iff no two rows share a value in any checked dimension."""
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {matrix.shape}")
    columns = range(matrix.shape[1]) if dims is None else dims
    for col in columns:
        values = matrix[:, col]
        if len(np.unique(values)) != len(values):
            return False
    return True


def violating_dimensions(points: np.ndarray) -> "list[int]":
    """Dimensions in which at least one value repeats."""
    matrix = np.asarray(points, dtype=float)
    return [
        col
        for col in range(matrix.shape[1])
        if len(np.unique(matrix[:, col])) != len(matrix[:, col])
    ]


__all__ = ["holds", "violating_dimensions"]
