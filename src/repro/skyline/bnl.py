"""Block-Nested-Loop skyline (Börzsönyi et al. [3]).

The straightforward non-index algorithm: stream every point through a
skyline window.  Returns the *indices* of skyline rows so callers can carry
payload columns alongside.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


def bnl_skyline(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "list[int]":
    """Skyline row-indices of ``points`` over ``dims`` (ascending order)."""
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix of points, got shape {matrix.shape}")
    window = SkylineWindow(dims=dims, counter=counter)
    for row_index in range(len(matrix)):
        window.insert(row_index, matrix[row_index])
    return sorted(window.keys)


__all__ = ["bnl_skyline"]
