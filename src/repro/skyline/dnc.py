"""Divide-and-conquer skyline (Börzsönyi et al. [3], basic variant).

Splits the input by the median of the first compared dimension, computes
both halves' skylines recursively, and merges: points of the worse half
survive only if no point of the better half dominates them.  Comparisons
are charged per pair test like every other algorithm in this package.

The merge is the textbook quadratic variant (sufficient at reproduction
scale); the asymptotically optimal multi-dimensional merge would change
constants, not results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.skyline.dominance import ComparisonCounter, dominates

#: Below this size the recursion bottoms out into a window scan.
_BASE_CASE = 16


def _bnl_base(
    matrix: np.ndarray,
    rows: "list[int]",
    dims: "tuple[int, ...]",
    counter: "ComparisonCounter | None",
) -> "list[int]":
    from repro.skyline.window import SkylineWindow

    window = SkylineWindow(dims=dims, counter=counter)
    for row in rows:
        window.insert(row, matrix[row])
    return sorted(window.keys)


def _dominates(
    a: np.ndarray, b: np.ndarray, counter: "ComparisonCounter | None"
) -> bool:
    return dominates(a, b, counter=counter)


def _merge(
    matrix: np.ndarray,
    better: "list[int]",
    worse: "list[int]",
    dims: "list[int]",
    counter: "ComparisonCounter | None",
) -> "list[int]":
    survivors = list(better)
    for row in worse:
        candidate = matrix[row][dims]
        if not any(
            _dominates(matrix[other][dims], candidate, counter) for other in better
        ):
            survivors.append(row)
    return survivors


def _dnc(
    matrix: np.ndarray,
    rows: "list[int]",
    dims: "list[int]",
    counter: "ComparisonCounter | None",
) -> "list[int]":
    if len(rows) <= _BASE_CASE:
        return _bnl_base(matrix, rows, tuple(dims), counter)
    values = matrix[rows][:, dims[0]]
    median = float(np.median(values))
    low = [r for r in rows if matrix[r][dims[0]] <= median]
    high = [r for r in rows if matrix[r][dims[0]] > median]
    if not low or not high:
        # Degenerate split (many ties at the median): fall back.
        return _bnl_base(matrix, rows, tuple(dims), counter)
    sky_low = _dnc(matrix, low, dims, counter)
    sky_high = _dnc(matrix, high, dims, counter)
    return _merge(matrix, sky_low, sky_high, dims, counter)


def dnc_skyline(
    points: np.ndarray,
    dims: "Sequence[int] | None" = None,
    counter: "ComparisonCounter | None" = None,
) -> "list[int]":
    """Skyline row-indices via divide and conquer (ascending order)."""
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix of points, got shape {matrix.shape}")
    if len(matrix) == 0:
        return []
    dim_list = list(dims) if dims is not None else list(range(matrix.shape[1]))
    return sorted(_dnc(matrix, list(range(len(matrix))), dim_list, counter))


__all__ = ["dnc_skyline"]
