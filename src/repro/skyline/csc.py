"""Compressed skycube (after Xia & Zhang [34]).

The full skycube stores each tuple once per subspace skyline it belongs to
— up to ``2^d - 1`` copies.  The compressed skycube (CSC) stores a tuple
only in its **minimal subspaces**: the subspaces ``U`` where it is in the
skyline while being in no skyline of any proper subset of ``U``.  Under
the DVA property a tuple belongs to ``SKY_V`` iff one of its minimal
subspaces is contained in ``V`` (Theorem 1's upward closure), so any
subspace skyline can be reconstructed from the compressed form.

The paper cites CSC as the update-friendly alternative shared structure;
this module provides it as a substrate plus the storage-size comparison
the ablation bench reports.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.skyline import dva
from repro.skyline.dominance import ComparisonCounter
from repro.skyline.skycube import Skycube, all_subspaces, compute_shared


class CompressedSkycube:
    """Minimal-subspace storage of all ``2^d - 1`` subspace skylines."""

    def __init__(
        self, dimensions: int, minimal: "dict[int, set[frozenset[int]]]"
    ) -> None:
        self.dimensions = dimensions
        #: row index -> set of minimal subspaces (possibly empty).
        self._minimal = minimal

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        counter: "ComparisonCounter | None" = None,
    ) -> "CompressedSkycube":
        """Build from data (requires the DVA property for reconstruction)."""
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2:
            raise ReproError(f"expected a 2-d matrix, got shape {matrix.shape}")
        if len(matrix) and not dva.holds(matrix):
            raise ReproError(
                "compressed skycube reconstruction requires the DVA property"
            )
        cube = compute_shared(matrix, counter, assume_dva=True)
        d = matrix.shape[1]
        minimal: dict[int, set[frozenset[int]]] = {i: set() for i in range(len(matrix))}
        for sub in all_subspaces(d):
            members = cube.skyline(sub)
            for row in members:
                # Minimal iff the tuple is in no child subspace's skyline.
                if not any(
                    row in cube.skyline(sub - {drop})
                    for drop in sub
                    if len(sub) > 1
                ):
                    minimal[row].add(sub)
        return cls(d, minimal)

    # ------------------------------------------------------------------ #
    def minimal_subspaces(self, row: int) -> "set[frozenset[int]]":
        try:
            return set(self._minimal[row])
        except KeyError:
            raise ReproError(f"row {row} was not part of this skycube") from None

    def skyline(self, subspace: "Iterable[int]") -> "frozenset[int]":
        """Reconstruct ``SKY_U``: rows with a minimal subspace inside ``U``."""
        target = frozenset(subspace)
        if not target or not target <= set(range(self.dimensions)):
            raise ReproError(f"invalid subspace {sorted(target)}")
        return frozenset(
            row
            for row, subs in self._minimal.items()
            if any(m <= target for m in subs)
        )

    # ------------------------------------------------------------------ #
    @property
    def stored_entries(self) -> int:
        """Total (tuple, subspace) entries the compressed form keeps."""
        return sum(len(subs) for subs in self._minimal.values())

    @staticmethod
    def full_entries(cube: Skycube) -> int:
        """Entries the uncompressed skycube would store."""
        return sum(len(cube.skyline(sub)) for sub in cube.subspaces)

    def compression_ratio(self, cube: Skycube) -> float:
        full = self.full_entries(cube)
        return self.stored_entries / full if full else 1.0


__all__ = ["CompressedSkycube"]
