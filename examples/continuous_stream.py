#!/usr/bin/env python3
"""Continuous CAQE: contract-driven skylines over an append-only stream.

The paper's motivating applications are streams (stock tickers, travel
feeds).  This example drives the epoch-based extension: batches of new
Quotes and Sentiment rows arrive, each epoch's delta join is processed on
the persistent shared plan, and consumers receive a changelog — newly
confirmed skyline packages plus retractions of results that newer data
dominated.

Run:  python examples/continuous_stream.py
"""

import numpy as np

from repro import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    Workload,
    c2,
    reference_evaluate,
)
from repro.core import CAQEConfig, ContinuousCAQE
from repro.datagen import domains
from repro.query.mapping import add, left_only, right_only

# The full day's feeds, delivered in four batches of 100 rows each.
quotes = domains.quotes(400, seed=21)
sentiment = domains.sentiment(400, seed=22)

by_ticker = JoinCondition.on("ticker", name="by_ticker")
functions = (
    left_only("volatility"),
    add("spread", "source_risk", "trade_risk"),
    right_only("neg_sentiment"),
)
workload = Workload(
    [
        SkylineJoinQuery(
            "steady", by_ticker, functions,
            Preference.over("volatility", "trade_risk"), priority=0.8,
        ),
        SkylineJoinQuery(
            "contrarian", by_ticker, functions,
            Preference.over("trade_risk", "neg_sentiment"), priority=0.4,
        ),
    ]
)

engine = ContinuousCAQE(
    workload,
    {q.name: c2(scale=5_000.0) for q in workload},
    CAQEConfig(target_cells=8),
)

print("Continuous CAQE over 4 epochs of 100 quotes + 100 posts each\n")
for epoch in range(4):
    lo, hi = epoch * 100, (epoch + 1) * 100
    result = engine.process_epoch(
        left_delta=quotes.take(np.arange(lo, hi), name="Quotes"),
        right_delta=sentiment.take(np.arange(lo, hi), name="Sentiment"),
    )
    for query in workload:
        print(
            f"epoch {result.epoch}: {query.name:<11} "
            f"+{len(result.new_results[query.name]):>3} new  "
            f"-{len(result.retracted[query.name]):>3} retracted  "
            f"(live: {len(engine.current_skyline(query.name)):>3})"
        )
    print()

# The live view after all epochs must equal a from-scratch evaluation.
for query in workload:
    ref = reference_evaluate(query, engine.left, engine.right)
    live = engine.current_skyline(query.name)
    assert live == ref.skyline_pairs
    print(f"{query.name}: live skyline verified against batch recomputation "
          f"({len(live)} results)")

print("\nTotal virtual time:", f"{engine.stats.clock.now():,.0f}")
print("Stats:", engine.stats.summary())
