#!/usr/bin/env python3
"""The paper's stock-ticker scenario (Section 1.1, Example 1).

A real-time analytics service joins live Quotes with aggregated social
Sentiment per ticker and serves consumers with very different
progressiveness expectations:

* the mobile watchlist needs a steady refresh (rate-style cardinality
  contract);
* the trend-analysis job tolerates delay but decays steadily (log decay);
* the recommendation engine wants everything by a hard deadline.

The example also demonstrates the satisfaction *feedback loop*: with
feedback on, CAQE re-weights starving queries (Equation 11) and the
minimum per-query satisfaction should not degrade versus feedback off.

Run:  python examples/stock_ticker.py
"""

from repro import (
    CAQE,
    CAQEConfig,
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    Workload,
    c1,
    c2,
    c4,
)
from repro.contracts import DeadlineContract
from repro.datagen import domains
from repro.query.mapping import add, left_only, right_only

quotes = domains.quotes(500, seed=11)
sentiment = domains.sentiment(500, seed=12)

by_ticker = JoinCondition.on("ticker", name="by_ticker")
functions = (
    left_only("volatility"),
    add("spread", "source_risk", "trade_risk"),
    right_only("neg_sentiment"),
    right_only("staleness"),
)

workload = Workload(
    [
        SkylineJoinQuery(
            "watchlist", by_ticker, functions,
            Preference.over("volatility", "trade_risk"), priority=0.9,
        ),
        SkylineJoinQuery(
            "trends", by_ticker, functions,
            Preference.over("volatility", "neg_sentiment", "staleness"),
            priority=0.5,
        ),
        SkylineJoinQuery(
            "recommender", by_ticker, functions,
            Preference.over("trade_risk", "neg_sentiment"), priority=0.3,
        ),
    ]
)
workload.validate(quotes, sentiment)

probe = CAQE(CAQEConfig(target_cells=10)).run(
    quotes, sentiment, workload,
    {q.name: DeadlineContract(float("inf")) for q in workload},
)
t_ref = probe.horizon
contracts = {
    "watchlist": c4(fraction=0.1, interval=0.05 * t_ref),
    "trends": c2(scale=0.01 * t_ref),
    "recommender": c1(0.6 * t_ref),
}

print("Stock ticker: Quotes x Sentiment by ticker\n")
for enable_feedback in (True, False):
    config = CAQEConfig(target_cells=10, enable_feedback=enable_feedback)
    result = CAQE(config).run(quotes, sentiment, workload, contracts)
    label = "with feedback (Eq. 11)" if enable_feedback else "without feedback"
    sats = {q.name: result.satisfaction(q.name) for q in workload}
    print(f"{label}:")
    for name, sat in sats.items():
        print(f"  {name:<12} satisfaction={sat:.3f}")
    print(f"  average={result.average_satisfaction():.3f} "
          f"min={min(sats.values()):.3f}\n")

# The watchlist's delivery timeline: count results per contract interval.
result = CAQE(CAQEConfig(target_cells=10)).run(quotes, sentiment, workload, contracts)
import numpy as np

ts = result.logs["watchlist"].timestamps
interval = contracts["watchlist"].interval
if len(ts):
    buckets = np.bincount(np.maximum(np.ceil(ts / interval) - 1, 0).astype(int))
    print("watchlist results per contract interval:", buckets.tolist())
