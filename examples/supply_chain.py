#!/usr/bin/env python3
"""The paper's supply-chain scenario (Examples 14-15).

Two analysts pair RETAILERS with TRANSPORTERS, but under *different join
predicates*: Q1 matches by country (a retailer shipped domestically), Q2 by
part (a transporter specialised in the retailer's goods).  CAQE's
coarse-level join keeps one signature per cell per predicate and skips any
cell pair whose signatures do not intersect — Example 15's pruning —
before a single tuple is compared.

Run:  python examples/supply_chain.py
"""

from repro import (
    CAQE,
    CAQEConfig,
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    Workload,
    c3,
)
from repro.contracts import DeadlineContract
from repro.datagen import domains
from repro.query.mapping import add

retailers = domains.retailers(400, seed=5)
transporters = domains.transporters(400, seed=6)

by_country = JoinCondition.on("country", name="by_country")
by_part = JoinCondition.on("part", name="by_part")

functions = (
    add("unit_cost", "freight_cost", "landed_cost"),
    add("lead_time", "transit_time", "total_time"),
    add("defect_rate", "loss_rate", "total_risk"),
)

workload = Workload(
    [
        SkylineJoinQuery(
            "Q1_domestic", by_country, functions,
            Preference.over("landed_cost", "total_time"), priority=0.8,
        ),
        SkylineJoinQuery(
            "Q2_specialist", by_part, functions,
            Preference.over("landed_cost", "total_risk"), priority=0.6,
        ),
        SkylineJoinQuery(
            "Q3_balanced", by_country, functions,
            Preference.over("landed_cost", "total_time", "total_risk"),
            priority=0.4,
        ),
    ]
)
workload.validate(retailers, transporters)

# Calibrate a soft deadline from an uncontracted CAQE pass.
probe = CAQE(CAQEConfig(target_cells=10)).run(
    retailers, transporters, workload,
    {q.name: DeadlineContract(float("inf")) for q in workload},
)
t_ref = probe.horizon
contracts = {
    q.name: c3(0.4 * t_ref, unit=0.02 * t_ref) for q in workload
}

result = CAQE(CAQEConfig(target_cells=10)).run(
    retailers, transporters, workload, contracts
)

print("Supply chain: RETAILERS x TRANSPORTERS under two join predicates\n")
summary = result.stats.summary()
print(f"regions processed: {summary['regions_processed']:.0f}, "
      f"pruned before tuple work: {summary['regions_discarded']:.0f}")
print(f"join results materialised: {summary['join_results']:.0f}; "
      f"skyline comparisons: {summary['skyline_comparisons']:.0f}\n")

for query in workload:
    log = result.logs[query.name]
    print(
        f"{query.name:<14} join={query.join_condition.name:<11} "
        f"skyline over {', '.join(query.skyline_dims):<34} "
        f"results={len(log):>4} satisfaction={result.satisfaction(query.name):.3f}"
    )

print(f"\nAverage satisfaction: {result.average_satisfaction():.3f}")

# The two predicates produce different pairings: verify with the reference
# evaluator that each query's answer matches an independent computation.
from repro import reference_evaluate

for query in workload:
    ref = reference_evaluate(query, retailers, transporters)
    assert result.reported[query.name] == ref.skyline_pairs
print("All three result sets verified against the reference evaluator.")
