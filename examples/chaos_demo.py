#!/usr/bin/env python3
"""Fault-tolerant execution demo: chaos on the Figure-1 workload.

Runs the paper's four-query running example through the robustness layer
(docs/ARCHITECTURE.md §9) under three escalating fault regimes:

1. corrupted base tables — the sanitizer quarantines NaN/inf/out-of-domain
   tuples and the engine answers from the clean remainder;
2. region-executor failures — transient failures are retried with capped
   exponential backoff, repeat offenders are quarantined and their queries
   get degraded (MQLA-bound) answers;
3. virtual-clock stragglers against a per-query time budget — when the
   budget lapses, every remaining region is answered from coarse bounds,
   flagged approximate.

Everything is seeded: run it twice and every trace, retry, and degraded
report is identical.

Run:  python examples/chaos_demo.py
"""

from repro import CAQE, CAQEConfig, c2, generate_pair
from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
from repro.query.workload import Workload
from repro.robustness import FaultConfig, FaultPlan, RetryPolicy

SEED = 23

# 1. The Figure-1 workload: Q1..Q4 over output dimensions d1..d4.
jc = JoinCondition.on("jc1", name="JC1")
fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
workload = Workload(
    [
        SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
        SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
        SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
        SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
    ]
)
pair = generate_pair("independent", 200, 4, selectivity=0.05, seed=SEED)
contracts = {q.name: c2(scale=100.0) for q in workload}


def execute(label, config):
    result = CAQE(config).run(pair.left, pair.right, workload, contracts)
    stats = result.stats.summary()
    print(f"\n=== {label} ===")
    print(f"  virtual clock        : {stats['virtual_time']:,.0f}")
    print(f"  tuples quarantined   : {stats['tuples_quarantined']}")
    print(f"  region retries       : {stats['region_retries']}")
    print(f"  regions quarantined  : {stats['regions_quarantined']}")
    print(f"  degraded reports     : {stats['degraded_reports']}")
    for query in workload:
        tag = " (degraded)" if result.is_degraded(query.name) else ""
        print(f"  {query.name}: {len(result.reported[query.name])} results{tag}")
    return result


baseline = execute("baseline (no faults)", CAQEConfig())

# 2. Corrupted inputs: 8% of each table's rows get a NaN/inf/out-of-domain
#    measure; the sanitizer absorbs them into per-relation quarantine lists.
corrupt = execute(
    "corrupted inputs + sanitizer",
    CAQEConfig(
        enable_sanitize=True,
        fault_plan=FaultPlan(FaultConfig(seed=SEED, corrupt_fraction=0.08)),
    ),
)
for side, report in corrupt.quarantine.items():
    print(f"  {side} table: dropped {report.rows_dropped}/{report.rows_scanned} "
          f"rows {report.counts_by_reason()}")

# 3. Region failures: 20% of attempts fail transiently, 5% of regions fail
#    persistently and end up quarantined with degraded answers.
execute(
    "region failures + retry/quarantine",
    CAQEConfig(
        enable_recovery=True,
        retry_policy=RetryPolicy(max_attempts=3),
        fault_plan=FaultPlan(
            FaultConfig(
                seed=SEED,
                region_failure_rate=0.2,
                persistent_failure_rate=0.05,
            )
        ),
    ),
)

# 4. Stragglers against a budget: half the regions run 8x slow, the budget
#    lapses, and the tail of every query's answer degrades to MQLA bounds.
degraded = execute(
    "stragglers + virtual-time budget",
    CAQEConfig(
        enable_recovery=True,
        fault_plan=FaultPlan(
            FaultConfig(seed=SEED, straggler_rate=0.5, straggler_factor=8.0)
        ),
        query_time_budget=0.4 * baseline.horizon,
    ),
)
for name, reports in degraded.degraded.items():
    for report in reports[:2]:
        lo = ", ".join(f"{v:.1f}" for v in report.lower)
        hi = ", ".join(f"{v:.1f}" for v in report.upper)
        print(f"  {name} region #{report.region_id} ~{report.est_join_count:.0f} "
              f"results in box [{lo}]..[{hi}] ({report.reason})")

assert any(degraded.is_degraded(q.name) for q in workload), (
    "expected the tight budget to force degradation"
)
print("\nEvery query answered in every regime; degradation flagged explicitly.")
