#!/usr/bin/env python3
"""Top-K-over-join processing with contracts (the paper's §1.2 generality claim).

Skyline queries return *all* non-dominated packages; some consumers just
want "the 10 best by my scoring function".  This example runs a workload
of three Top-K-over-join queries — different weightings over the same
Hotels x Tours join — through the shared contract-driven Top-K engine,
which reuses CAQE's substrate: quad-tree cells, signature-pruned coarse
join, region lower bounds for pruning, and progressive finality reporting.

Run:  python examples/topk_deals.py
"""

from repro import JoinCondition, c1, c3
from repro.core import CAQEConfig, TopKEngine, TopKJoinQuery, reference_topk
from repro.datagen import domains
from repro.query.mapping import add, left_only, weighted_sum

hotels = domains.hotels(400, seed=31)
tours = domains.tours(400, seed=32)

by_city = JoinCondition.on("city", name="by_city")
functions = (
    weighted_sum(["price", "wifi_fee"], ["tour_price"], [1, 1, 1], "total_price"),
    add("distance", "transfer_dist", "venue_dist"),
    left_only("neg_rating"),
)

queries = [
    TopKJoinQuery(
        "budget_10", by_city, functions, weights=(1.0, 0.0, 0.0), k=10,
        priority=0.9,
    ),
    TopKJoinQuery(
        "nearby_5", by_city, functions, weights=(0.1, 10.0, 0.0), k=5,
        priority=0.6,
    ),
    TopKJoinQuery(
        "premium_8", by_city, functions, weights=(0.2, 1.0, 50.0), k=8,
        priority=0.3,
    ),
]

# Deadline contracts calibrated from a quick uncontracted probe.
probe = TopKEngine(CAQEConfig(target_cells=12)).run(
    hotels, tours, queries, {q.name: c1(float("inf")) for q in queries}
)
t_ref = probe.horizon
contracts = {
    "budget_10": c3(0.55 * t_ref, unit=0.05 * t_ref),
    "nearby_5": c1(0.95 * t_ref),
    "premium_8": c3(0.75 * t_ref, unit=0.05 * t_ref),
}

result = TopKEngine(CAQEConfig(target_cells=12)).run(
    hotels, tours, queries, contracts
)

print("Top-K deals over Hotels x Tours\n")
summary = result.stats.summary()
print(f"regions processed: {summary['regions_processed']:.0f}, "
      f"pruned unjoined: {summary['regions_discarded']:.0f}, "
      f"join results: {summary['join_results']:.0f}\n")

for query in queries:
    log = result.logs[query.name]
    ts = log.timestamps
    print(
        f"{query.name:<10} k={query.k:<3} results={len(result.results[query.name]):<3} "
        f"first@{ts.min():>9,.0f}  last@{ts.max():>9,.0f}  "
        f"satisfaction={result.satisfaction(query.name):.3f}"
    )

print("\nBest budget packages (hotel, tour):", result.results["budget_10"][:3])

# Verify against an independent brute-force ranking.
for query in queries:
    assert result.results[query.name] == reference_topk(query, hotels, tours)
print("All rankings verified against brute-force reference.")
