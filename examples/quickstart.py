#!/usr/bin/env python3
"""Quickstart: run CAQE on a generated benchmark workload.

Builds the paper's standard setup — two tables whose measure attributes
follow one of the skyline benchmark distributions, a workload of
skyline-over-join queries that differ in their skyline dimensions, and one
progressiveness contract per query — then executes it with CAQE and prints
per-query satisfaction next to a blocking baseline.

Run:  python examples/quickstart.py
"""

from repro import CAQE, CAQEConfig, c1, c3, generate_pair, subspace_workload
from repro.baselines import JFSL

# 1. Data: |R| = |T| = 400 independent 4-d tuples, join selectivity 2%.
pair = generate_pair("independent", 400, 4, selectivity=0.02, seed=42)

# 2. Workload: every 2..4-dimensional subspace of the 4 output dimensions,
#    i.e. the paper's |S_Q| = 11 queries, with uniformly spread priorities.
workload = subspace_workload(4, priority_scheme="uniform")
print(f"Workload: {len(workload)} skyline-over-join queries")
for query in workload:
    print(f"  {query.name}: skyline over {query.skyline_dims} "
          f"(priority {query.priority:.2f})")

# 3. Contracts.  A blocking JFSL run calibrates the time scale: we demand
#    most results within 30% of the time the naive strategy needs overall.
reference = JFSL().run(
    pair.left, pair.right, workload,
    {q.name: c1(float("inf")) for q in workload},
)
deadline = 0.3 * reference.horizon
contracts = {q.name: c3(deadline, unit=deadline / 20) for q in workload}
print(f"\nReference (JFSL) completion: {reference.horizon:,.0f} virtual units; "
      f"soft deadline set to {deadline:,.0f}")

# 4. Execute with CAQE and with the blocking baseline.
caqe_result = CAQE(CAQEConfig()).run(pair.left, pair.right, workload, contracts)
jfsl_result = JFSL().run(pair.left, pair.right, workload, contracts)

print(f"\n{'query':>6} | {'results':>7} | {'CAQE sat':>8} | {'JFSL sat':>8}")
for query in workload:
    print(
        f"{query.name:>6} | {len(caqe_result.logs[query.name]):>7} | "
        f"{caqe_result.satisfaction(query.name):>8.3f} | "
        f"{jfsl_result.satisfaction(query.name):>8.3f}"
    )

print(f"\nAverage satisfaction:  CAQE {caqe_result.average_satisfaction():.3f}"
      f"  vs  JFSL {jfsl_result.average_satisfaction():.3f}")
print("CAQE stats:", caqe_result.stats.summary())

# 5. Both strategies return the exact same answers — only the delivery
#    schedule differs.
assert all(
    caqe_result.reported[q.name] == jfsl_result.reported[q.name]
    for q in workload
)
print("\nResult sets verified identical across strategies.")
