#!/usr/bin/env python3
"""The paper's travel-aggregator scenario (Section 1.1, Example 2).

Three consumers search Hotel x Tour packages per city with conflicting
needs:

* Q1 (John):  minimise distance-from-venue and maximise rating; he has a
  short break, so he needs results fast — a tight soft deadline.
* Q2 (Jane):  cheap packages, flexible on distance; wants alerts as soon
  as deals are identified — a steady results-per-interval contract.
* Q3 (ACME):  maximise rating and sights while minimising cost for an
  hourly report — a lenient hard deadline.

All three queries join the same Hotels and Tours tables by city; CAQE
shares the join and the skyline comparisons while scheduling input chunks
by how each contract is being met.

Run:  python examples/travel_planner.py
"""

from repro import CAQE, CAQEConfig, Preference, SkylineJoinQuery, Workload
from repro import JoinCondition, c1, c3, c4
from repro.baselines import SJFSL
from repro.datagen import domains
from repro.query.mapping import add, left_only, weighted_sum

hotels = domains.hotels(400, seed=1)
tours = domains.tours(400, seed=2)

by_city = JoinCondition.on("city", name="by_city")

# Output dimensions shared by all three queries (one agreed mapping
# function per dimension so the shared plan can combine them).
total_price = weighted_sum(
    ["price", "wifi_fee"], ["tour_price"], [1.0, 1.0, 1.0], "total_price"
)
venue_dist = add("distance", "transfer_dist", "venue_dist")
neg_rating = left_only("neg_rating")
from repro.query.mapping import right_only
neg_sights = right_only("neg_sights")

functions = (total_price, venue_dist, neg_rating, neg_sights)

Q1 = SkylineJoinQuery(
    "Q1_john", by_city, functions,
    Preference.over("venue_dist", "neg_rating"), priority=0.9,
)
Q2 = SkylineJoinQuery(
    "Q2_jane", by_city, functions,
    Preference.over("total_price", "venue_dist"), priority=0.5,
)
Q3 = SkylineJoinQuery(
    "Q3_acme", by_city, functions,
    Preference.over("total_price", "neg_rating", "neg_sights"), priority=0.3,
)
workload = Workload([Q1, Q2, Q3])
workload.validate(hotels, tours)

# Calibrate contracts against a shared-plan reference run.
from repro.contracts import DeadlineContract
reference = SJFSL().run(
    hotels, tours, workload, {q.name: DeadlineContract(float("inf")) for q in workload}
)
t_ref = reference.horizon
contracts = {
    "Q1_john": c3(0.15 * t_ref, unit=0.01 * t_ref),   # fast, then decaying
    "Q2_jane": c4(fraction=0.1, interval=0.05 * t_ref),  # steady alerts
    "Q3_acme": c1(0.8 * t_ref),                        # hourly report
}

result = CAQE(CAQEConfig(target_cells=12)).run(hotels, tours, workload, contracts)

print("Travel planner: Hotels x Tours skyline packages per city")
print(f"Reference completion: {t_ref:,.0f} virtual units\n")
for query in workload:
    log = result.logs[query.name]
    ts = log.timestamps
    first = f"{ts.min():,.0f}" if len(ts) else "-"
    print(
        f"{query.name:<9} contract={contracts[query.name].name:<28} "
        f"results={len(log):>4}  first@{first:>10}  "
        f"satisfaction={result.satisfaction(query.name):.3f}"
    )

print(f"\nWorkload average satisfaction: {result.average_satisfaction():.3f}")

# Show John's top packages (his query's first few confirmed results).
print("\nJohn's earliest confirmed packages (hotel_id, tour_id):")
for key in result.logs["Q1_john"].keys[:5]:
    hotel_row, tour_row = key
    print(
        f"  hotel #{int(hotels.column('hotel_id')[hotel_row])} "
        f"(rating {5 - hotels.column('neg_rating')[hotel_row]:.0f}, "
        f"dist {hotels.column('distance')[hotel_row]:.1f} km) + "
        f"tour #{int(tours.column('tour_id')[tour_row])}"
    )
