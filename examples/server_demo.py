#!/usr/bin/env python3
"""Concurrent serving demo: the Figure-1 workload through ``CAQEServer``.

Walks the overload-safe serving layer (docs/ARCHITECTURE.md §10.6) end
to end:

1. a normal submission — answered exactly;
2. a submission with a tight virtual-time deadline — finishes past its
   budget with degraded (MQLA-bound) answers instead of running on;
3. a cancelled submission — the cooperative token stops the run at the
   next region boundary;
4. **4x overload** — with one worker parked and the admission queue at
   capacity, four queues' worth of extra submissions are shed with
   explicit ``Rejected(reason="queue_full")``; nothing blocks, nothing
   deadlocks, and every admitted submission still terminates;
5. a circuit breaker — a workload whose every run quarantines regions
   trips its per-signature breaker, later submissions shed with
   ``Rejected(reason="circuit_open")`` until a cooldown admits a
   half-open trial.

Run:  python examples/server_demo.py [--workers N]

``--workers N`` runs every submission over one shared deterministic
region pool of N worker processes (docs/ARCHITECTURE.md §11); results
are bit-identical to the serial engine.
"""

import argparse
import threading

from repro import CAQEConfig, c2, generate_pair
from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
from repro.query.workload import Workload
from repro.robustness import FaultConfig, FaultPlan, RetryPolicy
from repro.serving import CAQEServer, CancellationToken, Rejected

SEED = 23

parser = argparse.ArgumentParser(description="CAQEServer walkthrough")
parser.add_argument(
    "--workers",
    type=int,
    default=0,
    help="region-pool worker processes shared across submissions "
    "(0 = serial engine)",
)
WORKERS = parser.parse_args().workers

# The Figure-1 workload: Q1..Q4 over output dimensions d1..d4.
jc = JoinCondition.on("jc1", name="JC1")
fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
workload = Workload(
    [
        SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
        SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
        SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
        SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
    ]
)
pair = generate_pair("independent", 150, 4, selectivity=0.05, seed=SEED)
contracts = {q.name: c2(scale=100.0) for q in workload}


def show(label, outcome):
    line = f"  {label}: {outcome.status}"
    if outcome.result is not None:
        reported = sum(len(v) for v in outcome.result.reported.values())
        line += (
            f"  reported={reported}"
            f"  degraded_reports={outcome.result.stats.degraded_reports}"
            f"  t={outcome.result.horizon:g}"
        )
    if outcome.error:
        line += f"  ({outcome.error})"
    print(line)


class Gate:
    """Duck-typed cancel token that parks a run until released —
    it keeps the single worker busy so queue occupancy is exact."""

    def __init__(self):
        self._event = threading.Event()

    def open(self):
        self._event.set()

    def is_cancelled(self):
        self._event.wait()
        return False


print("=== deadlines and cancellation ===")
with CAQEServer(pair.left, pair.right, CAQEConfig(workers=WORKERS)) as server:
    normal = server.submit(workload, contracts)
    tight = server.submit(workload, contracts, deadline=5_000.0)
    token = CancellationToken()
    doomed = server.submit(workload, contracts, cancel_token=token)
    token.cancel()
    show("normal   ", normal.result())
    show("deadline ", tight.result())
    show("cancelled", doomed.result())

print("\n=== 4x overload: explicit shedding, no deadlock ===")
config = CAQEConfig(server_workers=1, server_queue_limit=2, workers=WORKERS)
with CAQEServer(pair.left, pair.right, config) as server:
    gate = Gate()
    running = server.submit(workload, contracts, cancel_token=gate)
    while server._queue.qsize() > 0:  # worker picks up the gated run
        pass
    admitted = [server.submit(workload, contracts) for _ in range(2)]
    overload = [server.submit(workload, contracts) for _ in range(8)]
    shed = [r for r in overload if isinstance(r, Rejected)]
    print(f"  queue capacity 2, workers 1; extra submissions: {len(overload)}")
    print(f"  shed with Rejected(reason='queue_full'): {len(shed)}")
    gate.open()
    for i, ticket in enumerate([running, *admitted]):
        show(f"admitted #{i + 1}", ticket.result())
    print(f"  metrics: {dict(server.metrics)}")

print("\n=== circuit breaker: quarantine-heavy workload ===")
toxic = CAQEConfig(
    enable_recovery=True,
    retry_policy=RetryPolicy(max_attempts=1),
    fault_plan=FaultPlan(FaultConfig(seed=SEED, persistent_failure_rate=1.0)),
    server_workers=1,
    server_breaker_threshold=2,
    server_breaker_cooldown=2,
    workers=WORKERS,
)
with CAQEServer(pair.left, pair.right, toxic) as server:
    for attempt in range(1, 3):
        outcome = server.submit(workload, contracts).result()
        show(f"failing run #{attempt}", outcome)
    tripped = server.submit(workload, contracts)
    print(f"  next submission: Rejected(reason={tripped.reason!r})")
    # Each shed submission is a cooldown event; once the cooldown is
    # spent, one half-open trial is admitted.
    trial = server.submit(workload, contracts)
    while isinstance(trial, Rejected):
        trial = server.submit(workload, contracts)
    show("half-open trial", trial.result())
    print(f"  metrics: {dict(server.metrics)}")

print("\nEvery admitted submission terminated; every shed one was explicit.")
