#!/usr/bin/env python3
"""Calibrating contracts: curves, ideal pacing, delivery profiles, regret.

Before committing to a contract, an operator wants to know what it demands
(the utility curve), what the best possible execution could score (ideal
pacing), and afterwards how far the actual execution fell short (regret).
This example walks those tools over a real CAQE run, and prints the
workload's static sharing report.

Run:  python examples/contract_calibration.py
"""

import numpy as np

from repro import c1, c3, c4, generate_pair, run_caqe, subspace_workload
from repro.contracts.analysis import (
    contract_curve,
    delivery_profile,
    ideal_satisfaction,
    regret,
)
from repro.plan import sharing_report

pair = generate_pair("independent", 400, 4, selectivity=0.02, seed=77)
workload = subspace_workload(4, priority_scheme="uniform")

print("=== Workload sharing structure ===")
print(sharing_report(workload).describe())

# Probe the execution time scale with an uncontracted run.
probe = run_caqe(
    pair.left, pair.right, workload,
    {q.name: c1(float("inf")) for q in workload},
)
t_ref = probe.horizon
print(f"\nProbe completion: {t_ref:,.0f} virtual units")

contracts = {
    q.name: (
        c3(0.4 * t_ref, unit=0.02 * t_ref)
        if i % 2 == 0
        else c4(fraction=0.1, interval=0.06 * t_ref)
    )
    for i, q in enumerate(workload)
}

print("\n=== Contract curves (utility of a result at time t) ===")
sample = contracts["Q1"]
ts, utilities = contract_curve(sample, horizon=t_ref, samples=9)
for t, u in zip(ts, utilities):
    bar = "#" * int(max(u, 0.0) * 30)
    print(f"  t={t:>10,.0f}  u={u:+.3f}  {bar}")

result = run_caqe(pair.left, pair.right, workload, contracts)

print("\n=== Per-query outcome vs the ideal ===")
print(f"{'query':>5} | {'results':>7} | {'ideal':>6} | {'actual':>6} | {'regret':>6}")
for query in workload:
    log = result.logs[query.name]
    contract = contracts[query.name]
    best = ideal_satisfaction(contract, len(log), result.horizon)
    actual = result.satisfaction(query.name)
    gap = regret(contract, log, horizon=result.horizon)
    print(
        f"{query.name:>5} | {len(log):>7} | {best:>6.3f} | {actual:>6.3f} | {gap:>6.3f}"
    )

print("\n=== Q1 delivery profile (results per contract interval) ===")
interval = 0.06 * t_ref
profile = delivery_profile(result.logs["Q1"], interval, horizon=result.horizon)
for i, count in enumerate(profile.tolist()):
    print(f"  interval {i:>2}: {'*' * min(count, 60)}{count:>4}")

avg = result.average_satisfaction()
print(f"\nWorkload average satisfaction: {avg:.3f}")
assert 0.0 <= avg <= 1.0
