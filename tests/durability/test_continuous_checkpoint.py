"""Continuous-engine durability: epoch replay + mid-epoch checkpoints.

The crash is simulated exactly as a ``SIGKILL`` leaves the directory:
the journal is truncated to its first ``K`` records and every snapshot
with a later seq is deleted (fsync ordering guarantees a record hits
disk before the snapshot that covers it).  Resume must then finish the
interrupted epoch — replaying its journalled prefix, re-executing the
in-flight remainder, honouring epoch-level retry replay — and continue
through the remaining deltas bit-identically.
"""

import json
import os

import numpy as np
import pytest

from repro.contracts import c2
from repro.core import CAQEConfig
from repro.core.continuous import ContinuousCAQE
from repro.datagen import generate_pair
from repro.durability import resume_continuous
from repro.durability.checkpoint import list_snapshots
from repro.durability.journal import JOURNAL_FILENAME
from repro.errors import DurabilityError
from repro.relation import Relation
from repro.robustness.faults import FaultConfig, FaultPlan
from repro.robustness.recovery import RetryPolicy

CHUNKS = ((0, 30), (30, 60), (60, 90))


def _slice(relation: Relation, start: int, stop: int) -> Relation:
    return relation.take(np.arange(start, stop), name=relation.name)


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 90, 4, selectivity=0.08, seed=61)


@pytest.fixture(scope="module")
def contracts(figure1_workload):
    return {q.name: c2(scale=1000.0) for q in figure1_workload}


def journaled(journal_dir, **overrides) -> CAQEConfig:
    knobs = dict(
        enable_journal=True,
        journal_dir=str(journal_dir),
        checkpoint_every_regions=3,
    )
    knobs.update(overrides)
    return CAQEConfig(**knobs)


def feed(engine, pair, chunks=CHUNKS):
    return [
        engine.process_epoch(
            left_delta=_slice(pair.left, start, stop),
            right_delta=_slice(pair.right, start, stop),
        )
        for start, stop in chunks
    ]


def epoch_digest(result):
    return (
        result.epoch,
        {k: sorted(v) for k, v in sorted(result.new_results.items())},
        {k: sorted(v) for k, v in sorted(result.retracted.items())},
        result.virtual_time,
        result.region_retries,
        result.regions_quarantined,
    )


def engine_observables(engine, workload):
    return (
        engine.stats.skyline_comparisons,
        engine.stats.elapsed,
        {q.name: sorted(engine.current_skyline(q.name)) for q in workload},
    )


def journal_records(journal_dir):
    path = os.path.join(str(journal_dir), JOURNAL_FILENAME)
    with open(path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    return lines[0], [
        (line, json.loads(line.decode().split(" ", 1)[1]))
        for line in lines[1:]
    ]


def simulate_crash(journal_dir, keep_records):
    """Truncate to ``keep_records`` journal records + matching snapshots."""
    header, records = journal_records(journal_dir)
    kept = records[:keep_records]
    path = os.path.join(str(journal_dir), JOURNAL_FILENAME)
    with open(path, "wb") as handle:
        handle.write(header + b"".join(line for line, _ in kept))
    max_seq = int(kept[-1][1]["seq"]) if kept else 0
    for seq, snap_path in list_snapshots(str(journal_dir)):
        if seq > max_seq:
            os.remove(snap_path)
    return max_seq


class TestContinuousJournalEquivalence:
    def test_journal_on_matches_journal_off(
        self, figure1_workload, contracts, pair, tmp_path
    ):
        plain = ContinuousCAQE(figure1_workload, contracts, CAQEConfig())
        plain_epochs = feed(plain, pair)
        journaled_engine = ContinuousCAQE(
            figure1_workload, contracts, journaled(tmp_path)
        )
        journal_epochs = feed(journaled_engine, pair)
        journaled_engine.close()
        assert [epoch_digest(e) for e in journal_epochs] == [
            epoch_digest(e) for e in plain_epochs
        ]
        assert engine_observables(
            journaled_engine, figure1_workload
        ) == engine_observables(plain, figure1_workload)


class TestContinuousResume:
    def _reference(self, workload, contracts, pair, config=None):
        engine = ContinuousCAQE(workload, contracts, config or CAQEConfig())
        epochs = feed(engine, pair)
        return engine, epochs

    def test_resume_before_first_epoch(
        self, figure1_workload, contracts, pair, tmp_path
    ):
        # The seq-0 snapshot written at construction makes a crash before
        # any delta recoverable.
        ContinuousCAQE(figure1_workload, contracts, journaled(tmp_path)).close()
        engine, mid = resume_continuous(
            figure1_workload, contracts, journaled(tmp_path)
        )
        assert mid is None
        reference, ref_epochs = self._reference(
            figure1_workload, contracts, pair
        )
        epochs = feed(engine, pair)
        engine.close()
        assert [epoch_digest(e) for e in epochs] == [
            epoch_digest(e) for e in ref_epochs
        ]

    def test_resume_at_epoch_boundary(
        self, figure1_workload, contracts, pair, tmp_path
    ):
        reference, ref_epochs = self._reference(
            figure1_workload, contracts, pair
        )
        victim = ContinuousCAQE(figure1_workload, contracts, journaled(tmp_path))
        feed(victim, pair, chunks=CHUNKS[:2])
        victim.close()

        engine, mid = resume_continuous(
            figure1_workload, contracts, journaled(tmp_path)
        )
        assert mid is None  # the crash fell exactly on an epoch boundary
        final = feed(engine, pair, chunks=CHUNKS[2:])
        engine.close()
        assert epoch_digest(final[0]) == epoch_digest(ref_epochs[2])
        assert engine_observables(
            engine, figure1_workload
        ) == engine_observables(reference, figure1_workload)

    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    def test_mid_epoch_crash_with_epoch_replay(
        self, figure1_workload, contracts, pair, tmp_path, fraction
    ):
        # Transient region failures force intra-epoch replay; the crash
        # lands *inside* epoch 2, between two of its region records.
        knobs = dict(
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=12),
            fault_plan=FaultPlan(
                FaultConfig(seed=3, region_failure_rate=0.3)
            ),
        )
        reference, ref_epochs = self._reference(
            figure1_workload, contracts, pair, CAQEConfig(**knobs)
        )
        assert sum(e.region_retries for e in ref_epochs) > 0

        journal_dir = tmp_path / f"crash-{fraction}"
        victim = ContinuousCAQE(
            figure1_workload, contracts, journaled(journal_dir, **knobs)
        )
        feed(victim, pair, chunks=CHUNKS[:2])
        victim.close()

        _, records = journal_records(journal_dir)
        epoch2 = [
            payload
            for _, payload in records
            if payload["epoch"] == records[-1][1]["epoch"]
            and payload["event"] != "epoch_end"
        ]
        assert len(epoch2) > 2, "epoch 2 must span several regions"
        cut = int(records[-1][1]["seq"]) - len(epoch2) + max(
            1, int(len(epoch2) * fraction)
        )
        simulate_crash(journal_dir, cut)

        engine, mid = resume_continuous(
            figure1_workload, contracts, journaled(journal_dir, **knobs)
        )
        assert mid is not None, "resume must finish the interrupted epoch"
        assert epoch_digest(mid) == epoch_digest(ref_epochs[1])
        final = feed(engine, pair, chunks=CHUNKS[2:])
        engine.close()
        assert epoch_digest(final[0]) == epoch_digest(ref_epochs[2])
        assert engine_observables(
            engine, figure1_workload
        ) == engine_observables(reference, figure1_workload)

    def test_resume_requires_journaling(self, figure1_workload, contracts):
        with pytest.raises(DurabilityError, match="enable_journal"):
            resume_continuous(figure1_workload, contracts, CAQEConfig())
