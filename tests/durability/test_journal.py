"""Unit tests for the write-ahead region journal and snapshot codec."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.core import CAQEConfig
from repro.durability.checkpoint import (
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.durability.journal import (
    JOURNAL_FILENAME,
    JOURNAL_MAGIC,
    RegionJournal,
    continuous_fingerprint,
    relation_digest,
    run_fingerprint,
)
from repro.errors import DurabilityError


def _journal_path(directory) -> str:
    return os.path.join(str(directory), JOURNAL_FILENAME)


class TestRegionJournal:
    def test_append_then_resume_round_trips_records(self, tmp_path):
        journal = RegionJournal.create(str(tmp_path), "fp")
        records = [
            {"seq": 1, "event": "processed", "clock": 1.5},
            {"seq": 2, "event": "quarantined", "clock": 2.25},
        ]
        for record in records:
            journal.append(record)
        journal.close()

        reopened, recovered = RegionJournal.open_resume(str(tmp_path), "fp")
        reopened.close()
        assert recovered == records

    def test_floats_round_trip_bit_identically(self, tmp_path):
        value = 0.1 + 0.2  # not representable; repr must round-trip it
        journal = RegionJournal.create(str(tmp_path), "fp")
        journal.append({"seq": 1, "clock": value})
        journal.close()
        _, records = RegionJournal.open_resume(str(tmp_path), "fp")
        assert records[0]["clock"] == value

    def test_create_refuses_existing_journal(self, tmp_path):
        RegionJournal.create(str(tmp_path), "fp").close()
        with pytest.raises(DurabilityError, match="already exists"):
            RegionJournal.create(str(tmp_path), "fp")

    def test_resume_truncates_torn_tail(self, tmp_path):
        journal = RegionJournal.create(str(tmp_path), "fp")
        journal.append({"seq": 1})
        journal.close()
        with open(_journal_path(tmp_path), "ab") as handle:
            handle.write(b'deadbeef {"seq": 2')  # no newline: torn write

        reopened, records = RegionJournal.open_resume(str(tmp_path), "fp")
        assert records == [{"seq": 1}]
        # The torn bytes are gone for good — the file ends at the last
        # intact record and appending continues from there.
        reopened.append({"seq": 2})
        reopened.close()
        _, records = RegionJournal.open_resume(str(tmp_path), "fp")
        assert records == [{"seq": 1}, {"seq": 2}]

    def test_resume_discards_everything_after_a_corrupt_line(self, tmp_path):
        journal = RegionJournal.create(str(tmp_path), "fp")
        journal.append({"seq": 1})
        journal.close()
        with open(_journal_path(tmp_path), "ab") as handle:
            handle.write(b'00000000 {"seq": 2}\n')  # bad CRC
            handle.write(b"ffffffff garbage\n")
        _, records = RegionJournal.open_resume(str(tmp_path), "fp")
        assert records == [{"seq": 1}]

    def test_resume_rejects_fingerprint_mismatch(self, tmp_path):
        RegionJournal.create(str(tmp_path), "fp-a").close()
        with pytest.raises(DurabilityError, match="fingerprint mismatch"):
            RegionJournal.open_resume(str(tmp_path), "fp-b")

    def test_resume_rejects_foreign_files(self, tmp_path):
        with open(_journal_path(tmp_path), "w") as handle:
            handle.write("not a journal\n")
        with pytest.raises(DurabilityError, match="header"):
            RegionJournal.open_resume(str(tmp_path), "fp")

    def test_resume_of_missing_journal_raises(self, tmp_path):
        with pytest.raises(DurabilityError, match="no journal"):
            RegionJournal.open_resume(str(tmp_path), "fp")

    def test_header_carries_magic(self, tmp_path):
        RegionJournal.create(str(tmp_path), "fp").close()
        with open(_journal_path(tmp_path)) as handle:
            header = json.loads(handle.readline().split(" ", 1)[1])
        assert header["magic"] == JOURNAL_MAGIC
        assert header["fingerprint"] == "fp"


class TestFingerprints:
    def test_durability_knobs_do_not_change_run_identity(self, small_pair, figure1_workload):
        base = CAQEConfig()
        moved = dataclasses.replace(
            base,
            enable_journal=True,
            journal_dir="/somewhere/else",
            checkpoint_every_regions=3,
            server_workers=7,
        )
        assert run_fingerprint(
            base, small_pair.left, small_pair.right, figure1_workload
        ) == run_fingerprint(
            moved, small_pair.left, small_pair.right, figure1_workload
        )

    def test_engine_knobs_do_change_run_identity(self, small_pair, figure1_workload):
        base = CAQEConfig()
        batched = dataclasses.replace(base, enable_batch_insert=False)
        assert run_fingerprint(
            base, small_pair.left, small_pair.right, figure1_workload
        ) != run_fingerprint(
            batched, small_pair.left, small_pair.right, figure1_workload
        )

    def test_input_bytes_change_run_identity(self, small_pair, figure1_workload):
        config = CAQEConfig()
        original = run_fingerprint(
            config, small_pair.left, small_pair.right, figure1_workload
        )
        name = small_pair.left.schema.names[0]
        columns = {
            attr: np.array(small_pair.left.column(attr), copy=True)
            for attr in small_pair.left.schema.names
        }
        columns[name][0] += 1.0
        tweaked = type(small_pair.left)(
            small_pair.left.name, small_pair.left.schema, columns
        )
        assert (
            run_fingerprint(config, tweaked, small_pair.right, figure1_workload)
            != original
        )

    def test_relation_digest_is_stable(self, small_pair):
        assert relation_digest(small_pair.left) == relation_digest(
            small_pair.left
        )

    def test_continuous_identity_ignores_inputs(self, figure1_workload):
        # Deltas arrive over time: the streaming identity is the config
        # plus the workload, never input bytes.
        fp = continuous_fingerprint(CAQEConfig(), figure1_workload)
        assert fp == continuous_fingerprint(CAQEConfig(), figure1_workload)
        assert fp != run_fingerprint.__name__  # sanity: a hex digest
        assert len(fp) == 64


class TestSnapshots:
    def test_write_read_round_trip_preserves_floats(self, tmp_path):
        state = {"clock": 0.1 + 0.2, "trace": [1, 2, 3]}
        write_snapshot(str(tmp_path), 5, "fp", state)
        snapshot = read_snapshot(snapshot_path(str(tmp_path), 5))
        assert snapshot["seq"] == 5
        assert snapshot["fingerprint"] == "fp"
        assert snapshot["state"]["clock"] == state["clock"]

    def test_latest_snapshot_picks_newest_at_or_before_max_seq(self, tmp_path):
        for seq in (3, 6, 9):
            write_snapshot(str(tmp_path), seq, "fp", {"seq_check": seq})
        newest = latest_snapshot(str(tmp_path), "fp")
        assert newest is not None and newest["seq"] == 9
        bounded = latest_snapshot(str(tmp_path), "fp", max_seq=7)
        assert bounded is not None and bounded["seq"] == 6

    def test_latest_snapshot_skips_corrupt_files(self, tmp_path):
        write_snapshot(str(tmp_path), 3, "fp", {"good": True})
        write_snapshot(str(tmp_path), 6, "fp", {"good": True})
        with open(snapshot_path(str(tmp_path), 6), "r+b") as handle:
            handle.seek(0)
            handle.write(b"XXXXXXXX")
        newest = latest_snapshot(str(tmp_path), "fp")
        assert newest is not None and newest["seq"] == 3

    def test_latest_snapshot_rejects_foreign_fingerprints(self, tmp_path):
        write_snapshot(str(tmp_path), 3, "fp-a", {})
        with pytest.raises(DurabilityError, match="fingerprint"):
            latest_snapshot(str(tmp_path), "fp-b")

    def test_no_snapshots_yields_none(self, tmp_path):
        assert latest_snapshot(str(tmp_path), "fp") is None
        assert list_snapshots(str(tmp_path)) == []
