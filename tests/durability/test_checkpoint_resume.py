"""Crash/resume bit-identity for finite runs (docs/ARCHITECTURE.md §10.4).

Crashes are driven two ways here: a counting cancel token stops the run
at an exact region boundary in-process (fast, deterministic), and
``tools/kill_resume_audit.py`` delivers real ``SIGKILL``s in CI.  Both
leave the same on-disk artefact — an fsync'd journal prefix plus the
snapshots written before the cut — which is what resume consumes.
"""

import dataclasses
import os
import shutil

import pytest

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.durability import resume_run
from repro.durability.checkpoint import list_snapshots
from repro.durability.journal import JOURNAL_FILENAME, _encode
from repro.errors import DurabilityError, QueryCancelled, ResumeMismatch
from repro.robustness.faults import FaultConfig, FaultPlan
from repro.robustness.recovery import RetryPolicy


class StopAfter:
    """Cancel token that fires after ``n`` region-boundary polls."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


def observables(result):
    return (
        result.stats.region_trace,
        result.stats.skyline_comparisons,
        result.stats.coarse_comparisons,
        result.stats.elapsed,
        result.reported,
        result.degraded,
        result.stats.summary(),
    )


@pytest.fixture(scope="module")
def inputs(figure1_workload):
    pair = generate_pair("independent", 90, 4, selectivity=0.05, seed=29)
    contracts = {q.name: c2(scale=100.0) for q in figure1_workload}
    return pair, figure1_workload, contracts


def journaled_config(journal_dir, **overrides) -> CAQEConfig:
    knobs = dict(
        enable_journal=True,
        journal_dir=str(journal_dir),
        checkpoint_every_regions=5,
    )
    knobs.update(overrides)
    return CAQEConfig(**knobs)


def run(config, inputs, cancel_token=None):
    pair, workload, contracts = inputs
    return CAQE(config).run(
        pair.left, pair.right, workload, contracts, cancel_token=cancel_token
    )


class TestJournalOffEquivalence:
    def test_journal_on_is_bit_identical_to_journal_off(self, inputs, tmp_path):
        baseline = run(CAQEConfig(), inputs)
        journaled = run(journaled_config(tmp_path), inputs)
        assert observables(journaled) == observables(baseline)
        # The journal really was written: header + one record per region.
        assert os.path.getsize(tmp_path / JOURNAL_FILENAME) > 0
        assert list_snapshots(str(tmp_path))


class TestCancelAndResume:
    @pytest.mark.parametrize("stop_at", [0, 3, 13])
    def test_resume_after_cancellation_is_bit_identical(
        self, inputs, tmp_path, stop_at
    ):
        baseline = run(CAQEConfig(), inputs)
        journal_dir = tmp_path / f"stop-{stop_at}"
        with pytest.raises(QueryCancelled):
            run(
                journaled_config(journal_dir),
                inputs,
                cancel_token=StopAfter(stop_at),
            )
        resumed = resume_run(
            inputs[0].left,
            inputs[0].right,
            inputs[1],
            inputs[2],
            journaled_config(journal_dir),
        )
        assert observables(resumed) == observables(baseline)

    def test_journal_only_resume_without_any_snapshot(self, inputs, tmp_path):
        # A huge checkpoint cadence means the run dies before its first
        # snapshot; resume must replay from the very start.
        config = journaled_config(tmp_path, checkpoint_every_regions=10_000)
        baseline = run(CAQEConfig(), inputs)
        with pytest.raises(QueryCancelled):
            run(config, inputs, cancel_token=StopAfter(7))
        assert list_snapshots(str(tmp_path)) == []
        resumed = resume_run(
            inputs[0].left, inputs[0].right, inputs[1], inputs[2], config
        )
        assert observables(resumed) == observables(baseline)

    def test_resume_from_a_moved_directory(self, inputs, tmp_path):
        original = tmp_path / "original"
        moved = tmp_path / "moved"
        with pytest.raises(QueryCancelled):
            run(journaled_config(original), inputs, cancel_token=StopAfter(6))
        shutil.copytree(original, moved)
        baseline = run(CAQEConfig(), inputs)
        resumed = resume_run(
            inputs[0].left,
            inputs[0].right,
            inputs[1],
            inputs[2],
            journaled_config(moved),
        )
        assert observables(resumed) == observables(baseline)

    def test_resume_under_faults_replays_quarantines(self, inputs, tmp_path):
        plan = FaultPlan(
            FaultConfig(
                seed=7,
                region_failure_rate=0.15,
                persistent_failure_rate=0.05,
                straggler_rate=0.2,
            )
        )
        knobs = dict(
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        )
        baseline = run(CAQEConfig(**knobs), inputs)
        assert baseline.stats.regions_quarantined > 0  # corner is live
        with pytest.raises(QueryCancelled):
            run(
                journaled_config(tmp_path, **knobs),
                inputs,
                cancel_token=StopAfter(9),
            )
        resumed = resume_run(
            inputs[0].left,
            inputs[0].right,
            inputs[1],
            inputs[2],
            journaled_config(tmp_path, **knobs),
        )
        assert observables(resumed) == observables(baseline)


class TestResumeSafety:
    def test_fresh_run_refuses_a_used_journal_dir(self, inputs, tmp_path):
        run(journaled_config(tmp_path), inputs)
        with pytest.raises(DurabilityError, match="already exists"):
            run(journaled_config(tmp_path), inputs)

    def test_resume_requires_journaling_enabled(self, inputs):
        config = CAQEConfig()
        with pytest.raises(DurabilityError, match="enable_journal"):
            resume_run(
                inputs[0].left, inputs[0].right, inputs[1], inputs[2], config
            )

    def test_resume_rejects_different_inputs(self, inputs, tmp_path):
        with pytest.raises(QueryCancelled):
            run(journaled_config(tmp_path), inputs, cancel_token=StopAfter(4))
        other_pair = generate_pair(
            "independent", 90, 4, selectivity=0.05, seed=30
        )
        with pytest.raises(DurabilityError, match="fingerprint"):
            resume_run(
                other_pair.left,
                other_pair.right,
                inputs[1],
                inputs[2],
                journaled_config(tmp_path),
            )

    def test_tampered_record_raises_resume_mismatch(self, inputs, tmp_path):
        config = journaled_config(tmp_path, checkpoint_every_regions=10_000)
        with pytest.raises(QueryCancelled):
            run(config, inputs, cancel_token=StopAfter(8))
        path = tmp_path / JOURNAL_FILENAME
        lines = path.read_bytes().splitlines(keepends=True)
        # Rewrite the third region record (line 3 after the header) with
        # a drifted comparison count — and a *valid* CRC, so only the
        # verify-then-append replay can catch it.
        import json

        record = json.loads(lines[3].decode().split(" ", 1)[1])
        record["comparisons"] = int(record["comparisons"]) + 1
        lines[3] = _encode(record)
        path.write_bytes(b"".join(lines))
        with pytest.raises(ResumeMismatch, match="comparisons"):
            resume_run(
                inputs[0].left,
                inputs[0].right,
                inputs[1],
                inputs[2],
                config,
            )

    def test_config_must_match_on_observable_knobs(self, inputs, tmp_path):
        with pytest.raises(QueryCancelled):
            run(journaled_config(tmp_path), inputs, cancel_token=StopAfter(4))
        drifted = dataclasses.replace(
            journaled_config(tmp_path), enable_batch_insert=False
        )
        with pytest.raises(DurabilityError, match="fingerprint"):
            resume_run(
                inputs[0].left,
                inputs[0].right,
                inputs[1],
                inputs[2],
                drifted,
            )

    def test_cadence_change_is_allowed_on_resume(self, inputs, tmp_path):
        # Checkpoint cadence is a durability knob, not run identity.
        baseline = run(CAQEConfig(), inputs)
        with pytest.raises(QueryCancelled):
            run(journaled_config(tmp_path), inputs, cancel_token=StopAfter(4))
        retuned = journaled_config(tmp_path, checkpoint_every_regions=2)
        resumed = resume_run(
            inputs[0].left, inputs[0].right, inputs[1], inputs[2], retuned
        )
        assert observables(resumed) == observables(baseline)
