"""Tests for output regions and region dominance (Definition 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.region import (
    OutputRegion,
    RegionDominance,
    point_could_be_dominated_by_region,
    point_dominates_region,
    region_dominance,
)
from repro.errors import ExecutionError


def make_region(region_id, lower, upper, rql=0b1):
    return OutputRegion(
        region_id=region_id,
        left_cell_id=0,
        right_cell_id=0,
        condition_name="JC1",
        lower=np.asarray(lower, dtype=float),
        upper=np.asarray(upper, dtype=float),
        rql=rql,
        coord_lo=(0,) * len(lower),
        coord_hi=(0,) * len(lower),
        est_join_count=1.0,
    )


class TestOutputRegion:
    def test_cell_count(self):
        region = make_region(0, [0, 0], [1, 1])
        region.coord_lo, region.coord_hi = (0, 1), (2, 3)
        assert region.cell_count == 9

    def test_serves_and_deactivate(self):
        region = make_region(0, [0], [1], rql=0b101)
        assert region.serves(0) and not region.serves(1) and region.serves(2)
        region.deactivate_query(0)
        assert not region.serves(0)
        assert not region.is_discarded
        region.deactivate_query(2)
        assert region.is_discarded

    def test_invalid_bounds(self):
        with pytest.raises(ExecutionError):
            make_region(0, [2.0], [1.0])

    def test_empty_rql_rejected(self):
        with pytest.raises(ExecutionError):
            make_region(0, [0.0], [1.0], rql=0)


class TestExample16RegionDominance:
    """Example 16's three regions over (d1, d2, d3, d4)."""

    R1 = make_region(1, [6, 8, 8, 4], [8, 10, 10, 6], rql=0b1)
    R2 = make_region(2, [8, 6, 6, 5], [10, 8, 8, 7], rql=0b1)
    R3 = make_region(3, [7, 5, 4, 1], [9, 7, 6, 4], rql=0b1)

    def test_r1_nondominated_on_d1(self):
        """R1 has the best d1 range: nobody dominates it there."""
        assert region_dominance(self.R2, self.R1, (0,)) is not RegionDominance.DOMINATES
        assert region_dominance(self.R3, self.R1, (0,)) is not RegionDominance.DOMINATES

    def test_r3_dominates_r1_on_d3(self):
        """R3's d3 upper bound (6) <= R1's lower (8): full dominance."""
        assert region_dominance(self.R3, self.R1, (2,)) is RegionDominance.DOMINATES

    def test_r3_r1_boundary_tie_on_d4_is_not_full_dominance(self):
        """R3's d4 upper bound (4) equals R1's lower bound (4): without a
        strictly better dimension this is only partial dominance."""
        assert region_dominance(self.R3, self.R1, (3,)) is RegionDominance.PARTIAL

    def test_r3_dominates_r2_on_d4(self):
        assert region_dominance(self.R3, self.R2, (3,)) is RegionDominance.DOMINATES

    def test_r1_r3_partial_on_d1d2(self):
        """Over {d1,d2} both survive in the example's SKY computation."""
        assert region_dominance(self.R3, self.R1, (0, 1)) is not RegionDominance.DOMINATES
        assert region_dominance(self.R1, self.R3, (0, 1)) is not RegionDominance.DOMINATES

    def test_r3_dominates_r1_on_d3d4(self):
        """Example 16: SKY(d3,d4) = {R3} — R1 and R2 are dominated."""
        assert region_dominance(self.R3, self.R1, (2, 3)) is RegionDominance.DOMINATES
        assert region_dominance(self.R3, self.R2, (2, 3)) is RegionDominance.DOMINATES


class TestDominanceKinds:
    def test_full(self):
        a = make_region(0, [0, 0], [1, 1])
        b = make_region(1, [2, 2], [3, 3])
        assert region_dominance(a, b, (0, 1)) is RegionDominance.DOMINATES

    def test_partial_on_overlap(self):
        a = make_region(0, [0, 0], [5, 5])
        b = make_region(1, [2, 2], [7, 7])
        assert region_dominance(a, b, (0, 1)) is RegionDominance.PARTIAL

    def test_incomparable(self):
        a = make_region(0, [5, 5], [6, 6])
        b = make_region(1, [0, 0], [1, 1])
        assert region_dominance(a, b, (0, 1)) is RegionDominance.INCOMPARABLE

    def test_subspace_changes_relation(self):
        a = make_region(0, [0, 9], [1, 10])
        b = make_region(1, [5, 0], [6, 1])
        assert region_dominance(a, b, (0,)) is RegionDominance.DOMINATES
        assert region_dominance(a, b, (1,)) is RegionDominance.INCOMPARABLE


class TestPointRegionTests:
    def test_point_dominates_region(self):
        region = make_region(0, [5, 5], [9, 9])
        assert point_dominates_region(np.array([1.0, 1.0]), region, (0, 1))
        assert not point_dominates_region(np.array([6.0, 1.0]), region, (0, 1))

    def test_point_on_boundary_does_not_dominate(self):
        region = make_region(0, [5, 5], [9, 9])
        assert not point_dominates_region(np.array([5.0, 5.0]), region, (0, 1))

    def test_point_could_be_dominated(self):
        region = make_region(0, [2, 2], [4, 4])
        assert point_could_be_dominated_by_region(np.array([3.0, 3.0]), region, (0, 1))
        assert point_could_be_dominated_by_region(np.array([9.0, 9.0]), region, (0, 1))
        assert not point_could_be_dominated_by_region(
            np.array([1.0, 1.0]), region, (0, 1)
        )

    def test_safety_test_is_sound(self, rng):
        """If the safety test says safe, no tuple in the region's box can
        dominate the point."""
        region = make_region(0, [2, 2], [4, 4])
        for _ in range(200):
            point = rng.random(2) * 6
            if not point_could_be_dominated_by_region(point, region, (0, 1)):
                samples = region.lower + rng.random((50, 2)) * (
                    region.upper - region.lower
                )
                for s in samples:
                    assert not (np.all(s <= point) and np.any(s < point))


@given(
    lo_a=st.lists(st.floats(0, 50, allow_nan=False), min_size=2, max_size=2),
    w_a=st.lists(st.floats(0, 20, allow_nan=False), min_size=2, max_size=2),
    lo_b=st.lists(st.floats(0, 50, allow_nan=False), min_size=2, max_size=2),
    w_b=st.lists(st.floats(0, 20, allow_nan=False), min_size=2, max_size=2),
)
@settings(max_examples=80, deadline=None)
def test_property_full_dominance_is_asymmetric(lo_a, w_a, lo_b, w_b):
    a = make_region(0, lo_a, [l + w for l, w in zip(lo_a, w_a)])
    b = make_region(1, lo_b, [l + w for l, w in zip(lo_b, w_b)])
    if region_dominance(a, b, (0, 1)) is RegionDominance.DOMINATES:
        assert region_dominance(b, a, (0, 1)) is not RegionDominance.DOMINATES
