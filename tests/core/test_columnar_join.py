"""Property tests: the vectorised grouped join ≡ the scalar reference.

The columnar data plane (docs/ARCHITECTURE.md §12) replaces the
dict-of-lists bucket loop with a sort-based kernel
(:func:`repro.parallel.joinkernel.vectorized_equi_join`).  Everything
downstream — SFS presort tie-breaks, insertion ids, skyline replay — is
sensitive to the *order* of the emitted pairs, so equivalence here means
identical index arrays, not identical sets.  Hypothesis drives the key
distributions the kernel must survive: heavy duplicates, skew, empty
sides, singletons, and the NaN / non-numeric inputs where the kernel must
decline rather than guess.

The modelled probe charge (``left.size + right.size`` per cell pair,
docs/ARCHITECTURE.md §12) is asserted to be identical on both paths via
:class:`ExecutionStats`, keeping virtual time independent of the plane.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import ExecutionStats
from repro.parallel.joinkernel import (
    build_grouped,
    bucket_join,
    cell_join,
    probe_grouped,
    vectorized_equi_join,
)

# Small key domains force duplicate-heavy, skewed distributions — the
# regime where grouped runs and bucket chains are longest.
_INT_KEYS = st.lists(st.integers(min_value=-3, max_value=3), max_size=40)
_FLOAT_KEYS = st.lists(
    st.sampled_from([-1.5, -0.0, 0.0, 0.5, 2.0, 1e300]), max_size=40
)


def _as_pairs(result):
    left, right = result
    return list(zip(left.tolist(), right.tolist()))


@settings(max_examples=200, deadline=None)
@given(left=_INT_KEYS, right=_INT_KEYS)
def test_integer_keys_match_reference_pairs_and_order(left, right):
    lv = np.asarray(left, dtype=np.int64)
    rv = np.asarray(right, dtype=np.int64)
    got = vectorized_equi_join(lv, rv)
    assert got is not None
    assert _as_pairs(got) == _as_pairs(bucket_join(lv, rv))


@settings(max_examples=200, deadline=None)
@given(left=_FLOAT_KEYS, right=_FLOAT_KEYS)
def test_float_keys_match_reference_pairs_and_order(left, right):
    lv = np.asarray(left, dtype=np.float64)
    rv = np.asarray(right, dtype=np.float64)
    got = vectorized_equi_join(lv, rv)
    assert got is not None
    assert _as_pairs(got) == _as_pairs(bucket_join(lv, rv))


@settings(max_examples=100, deadline=None)
@given(left=_INT_KEYS, right=_INT_KEYS, data=st.data())
def test_cached_build_reprobes_match_one_shot(left, right, data):
    """One build, many probes — the executor's per-(cell, condition) cache."""
    lv = np.asarray(left, dtype=np.int64)
    build = build_grouped(lv)
    assert build is not None
    probes = [right] + data.draw(st.lists(_INT_KEYS, max_size=3))
    for probe in probes:
        rv = np.asarray(probe, dtype=np.int64)
        got = probe_grouped(build, rv)
        assert got is not None
        assert _as_pairs(got) == _as_pairs(bucket_join(lv, rv))


@settings(max_examples=100, deadline=None)
@given(left=_INT_KEYS, right=_INT_KEYS)
def test_cell_join_maps_local_pairs_to_global_rows(left, right):
    lv = np.asarray(left, dtype=np.int64)
    rv = np.asarray(right, dtype=np.int64)
    # Arbitrary (but distinct) global row ids, as leaf cells produce.
    left_indices = np.arange(100, 100 + len(lv), dtype=np.intp)
    right_indices = np.arange(500, 500 + len(rv), dtype=np.intp)
    got_l, got_r = cell_join(lv, rv, left_indices, right_indices)
    ref_l, ref_r = bucket_join(lv, rv)
    np.testing.assert_array_equal(got_l, left_indices[ref_l])
    np.testing.assert_array_equal(got_r, right_indices[ref_r])


def test_empty_sides_yield_empty_index_arrays():
    empty = np.empty(0, dtype=np.int64)
    keys = np.asarray([1, 1, 2], dtype=np.int64)
    for lv, rv in [(empty, keys), (keys, empty), (empty, empty)]:
        got = vectorized_equi_join(lv, rv)
        assert got is not None
        left, right = got
        assert left.shape == (0,) and left.dtype == np.intp
        assert right.shape == (0,) and right.dtype == np.intp
        assert _as_pairs(got) == _as_pairs(bucket_join(lv, rv))


def test_kernel_declines_nan_and_non_numeric_keys():
    nan_keys = np.asarray([1.0, np.nan], dtype=np.float64)
    clean = np.asarray([1.0, 2.0], dtype=np.float64)
    assert build_grouped(nan_keys) is None
    assert vectorized_equi_join(nan_keys, clean) is None
    build = build_grouped(clean)
    assert build is not None
    assert probe_grouped(build, nan_keys) is None
    assert build_grouped(np.asarray(["a", "b"], dtype=object)) is None


@settings(max_examples=50, deadline=None)
@given(left=_INT_KEYS, right=_INT_KEYS)
def test_cell_join_falls_back_identically_on_object_keys(left, right):
    """Out-of-domain dtypes route through the bucket loop unchanged."""
    lv = np.asarray(left, dtype=np.int64)
    rv = np.asarray(right, dtype=np.int64)
    lo = lv.astype(object)
    ro = rv.astype(object)
    left_indices = np.arange(len(lv), dtype=np.intp)
    right_indices = np.arange(len(rv), dtype=np.intp)
    got = cell_join(lo, ro, left_indices, right_indices)
    ref = cell_join(lv, rv, left_indices, right_indices)
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])


def test_probe_charge_is_identical_on_both_paths():
    """Virtual time charges cell sizes, never Python work, on either plane."""
    from repro.core.executor import join_cell_pair
    from repro.partition.quadtree import quadtree_partition
    from repro.query.predicates import JoinCondition
    from repro.relation.relation import Relation
    from repro.relation.schema import Role, Schema

    schema = Schema.of(m=Role.MEASURE, j=Role.JOIN)
    left = Relation.from_rows(
        "L", schema, [(float(k), float(k % 3)) for k in range(12)]
    )
    right = Relation.from_rows(
        "R", schema, [(float(k), float(k % 4)) for k in range(9)]
    )
    condition = JoinCondition.on("j", name="JC")
    conditions = (condition,)
    lp = quadtree_partition(left, ("m",), conditions, "left", capacity=16)
    rp = quadtree_partition(right, ("m",), conditions, "right", capacity=16)
    lc, rc = lp.leaves[0], rp.leaves[0]
    charges = {}
    for label in ("vectorised", "reference"):
        stats = ExecutionStats()
        pairs = join_cell_pair(left, right, lc, rc, condition, stats)
        charges[label] = (stats.join_probes, _as_pairs(pairs))
    assert charges["vectorised"] == charges["reference"]
    assert charges["vectorised"][0] == lc.size + rc.size
