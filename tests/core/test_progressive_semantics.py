"""Semantic tests of CAQE's progressive reporting guarantees."""

import numpy as np
import pytest

from repro.contracts import c1, c2
from repro.core import CAQE, CAQEConfig, run_caqe
from repro.datagen import generate_pair
from repro.query import reference_evaluate, subspace_workload


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 180, 4, selectivity=0.05, seed=91)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="uniform")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=1000.0) for q in workload}


@pytest.fixture(scope="module")
def run(pair, workload, contracts):
    return run_caqe(pair.left, pair.right, workload, contracts)


class TestFinality:
    def test_reported_results_are_never_wrong(self, run, pair, workload):
        """Every reported identity is in the true final skyline: CAQE only
        reports results that can no longer be invalidated."""
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            for key in run.logs[query.name].keys:
                assert key in ref.skyline_pairs, (query.name, key)

    def test_prefixes_are_valid_at_every_moment(self, run, pair, workload):
        """Any prefix of the delivery log is a subset of the final answer —
        the non-retraction guarantee a progressive consumer relies on."""
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            seen = set()
            for event in run.logs[query.name].events:
                seen.add(event.key)
                assert seen <= ref.skyline_pairs

    def test_exactly_complete_at_horizon(self, run, pair, workload):
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert set(run.logs[query.name].keys) == ref.skyline_pairs


class TestOrderingEffects:
    def test_contract_order_tracks_scan_order_under_deadline(
        self, pair, workload
    ):
        """At unit-test scale the CSM's estimation noise can cost a few
        points against plain scan order on individual seeds; the ordering
        advantage proper is asserted at experiment scale by the Figure 9
        benches.  Here we pin down that contract-driven ordering is never
        catastrophically worse and that both runs stay exact."""
        probe = CAQE(CAQEConfig(objective="scan", enable_feedback=False)).run(
            pair.left, pair.right, workload,
            {q.name: c1(float("inf")) for q in workload},
        )
        deadline = 0.5 * probe.horizon
        contracts = {q.name: c1(deadline) for q in workload}
        caqe = run_caqe(pair.left, pair.right, workload, contracts)
        scan = CAQE(CAQEConfig(objective="scan", enable_feedback=False)).run(
            pair.left, pair.right, workload, contracts
        )
        assert caqe.average_satisfaction() >= scan.average_satisfaction() - 0.1
        for query in workload:
            assert caqe.reported[query.name] == scan.reported[query.name]

    def test_emission_timestamps_match_log_order(self, run, workload):
        for query in workload:
            ts = run.logs[query.name].timestamps
            assert np.all(np.diff(ts) >= 0)


class TestPruningSemantics:
    def test_pruning_reduces_join_volume(self, pair, workload, contracts):
        pruned = CAQE(CAQEConfig(target_cells=24)).run(
            pair.left, pair.right, workload, contracts
        )
        unpruned = CAQE(
            CAQEConfig(
                target_cells=24,
                enable_coarse_pruning=False,
                enable_tuple_discard=False,
            )
        ).run(pair.left, pair.right, workload, contracts)
        assert pruned.stats.join_results <= unpruned.stats.join_results
        # And exactness is preserved either way.
        for query in workload:
            assert pruned.reported[query.name] == unpruned.reported[query.name]

    def test_discarded_plus_processed_covers_all_regions(
        self, pair, workload, contracts
    ):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        stats = result.stats
        # Every region either ran or was provably useless; nothing leaks.
        assert stats.regions_processed > 0
        assert stats.regions_processed + stats.regions_discarded >= stats.regions_processed
