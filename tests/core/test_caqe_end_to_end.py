"""End-to-end tests for the CAQE driver (Algorithm 1)."""

import numpy as np
import pytest

from repro.contracts import c1, c2, c3, c4, c5
from repro.core import CAQE, CAQEConfig, run_caqe
from repro.datagen import generate_pair
from repro.errors import ExecutionError
from repro.query import reference_evaluate, subspace_workload


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 150, 4, selectivity=0.05, seed=23)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="dims_asc")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=100.0) for q in workload}


@pytest.fixture(scope="module")
def references(pair, workload):
    return {
        q.name: reference_evaluate(q, pair.left, pair.right).skyline_pairs
        for q in workload
    }


class TestCorrectness:
    def test_reported_results_exactly_match_reference(
        self, pair, workload, contracts, references
    ):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name]

    @pytest.mark.parametrize(
        "tweak",
        [
            {"enable_feedback": False},
            {"enable_depgraph": False},
            {"enable_coarse_pruning": False},
            {"enable_tuple_discard": False},
            {"assume_dva": False},
            {"objective": "count"},
            {"objective": "scan"},
            {"divisions": 4},
            {"target_cells": 4},
        ],
    )
    def test_every_configuration_is_exact(
        self, pair, workload, contracts, references, tweak
    ):
        """Correctness must not depend on any optimisation toggle."""
        config = CAQEConfig(**tweak)
        result = CAQE(config).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name]

    @pytest.mark.parametrize("distribution", ["correlated", "anticorrelated"])
    def test_other_distributions(self, workload, distribution):
        pair = generate_pair(distribution, 120, 4, selectivity=0.05, seed=5)
        contracts = {q.name: c1(1e7) for q in workload}
        result = run_caqe(pair.left, pair.right, workload, contracts)
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert result.reported[query.name] == ref.skyline_pairs

    def test_single_query_workload(self, pair):
        wl = subspace_workload(4, min_size=4)  # just the full-space query
        contracts = {q.name: c3(100.0) for q in wl}
        result = run_caqe(pair.left, pair.right, wl, contracts)
        ref = reference_evaluate(wl.queries[0], pair.left, pair.right)
        assert result.reported[wl.queries[0].name] == ref.skyline_pairs


class TestProgressiveness:
    def test_results_are_spread_over_time(self, pair, workload, contracts):
        """CAQE must not dump everything at the horizon: the first report
        should land well before completion."""
        result = run_caqe(pair.left, pair.right, workload, contracts)
        all_ts = np.concatenate(
            [result.logs[q.name].timestamps for q in workload]
        )
        assert all_ts.min() < 0.5 * result.horizon
        spread = np.unique(all_ts)
        assert len(spread) > 3  # genuinely incremental, not one batch

    def test_timestamps_bounded_by_horizon(self, pair, workload, contracts):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        for query in workload:
            ts = result.logs[query.name].timestamps
            assert np.all(ts <= result.horizon + 1e-9)

    def test_log_sizes_match_reported_sets(self, pair, workload, contracts):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert len(result.logs[query.name]) == len(result.reported[query.name])


class TestContractAwareness:
    def test_deadline_contract_prioritises_its_query(self, pair, workload):
        """A query with a tight deadline should receive a larger share of
        its results before that deadline than under a scan-order run."""
        tight = {q.name: c1(1e9) for q in workload}
        tight["Q1"] = c1(2000.0)
        caqe = run_caqe(pair.left, pair.right, workload, tight)
        sat_caqe = caqe.satisfaction("Q1")
        scan = CAQE(
            CAQEConfig(objective="scan", enable_feedback=False)
        ).run(pair.left, pair.right, workload, tight)
        sat_scan = scan.satisfaction("Q1")
        assert sat_caqe >= sat_scan

    def test_missing_contract_raises(self, pair, workload, contracts):
        incomplete = dict(contracts)
        del incomplete["Q5"]
        with pytest.raises(ExecutionError, match="Q5"):
            run_caqe(pair.left, pair.right, workload, incomplete)

    def test_invalid_objective_rejected(self):
        with pytest.raises(ExecutionError):
            CAQEConfig(objective="random")


class TestRunResult:
    def test_average_satisfaction_in_unit_interval(self, pair, workload, contracts):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        assert 0.0 <= result.average_satisfaction() <= 1.0

    def test_total_pscore_nonnegative(self, pair, workload, contracts):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        assert result.total_pscore() >= 0.0

    def test_stats_are_populated(self, pair, workload, contracts):
        result = run_caqe(pair.left, pair.right, workload, contracts)
        summary = result.stats.summary()
        assert summary["join_results"] > 0
        assert summary["skyline_comparisons"] > 0
        assert summary["results_reported"] == sum(
            len(result.logs[q.name]) for q in workload
        )
        assert result.horizon == summary["virtual_time"]

    def test_shared_stats_accumulate(self, pair, workload, contracts):
        from repro.core.stats import ExecutionStats

        stats = ExecutionStats()
        engine = CAQE()
        engine.run(pair.left, pair.right, workload, contracts, stats)
        t1 = stats.clock.now()
        engine.run(pair.left, pair.right, workload, contracts, stats)
        assert stats.clock.now() > t1


class TestDeterminism:
    def test_same_seed_same_everything(self, workload, contracts):
        pair = generate_pair("independent", 100, 4, selectivity=0.05, seed=77)
        r1 = run_caqe(pair.left, pair.right, workload, contracts)
        r2 = run_caqe(pair.left, pair.right, workload, contracts)
        assert r1.horizon == r2.horizon
        assert r1.stats.summary() == r2.stats.summary()
        for query in workload:
            np.testing.assert_array_equal(
                r1.logs[query.name].timestamps, r2.logs[query.name].timestamps
            )
