"""Tests for tuple-level region processing (Section 6)."""

import numpy as np
import pytest

from repro.core.coarse_join import coarse_join
from repro.core.executor import (
    JoinResultStore,
    RegionExecutor,
    ResultIdentity,
    join_cell_pair,
)
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.partition import quadtree_partition
from repro.plan import WorkloadPlan
from repro.query import hash_join


@pytest.fixture
def setup(eleven_query_workload, small_pair):
    wl = eleven_query_workload
    conditions = wl.join_conditions
    lp = quadtree_partition(
        small_pair.left, ("m1", "m2", "m3", "m4"), conditions, "left", capacity=60
    )
    rp = quadtree_partition(
        small_pair.right, ("m1", "m2", "m3", "m4"), conditions, "right", capacity=60
    )
    stats = ExecutionStats()
    cj = coarse_join(wl, lp, rp, stats)
    plan = WorkloadPlan(wl, wl.output_dims, counter=stats.comparison_counter)
    executor = RegionExecutor(
        wl, small_pair.left, small_pair.right, plan, JoinResultStore(), stats
    )
    cells_l = {c.cell_id: c for c in lp.leaves}
    cells_r = {c.cell_id: c for c in rp.leaves}
    return wl, cj, executor, cells_l, cells_r, stats


class TestJoinCellPair:
    def test_matches_hash_join_within_cells(self, setup, small_pair):
        wl, cj, executor, cells_l, cells_r, stats = setup
        region = cj.regions[0]
        li, ri = join_cell_pair(
            small_pair.left, small_pair.right,
            cells_l[region.left_cell_id], cells_r[region.right_cell_id],
            wl.join_conditions[0], stats,
        )
        gl, gr = hash_join(small_pair.left, small_pair.right, wl.join_conditions[0])
        global_pairs = set(zip(gl.tolist(), gr.tolist()))
        local_pairs = set(zip(li.tolist(), ri.tolist()))
        members_l = set(cells_l[region.left_cell_id].indices.tolist())
        members_r = set(cells_r[region.right_cell_id].indices.tolist())
        expected = {
            (a, b) for a, b in global_pairs if a in members_l and b in members_r
        }
        assert local_pairs == expected

    def test_charges_probes(self, setup, small_pair):
        wl, cj, executor, cells_l, cells_r, _ = setup
        stats = ExecutionStats()
        region = cj.regions[0]
        join_cell_pair(
            small_pair.left, small_pair.right,
            cells_l[region.left_cell_id], cells_r[region.right_cell_id],
            wl.join_conditions[0], stats,
        )
        expected = (
            cells_l[region.left_cell_id].size + cells_r[region.right_cell_id].size
        )
        assert stats.join_probes == expected


class TestRegionExecutor:
    def test_processing_all_regions_reconstructs_skylines(
        self, setup, small_pair, eleven_query_workload
    ):
        """After processing every region, per-query windows must equal the
        reference skylines."""
        from repro.query import reference_evaluate

        wl, cj, executor, cells_l, cells_r, stats = setup
        for region in cj.regions:
            executor.process(
                region, cells_l[region.left_cell_id], cells_r[region.right_cell_id]
            )
        for query in wl:
            ref = reference_evaluate(query, small_pair.left, small_pair.right)
            got = {
                executor.store.identity(k).as_tuple()
                for k in executor.plan.current_skyline(query.name)
            }
            assert got == ref.skyline_pairs

    def test_outcome_reports_admissions(self, setup):
        wl, cj, executor, cells_l, cells_r, stats = setup
        region = cj.regions[0]
        outcome = executor.process(
            region, cells_l[region.left_cell_id], cells_r[region.right_cell_id]
        )
        assert outcome.join_count == len(outcome.inserted_keys)
        for name, keys in outcome.admitted.items():
            for key in keys:
                assert executor.plan.is_candidate(name, key)

    def test_join_results_counted(self, setup):
        wl, cj, executor, cells_l, cells_r, stats = setup
        before = stats.join_results
        region = cj.regions[0]
        outcome = executor.process(
            region, cells_l[region.left_cell_id], cells_r[region.right_cell_id]
        )
        assert stats.join_results - before == outcome.join_count

    def test_discarded_region_rejected(self, setup):
        wl, cj, executor, cells_l, cells_r, stats = setup
        region = cj.regions[0]
        for qi in range(len(wl)):
            region.deactivate_query(qi)
        with pytest.raises(ExecutionError, match="discarded"):
            executor.process(
                region, cells_l[region.left_cell_id], cells_r[region.right_cell_id]
            )

    def test_region_overhead_charged(self, setup):
        wl, cj, executor, cells_l, cells_r, stats = setup
        before = stats.regions_processed
        region = cj.regions[1]
        executor.process(
            region, cells_l[region.left_cell_id], cells_r[region.right_cell_id]
        )
        assert stats.regions_processed == before + 1


class TestJoinResultStore:
    def test_add_and_lookup(self):
        store = JoinResultStore()
        key = store.add(ResultIdentity(3, 7), np.array([1.0, 2.0]), region_id=5)
        assert store.identity(key).as_tuple() == (3, 7)
        np.testing.assert_array_equal(store.vector(key), [1.0, 2.0])
        assert store.region_of[key] == 5
        assert len(store) == 1

    def test_keys_are_sequential(self):
        store = JoinResultStore()
        k1 = store.add(ResultIdentity(0, 0), np.zeros(1), 0)
        k2 = store.add(ResultIdentity(0, 1), np.zeros(1), 0)
        assert k2 == k1 + 1
