"""Tests for coarse skyline (Theorem 1 at region level) and the dependency graph."""

import numpy as np
import pytest

from repro.core.coarse_join import coarse_join
from repro.core.coarse_skyline import coarse_skyline, dominated_flags
from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.core.stats import ExecutionStats
from repro.partition import quadtree_partition
from repro.plan import build_minmax_cuboid


def _mqla(workload, pair, capacity=40):
    conditions = workload.join_conditions
    lp = quadtree_partition(
        pair.left, ("m1", "m2", "m3", "m4"), conditions, "left", capacity=capacity
    )
    rp = quadtree_partition(
        pair.right, ("m1", "m2", "m3", "m4"), conditions, "right", capacity=capacity
    )
    stats = ExecutionStats()
    cj = coarse_join(workload, lp, rp, stats)
    return cj, stats


class TestDominatedFlags:
    def test_simple(self):
        lower = np.array([[0.0, 0.0], [5.0, 5.0], [2.0, 0.5]])
        upper = np.array([[1.0, 1.0], [6.0, 6.0], [3.0, 0.8]])
        flags = dominated_flags(lower, upper)
        # Region 1 is dominated by region 0; region 2 is incomparable to
        # region 0 (better in d2, worse in d1).
        np.testing.assert_array_equal(flags, [False, True, False])

    def test_two_pass_equals_direct(self, rng):
        """The strongest-first two-pass shortcut must match brute force."""
        n = 1500  # above the single-pass threshold
        lower = rng.random((n, 3)) * 50
        upper = lower + rng.random((n, 3)) * 10
        flags = dominated_flags(lower, upper)
        # Brute force on a sample of rows.
        for j in rng.integers(0, n, size=60):
            expected = any(
                np.all(upper[i] <= lower[j]) and np.any(upper[i] < lower[j])
                for i in range(n)
                if i != j
            )
            assert bool(flags[j]) == expected

    def test_no_self_domination(self):
        lower = np.array([[0.0, 0.0]])
        upper = np.array([[1.0, 1.0]])
        assert not dominated_flags(lower, upper)[0]


class TestCoarseSkyline:
    def test_reg_sets_cover_final_answers(
        self, eleven_query_workload, small_pair
    ):
        """Soundness: pruning may never remove a region that contains an
        actual final skyline result (verified end-to-end in integration
        tests; here we check REG is a subset of alive regions)."""
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        result = coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        alive_ids = {r.region_id for r in cj.regions if not r.is_discarded}
        for name, region_ids in result.reg.items():
            assert region_ids <= alive_ids

    def test_discarded_regions_serve_no_query(
        self, eleven_query_workload, small_pair
    ):
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        result = coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        by_id = {r.region_id: r for r in cj.regions}
        for rid in result.discarded:
            assert by_id[rid].is_discarded
            for region_ids in result.reg.values():
                assert rid not in region_ids

    def test_nondominated_child_in_parent(
        self, eleven_query_workload, small_pair
    ):
        """Theorem 1 at region level: non-dominated at a child subspace =>
        present in every parent's non-dominated set (for candidates)."""
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        result = coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        for mask in cuboid.masks:
            node = cuboid.node(mask)
            for child in node.children:
                assert result.nondominated[child] <= result.nondominated[mask]

    def test_records_discards_in_stats(self, eleven_query_workload, small_pair):
        cj, stats = _mqla(eleven_query_workload, small_pair, capacity=20)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        before = stats.regions_discarded
        result = coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        assert stats.regions_discarded - before == len(result.discarded)


class TestDependencyGraphStructure:
    def test_add_and_remove(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, 0b1)
        graph.add_edge(1, 3, 0b10)
        graph.add_edge(2, 3, 0b1)
        assert graph.roots() == {1}
        promoted = graph.remove_node(1)
        assert promoted == {2}
        assert graph.roots() == {2}
        graph.remove_node(2)
        assert graph.roots() == {3}

    def test_edge_mask_merging(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, 0b01)
        graph.add_edge(1, 2, 0b10)
        assert graph.successors(1) == {2: 0b11}

    def test_self_edge_ignored(self):
        graph = DependencyGraph()
        graph.add_edge(1, 1, 0b1)
        assert graph.edge_count() == 0

    def test_empty_query_mask_ignored(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, 0)
        assert graph.edge_count() == 0

    def test_force_roots(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 1, 1)  # cycle
        assert graph.roots() == set()
        assert graph.force_roots() == {1, 2}
        assert graph.roots() == {1, 2}

    def test_remove_unknown_is_noop(self):
        graph = DependencyGraph()
        assert graph.remove_node(42) == set()

    def test_contains(self):
        graph = DependencyGraph()
        graph.add_node(5)
        assert 5 in graph and 6 not in graph


class TestBuiltGraph:
    def test_roots_exist(self, eleven_query_workload, small_pair):
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        graph = build_dependency_graph(
            eleven_query_workload, cuboid, cj.regions, cj.grid, stats
        )
        assert graph.roots(), "a built dependency graph must have roots"

    def test_nodes_are_alive_regions(self, eleven_query_workload, small_pair):
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        coarse_skyline(eleven_query_workload, cuboid, cj.regions, stats)
        graph = build_dependency_graph(
            eleven_query_workload, cuboid, cj.regions, cj.grid, stats
        )
        alive = {r.region_id for r in cj.regions if not r.is_discarded}
        assert graph.nodes == alive

    def test_no_per_query_two_cycles(self, eleven_query_workload, small_pair):
        """The asymmetry rule prevents mutual edges *for the same query*
        (edges both ways for different queries are legitimate)."""
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        graph = build_dependency_graph(
            eleven_query_workload, cuboid, cj.regions, cj.grid, stats
        )
        for source, targets in graph.edges_out.items():
            for target, mask in targets.items():
                reverse = graph.edges_out.get(target, {}).get(source, 0)
                assert mask & reverse == 0

    def test_edge_annotations_are_query_masks(
        self, eleven_query_workload, small_pair
    ):
        cj, stats = _mqla(eleven_query_workload, small_pair)
        cuboid = build_minmax_cuboid(eleven_query_workload)
        graph = build_dependency_graph(
            eleven_query_workload, cuboid, cj.regions, cj.grid, stats
        )
        full_mask = (1 << len(eleven_query_workload)) - 1
        for targets in graph.edges_out.values():
            for mask in targets.values():
                assert 0 < mask <= full_mask
