"""Tests for the CSM benefit model (Eqs 8-10) and feedback (Eq 11)."""

import numpy as np
import pytest

from repro.contracts import c1, c2, c4
from repro.core.benefit import (
    BenefitModel,
    prog_count_exact,
    prog_ratio_volume,
)
from repro.core.clock import CostModel
from repro.core.feedback import update_weights
from repro.core.output_space import OutputGrid
from repro.core.region import OutputRegion
from repro.errors import ExecutionError
from repro.plan import build_minmax_cuboid


def region(region_id, lower, upper, coord_lo, coord_hi, rql=0b1, est=10.0):
    return OutputRegion(
        region_id=region_id,
        left_cell_id=0,
        right_cell_id=0,
        condition_name="JC1",
        lower=np.asarray(lower, dtype=float),
        upper=np.asarray(upper, dtype=float),
        rql=rql,
        coord_lo=coord_lo,
        coord_hi=coord_hi,
        est_join_count=est,
        left_size=10,
        right_size=10,
    )


@pytest.fixture
def grid():
    return OutputGrid(("d1", "d2", "d3", "d4"), (0.0,) * 4, (8.0,) * 4, divisions=8)


class TestProgCountExact:
    def test_example18_style(self, grid):
        """A dominator whose populated best cell kills part of the target
        region: only cells strictly above that cell's upper corner are at
        risk (Definition 11 / Example 18)."""
        target = region(1, [4.0] * 4, [6.0] * 4, (4,) * 4, (5,) * 4)
        dominator = region(2, [3.0] * 4, [5.0] * 4, (3,) * 4, (4,) * 4)
        safe, total = prog_count_exact(target, [dominator], (0, 1, 2, 3), grid)
        assert total == 16  # 2^4 cells
        # Dominator's best cell upper corner is (4,4,4,4): every target cell
        # whose lower corner is >= that with at least one strictly larger
        # coordinate is at risk — all but the (4,4,4,4) cell itself.
        assert safe == 1

    def test_no_dominators_all_safe(self, grid):
        target = region(1, [4.0] * 4, [6.0] * 4, (4,) * 4, (5,) * 4)
        safe, total = prog_count_exact(target, [], (0, 1, 2, 3), grid)
        assert safe == total == 16

    def test_self_excluded(self, grid):
        target = region(1, [0.0] * 4, [8.0] * 4, (0,) * 4, (7,) * 4)
        safe, total = prog_count_exact(target, [target], (0, 1, 2, 3), grid)
        assert safe == total

    def test_total_kill(self, grid):
        target = region(1, [6.0] * 4, [7.0] * 4, (6,) * 4, (6,) * 4)
        dominator = region(2, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4)
        safe, total = prog_count_exact(target, [dominator], (0, 1, 2, 3), grid)
        assert safe == 0 and total == 1


class TestProgRatioVolume:
    def test_no_dominators(self):
        target = region(1, [0.0, 0.0], [4.0, 4.0], (0, 0), (3, 3))
        assert prog_ratio_volume(target, [], (0, 1)) == 1.0

    def test_quarter_coverage(self):
        target = region(1, [0.0, 0.0], [4.0, 4.0], (0, 0), (3, 3))
        dominator = region(2, [2.0, 2.0], [3.0, 3.0], (2, 2), (2, 2))
        # Dominated sub-box = (2..4)x(2..4) = quarter of the target's box.
        assert prog_ratio_volume(target, [dominator], (0, 1)) == pytest.approx(0.75)

    def test_unreachable_dominator(self):
        target = region(1, [0.0, 0.0], [2.0, 2.0], (0, 0), (1, 1))
        dominator = region(2, [5.0, 5.0], [6.0, 6.0], (5, 5), (5, 5))
        assert prog_ratio_volume(target, [dominator], (0, 1)) == 1.0

    def test_full_coverage(self):
        target = region(1, [2.0, 2.0], [4.0, 4.0], (2, 2), (3, 3))
        dominator = region(2, [0.0, 0.0], [1.0, 1.0], (0, 0), (0, 0))
        assert prog_ratio_volume(target, [dominator], (0, 1)) == 0.0

    def test_ratio_decreases_with_more_dominators(self):
        target = region(1, [0.0, 0.0], [4.0, 4.0], (0, 0), (3, 3))
        d1 = region(2, [2.0, 2.0], [3.0, 3.0], (2, 2), (2, 2))
        d2 = region(3, [1.0, 1.0], [2.0, 2.0], (1, 1), (1, 1))
        one = prog_ratio_volume(target, [d1], (0, 1))
        two = prog_ratio_volume(target, [d1, d2], (0, 1))
        assert two < one


class TestBenefitModel:
    @pytest.fixture
    def model(self, eleven_query_workload, grid):
        cuboid = build_minmax_cuboid(eleven_query_workload)
        contracts = {q.name: c2() for q in eleven_query_workload}
        model = BenefitModel(
            eleven_query_workload, cuboid, grid, contracts, CostModel()
        )
        return model

    def test_estimate_requires_attach(self, model):
        r = region(0, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4)
        with pytest.raises(ExecutionError):
            model.estimate(r)

    def test_estimate_zero_for_unserved_queries(self, model):
        r = region(0, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4, rql=0b1)
        model.attach_regions([r])
        est = model.estimate(r)
        assert est.prog_est[0] > 0
        assert np.all(est.prog_est[1:] == 0)

    def test_cost_increases_with_join_estimate(self, model):
        small = region(0, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4, est=5.0)
        large = region(1, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4, est=500.0)
        assert model.estimate_cost(large) > model.estimate_cost(small)

    def test_csm_positive_when_contract_satisfiable(self, model):
        r = region(0, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4, rql=0b111)
        model.attach_regions([r])
        est = model.estimate(r)
        weights = np.ones(11)
        csm = model.csm(r, est, weights, now=0.0)
        assert csm > 0.0

    def test_csm_batch_matches_scalar(self, model):
        regions = [
            region(i, [float(i)] * 4, [float(i) + 1] * 4, (min(i, 7),) * 4,
                   (min(i, 7),) * 4, rql=0b1111, est=20.0 + i)
            for i in range(4)
        ]
        model.attach_regions(regions)
        estimates = [model.estimate(r) for r in regions]
        weights = np.linspace(0.5, 1.5, 11)
        batch = model.csm_batch(estimates, weights, now=3.0)
        for i, r in enumerate(regions):
            assert batch[i] == pytest.approx(
                model.csm(r, estimates[i], weights, now=3.0), abs=1e-9
            )

    def test_weight_zero_query_contributes_nothing(self, model):
        r = region(0, [0.0] * 4, [1.0] * 4, (0,) * 4, (0,) * 4, rql=0b1)
        model.attach_regions([r])
        est = model.estimate(r)
        weights = np.ones(11)
        weights[0] = 0.0
        assert model.csm(r, est, weights, now=0.0) == 0.0

    def test_deactivation_improves_other_regions(self, model):
        """Removing a dominator raises the victim's progressive estimate."""
        victim = region(0, [4.0] * 4, [6.0] * 4, (4,) * 4, (5,) * 4, rql=0b1)
        bully = region(1, [0.0] * 4, [2.0] * 4, (0,) * 4, (1,) * 4, rql=0b1)
        model.attach_regions([victim, bully])
        before = model.estimate(victim).prog_est[0]
        model.note_removed(bully.region_id)
        after = model.estimate(victim).prog_est[0]
        assert after > before

    def test_result_estimates(self, model, eleven_query_workload):
        model.set_result_estimates({"Q1": 50.0})
        assert model.result_estimates[0] == 50.0
        assert model.result_estimates[1] == 1.0  # default floor


class TestFeedback:
    def test_example20(self):
        """Example 20: satisfactions {0, 1, 0.7, 0} -> weights
        {1.43, 1, 1.13, 1.43}."""
        weights = np.ones(4)
        sats = np.array([0.0, 1.0, 0.7, 0.0])
        updated = update_weights(weights, sats)
        np.testing.assert_allclose(updated, [1.4348, 1.0, 1.1304, 1.4348], atol=1e-3)

    def test_all_equal_no_change(self):
        weights = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            update_weights(weights, np.array([0.5, 0.5])), weights
        )

    def test_lagging_query_gains_most(self):
        updated = update_weights(np.ones(3), np.array([0.0, 0.5, 1.0]))
        assert updated[0] > updated[1] > updated[2]

    def test_weight_increase_bounded_by_one(self):
        updated = update_weights(np.ones(5), np.array([0.0, 1.0, 1.0, 1.0, 1.0]))
        assert updated.max() <= 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            update_weights(np.ones(2), np.ones(3))

    def test_empty(self):
        assert len(update_weights(np.ones(0), np.ones(0))) == 0


class TestFeedbackEdgeCases:
    def test_all_zero_satisfaction_leaves_weights_unchanged(self):
        """v_max = 0 means every gap is 0: nobody is lagging anybody."""
        weights = np.array([1.0, 2.5, 0.4])
        updated = update_weights(weights, np.zeros(3))
        np.testing.assert_array_equal(updated, weights)

    def test_returned_array_is_a_defensive_copy(self):
        weights = np.ones(2)
        updated = update_weights(weights, np.zeros(2))
        updated[0] = 99.0
        assert weights[0] == 1.0

    def test_single_query_workload_is_a_fixed_point(self):
        """One query is trivially the best-satisfied; no redistribution."""
        for satisfaction in (0.0, 0.3, 1.0):
            np.testing.assert_array_equal(
                update_weights(np.array([1.7]), np.array([satisfaction])),
                np.array([1.7]),
            )

    def test_renormalisation_after_query_fully_satisfied(self):
        """A fully satisfied query stops gaining weight; the lagging
        queries split exactly one unit of extra weight between them
        (Eq. 11's denominator normalises the gap vector)."""
        weights = np.ones(3)
        sats = np.array([1.0, 0.2, 0.6])
        updated = update_weights(weights, sats)
        assert updated[0] == weights[0]
        increments = updated - weights
        np.testing.assert_allclose(np.sum(increments), 1.0)
        assert increments[1] > increments[2] > 0.0
