"""Equivalence of the batch engine and the incremental scheduler.

The batch skyline insertion path and the cached benefit scheduler are pure
performance work: every observable of a run — the reported identity sets,
the charged comparison counts (Figure 10b), the virtual clock, and the
*sequence of regions processed* — must be identical with the optimisations
on or off.  These tests pin that down on the paper's Figure 1 workload and
on a randomized 8-query workload.
"""

import tempfile

import numpy as np
import pytest

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.query import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    add,
    reference_evaluate,
)
from repro.query.workload import Workload
from repro.rng import ensure_rng

#: The ablation corners of the execution engine.
MODES = {
    "batch+cache": {},
    "scalar+cache": {"enable_batch_insert": False},
    "batch+naive": {"enable_scheduler_cache": False},
    "scalar+naive": {
        "enable_batch_insert": False,
        "enable_scheduler_cache": False,
    },
    # Robustness switches on with no faults injected must also be a
    # pure no-op (docs/ARCHITECTURE.md §9).
    "robust-noop": {"enable_sanitize": True, "enable_recovery": True},
    # Write-ahead journaling + checkpoints must also be a pure no-op
    # (docs/ARCHITECTURE.md §10); journal_dir is filled in per run.
    "journal": {"enable_journal": True, "checkpoint_every_regions": 5},
    # Multi-process region execution must be observation-equivalent to
    # the serial engine (docs/ARCHITECTURE.md §11).
    "parallel": {"workers": 2},
    # The columnar data plane's vectorised hash join must match the
    # scalar probe loop bit for bit (docs/ARCHITECTURE.md §12).
    "columnar": {"enable_columnar_join": False},
}


def figure1_workload() -> Workload:
    """The running example of the paper (Figure 1): Q1..Q4 over d1..d4."""
    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
    return Workload(
        [
            SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )


def random_workload(n_queries: int, dims: int, seed: int) -> Workload:
    """``n_queries`` random skyline subspaces over ``dims`` dimensions."""
    rng = ensure_rng(seed)
    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, dims + 1))
    names = tuple(f"d{i}" for i in range(1, dims + 1))
    queries = []
    for k in range(n_queries):
        size = int(rng.integers(2, dims + 1))
        combo = sorted(rng.choice(dims, size=size, replace=False).tolist())
        queries.append(
            SkylineJoinQuery(
                name=f"Q{k + 1}",
                join_condition=jc,
                functions=fns,
                preference=Preference(tuple(names[i] for i in combo)),
                priority=float(rng.choice([0.3, 0.6, 0.9])),
            )
        )
    return Workload(queries)


def _run_all_modes(pair, workload, contracts):
    results = {}
    for mode, overrides in MODES.items():
        with tempfile.TemporaryDirectory(prefix="caqe-equiv-") as scratch:
            if overrides.get("enable_journal"):
                overrides = {**overrides, "journal_dir": scratch}
            config = CAQEConfig(**overrides)
            results[mode] = CAQE(config).run(
                pair.left, pair.right, workload, contracts
            )
    return results


@pytest.fixture(scope="module")
def fig1_runs():
    pair = generate_pair("independent", 150, 4, selectivity=0.05, seed=23)
    workload = figure1_workload()
    contracts = {q.name: c2(scale=100.0) for q in workload}
    return pair, workload, _run_all_modes(pair, workload, contracts)


@pytest.fixture(scope="module")
def random8_runs():
    pair = generate_pair("anticorrelated", 100, 4, selectivity=0.06, seed=91)
    workload = random_workload(8, 4, seed=2014)
    contracts = {q.name: c2(scale=80.0) for q in workload}
    return pair, workload, _run_all_modes(pair, workload, contracts)


class TestFigure1Workload:
    def test_all_modes_report_the_reference_answer(self, fig1_runs):
        pair, workload, results = fig1_runs
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            for mode, result in results.items():
                assert result.reported[query.name] == ref.skyline_pairs, mode

    def test_cached_scheduler_picks_the_naive_region_sequence(self, fig1_runs):
        _, _, results = fig1_runs
        naive = results["batch+naive"].stats.region_trace
        assert results["batch+cache"].stats.region_trace == naive
        assert len(naive) > 0

    def test_comparisons_and_clock_are_bit_identical(self, fig1_runs):
        _, _, results = fig1_runs
        ref = results["scalar+naive"]
        for mode, result in results.items():
            assert (
                result.stats.skyline_comparisons
                == ref.stats.skyline_comparisons
            ), mode
            assert result.stats.elapsed == ref.stats.elapsed, mode


class TestRandomizedWorkload:
    def test_all_modes_agree_on_every_observable(self, random8_runs):
        _, workload, results = random8_runs
        ref = results["scalar+naive"]
        for mode, result in results.items():
            for query in workload:
                assert result.reported[query.name] == ref.reported[query.name]
            assert (
                result.stats.skyline_comparisons
                == ref.stats.skyline_comparisons
            ), mode
            assert result.stats.region_trace == ref.stats.region_trace, mode
            assert result.stats.elapsed == ref.stats.elapsed, mode

    def test_randomized_answers_match_reference(self, random8_runs):
        pair, workload, results = random8_runs
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert (
                results["batch+cache"].reported[query.name]
                == ref.skyline_pairs
            )


def _serve_single_tenant(pair, workload, contracts, policy):
    """One submission through the multi-tenant region scheduler."""
    from repro.serving import RegionScheduler

    with RegionScheduler(pair.left, pair.right, policy=policy) as sched:
        ticket = sched.submit(workload, contracts)
        sched.drain()
        outcome = ticket.result(timeout=120.0)
    assert outcome.status == "answered"
    return outcome.result


class TestInterleavedSingleTenantCorner:
    """Scheduler-owned control flow is one more ablation corner: a
    single-tenant run served region-by-region through the multi-tenant
    scheduler must be bit-identical to an engine-owned ``CAQE.run``
    (docs/ARCHITECTURE.md §15.2) — under both scheduling policies."""

    @pytest.mark.parametrize("policy", ["benefit", "fifo"])
    def test_fig1_observables_are_bit_identical(self, fig1_runs, policy):
        pair, workload, results = fig1_runs
        contracts = {q.name: c2(scale=100.0) for q in workload}
        served = _serve_single_tenant(pair, workload, contracts, policy)
        ref = results["scalar+naive"]
        assert served.reported == ref.reported
        assert served.stats.region_trace == ref.stats.region_trace
        assert (
            served.stats.skyline_comparisons
            == ref.stats.skyline_comparisons
        )
        assert served.stats.elapsed == ref.stats.elapsed

    @pytest.mark.parametrize("policy", ["benefit", "fifo"])
    def test_random8_observables_are_bit_identical(
        self, random8_runs, policy
    ):
        pair, workload, results = random8_runs
        contracts = {q.name: c2(scale=80.0) for q in workload}
        served = _serve_single_tenant(pair, workload, contracts, policy)
        ref = results["scalar+naive"]
        assert served.reported == ref.reported
        assert served.stats.region_trace == ref.stats.region_trace
        assert served.stats.elapsed == ref.stats.elapsed
