"""Tests for the virtual clock, cost model, and execution statistics."""

import pytest

from repro.core.clock import CostModel, VirtualClock
from repro.core.stats import ExecutionStats
from repro.errors import ExecutionError


class TestCostModel:
    def test_defaults_validate(self):
        CostModel().validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(ExecutionError):
            VirtualClock(cost_model=CostModel(join_probe=-1.0))

    def test_cost_regime_is_join_dominated(self):
        """DESIGN.md §2: the paper's scale is join-dominated — materialising
        a join result outweighs a single dominance comparison, and coarse
        region tests are far cheaper than any tuple-level operation."""
        cm = CostModel()
        assert cm.join_result > cm.skyline_comparison > cm.mapping
        assert cm.coarse_comparison < cm.join_probe
        assert cm.coarse_comparison < 0.1 * cm.skyline_comparison


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ExecutionError):
            VirtualClock().advance(-1.0)

    def test_charging_methods(self):
        cm = CostModel(
            join_probe=1.0, join_result=2.0, mapping=0.5,
            skyline_comparison=5.0, coarse_comparison=0.1,
            region_overhead=10.0, output=0.2,
        )
        clock = VirtualClock(cost_model=cm)
        clock.charge_join_probes(3)
        clock.charge_join_results(2)
        clock.charge_mappings(4)
        clock.charge_skyline_comparisons(1)
        clock.charge_coarse_comparisons(10)
        clock.charge_region_overhead()
        clock.charge_outputs(5)
        assert clock.now() == pytest.approx(3 + 4 + 2 + 5 + 1 + 10 + 1)


class TestExecutionStats:
    def test_comparison_counter_advances_clock(self):
        stats = ExecutionStats()
        stats.comparison_counter.record(10)
        assert stats.skyline_comparisons == 10
        assert stats.elapsed == pytest.approx(
            10 * stats.clock.cost_model.skyline_comparison
        )

    def test_record_join_results_with_mappings(self):
        stats = ExecutionStats()
        stats.record_join_results(4, mapping_functions=3)
        assert stats.join_results == 4
        cm = stats.clock.cost_model
        assert stats.elapsed == pytest.approx(4 * cm.join_result + 12 * cm.mapping)

    def test_region_counters(self):
        stats = ExecutionStats()
        stats.record_region_processed()
        stats.record_region_discarded()
        stats.record_region_discarded()
        assert stats.regions_processed == 1
        assert stats.regions_discarded == 2

    def test_summary_keys(self):
        stats = ExecutionStats()
        summary = stats.summary()
        assert {
            "join_results",
            "skyline_comparisons",
            "virtual_time",
            "results_reported",
        } <= set(summary)

    def test_with_cost_model(self):
        cm = CostModel(skyline_comparison=1.0)
        stats = ExecutionStats.with_cost_model(cm)
        stats.comparison_counter.record()
        assert stats.elapsed == 1.0

    def test_outputs(self):
        stats = ExecutionStats()
        stats.record_outputs(7)
        assert stats.results_reported == 7
