"""Edge-case and failure-injection tests for the CAQE driver internals."""

import numpy as np
import pytest

from repro.contracts import c1, c2
from repro.core import CAQE, CAQEConfig, run_caqe
from repro.core.caqe import partition_attrs
from repro.datagen import generate_pair
from repro.errors import ExecutionError
from repro.query import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    reference_evaluate,
    subspace_workload,
)
from repro.relation import Relation, Role, Schema


class TestPartitionAttrs:
    def test_left_and_right_sides(self, eleven_query_workload):
        assert partition_attrs(eleven_query_workload, "left") == (
            "m1", "m2", "m3", "m4",
        )
        assert partition_attrs(eleven_query_workload, "right") == (
            "m1", "m2", "m3", "m4",
        )

    def test_one_sided_functions(self):
        from repro.query.mapping import left_only

        jc = JoinCondition.on("jc1")
        fns = (left_only("m1", "d1"), add("m2", "m2", "d2"))
        wl = Workload(
            [SkylineJoinQuery("q", jc, fns, Preference.over("d1", "d2"))]
        )
        assert partition_attrs(wl, "left") == ("m1", "m2")
        assert partition_attrs(wl, "right") == ("m2",)


class TestEmptyAndDegenerateJoins:
    def test_empty_join_raises_cleanly(self):
        """Disjoint join domains: the coarse join proves zero results."""
        schema = Schema.of(m1=Role.MEASURE, jc1=Role.JOIN)
        left = Relation.from_rows("R", schema, [(1.0, 0), (2.0, 1)])
        right = Relation.from_rows("T", schema, [(1.0, 7), (2.0, 8)])
        wl = Workload(
            [
                SkylineJoinQuery(
                    "q", JoinCondition.on("jc1"),
                    (add("m1", "m1", "d1"),), Preference.over("d1"),
                )
            ]
        )
        with pytest.raises(ExecutionError, match="no cell pair"):
            run_caqe(left, right, wl, {"q": c1(10.0)})

    def test_single_row_tables(self):
        schema = Schema.of(m1=Role.MEASURE, m2=Role.MEASURE, jc1=Role.JOIN)
        left = Relation.from_rows("R", schema, [(1.0, 2.0, 0)])
        right = Relation.from_rows("T", schema, [(3.0, 4.0, 0)])
        wl = Workload(
            [
                SkylineJoinQuery(
                    "q", JoinCondition.on("jc1"),
                    (add("m1", "m1", "d1"), add("m2", "m2", "d2")),
                    Preference.over("d1", "d2"),
                )
            ]
        )
        result = run_caqe(left, right, wl, {"q": c1(1e9)})
        assert result.reported["q"] == {(0, 0)}

    def test_identical_rows_everywhere(self):
        """Total-tie data: every join result identical, all kept."""
        schema = Schema.of(m1=Role.MEASURE, m2=Role.MEASURE, jc1=Role.JOIN)
        left = Relation.from_rows("R", schema, [(5.0, 5.0, 0)] * 4)
        right = Relation.from_rows("T", schema, [(5.0, 5.0, 0)] * 4)
        wl = Workload(
            [
                SkylineJoinQuery(
                    "q", JoinCondition.on("jc1"),
                    (add("m1", "m1", "d1"), add("m2", "m2", "d2")),
                    Preference.over("d1", "d2"),
                )
            ]
        )
        result = run_caqe(left, right, wl, {"q": c1(1e9)})
        ref = reference_evaluate(wl["q"], left, right)
        assert result.reported["q"] == ref.skyline_pairs
        assert len(result.reported["q"]) == 16  # ties are all skyline


class TestConfigKnobs:
    def test_capacity_override(self):
        config = CAQEConfig(partition_capacity=7)
        assert config.capacity_for(10**6) == 7

    def test_target_cells_derivation(self):
        config = CAQEConfig(target_cells=10)
        assert config.capacity_for(100) == 20  # 2x headroom

    def test_capacity_floor(self):
        assert CAQEConfig(target_cells=1000).capacity_for(1) >= 1

    def test_extreme_grid_divisions_still_exact(self):
        pair = generate_pair("independent", 80, 4, selectivity=0.1, seed=3)
        wl = subspace_workload(4)
        contracts = {q.name: c2(scale=100.0) for q in wl}
        for divisions in (1, 32):
            result = CAQE(CAQEConfig(divisions=divisions)).run(
                pair.left, pair.right, wl, contracts
            )
            for q in wl:
                ref = reference_evaluate(q, pair.left, pair.right)
                assert result.reported[q.name] == ref.skyline_pairs, divisions


class TestReportingStateInvariants:
    def test_no_duplicate_reports(self):
        pair = generate_pair("independent", 100, 4, selectivity=0.1, seed=9)
        wl = subspace_workload(4)
        contracts = {q.name: c2(scale=100.0) for q in wl}
        result = run_caqe(pair.left, pair.right, wl, contracts)
        for q in wl:
            keys = result.logs[q.name].keys
            assert len(keys) == len(set(keys))

    def test_outputs_counter_matches_logs(self):
        pair = generate_pair("correlated", 100, 4, selectivity=0.1, seed=9)
        wl = subspace_workload(4)
        contracts = {q.name: c2(scale=100.0) for q in wl}
        result = run_caqe(pair.left, pair.right, wl, contracts)
        assert result.stats.results_reported == sum(
            len(result.logs[q.name]) for q in wl
        )
