"""Tests for epoch-based continuous CAQE."""

import numpy as np
import pytest

from repro.contracts import c2
from repro.core import CAQEConfig
from repro.core.continuous import ContinuousCAQE
from repro.datagen import generate_pair
from repro.errors import ExecutionError
from repro.query import reference_evaluate, subspace_workload
from repro.relation import Relation


def _slice(relation: Relation, start: int, stop: int) -> Relation:
    return relation.take(np.arange(start, stop), name=relation.name)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="uniform")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=1000.0) for q in workload}


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 120, 4, selectivity=0.08, seed=61)


class TestEpochInvariant:
    def test_cumulative_skyline_matches_reference_after_each_epoch(
        self, workload, contracts, pair
    ):
        engine = ContinuousCAQE(workload, contracts)
        chunks = [(0, 40), (40, 80), (80, 120)]
        for start, stop in chunks:
            engine.process_epoch(
                left_delta=_slice(pair.left, start, stop),
                right_delta=_slice(pair.right, start, stop),
            )
            cumulative_left = _slice(pair.left, 0, stop)
            cumulative_right = _slice(pair.right, 0, stop)
            for query in workload:
                ref = reference_evaluate(query, cumulative_left, cumulative_right)
                assert engine.current_skyline(query.name) == ref.skyline_pairs

    def test_changelog_reconstructs_state(self, workload, contracts, pair):
        engine = ContinuousCAQE(workload, contracts)
        live: dict[str, set] = {q.name: set() for q in workload}
        for start, stop in [(0, 60), (60, 120)]:
            result = engine.process_epoch(
                left_delta=_slice(pair.left, start, stop),
                right_delta=_slice(pair.right, start, stop),
            )
            for query in workload:
                live[query.name] |= result.new_results[query.name]
                live[query.name] -= result.retracted[query.name]
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert live[query.name] == ref.skyline_pairs

    def test_one_sided_epochs(self, workload, contracts, pair):
        """Deltas may arrive on only one table."""
        engine = ContinuousCAQE(workload, contracts)
        engine.process_epoch(
            left_delta=_slice(pair.left, 0, 120),
            right_delta=_slice(pair.right, 0, 60),
        )
        engine.process_epoch(right_delta=_slice(pair.right, 60, 120))
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert engine.current_skyline(query.name) == ref.skyline_pairs

    def test_retractions_happen(self, workload, contracts):
        """A second epoch with dominating data must retract results."""
        from repro.datagen.tables import table_schema

        schema = table_schema(4, 2)
        rng = np.random.default_rng(5)

        def batch(low, high, n):
            columns = {f"m{i}": low + rng.random(n) * (high - low) for i in range(1, 5)}
            columns["jc1"] = np.zeros(n, dtype=int)  # everything joins
            columns["jc2"] = np.zeros(n, dtype=int)
            return Relation("R", schema, columns)

        engine = ContinuousCAQE(workload, contracts)
        first = engine.process_epoch(
            left_delta=batch(50.0, 100.0, 20), right_delta=batch(50.0, 100.0, 20)
        )
        assert any(first.new_results[q.name] for q in workload)
        second = engine.process_epoch(
            left_delta=batch(1.0, 10.0, 10), right_delta=batch(1.0, 10.0, 10)
        )
        assert any(second.retracted[q.name] for q in workload)
        assert all(second.net_change(q.name) is not None for q in workload)


class TestApiContract:
    def test_empty_epoch_rejected(self, workload, contracts):
        engine = ContinuousCAQE(workload, contracts)
        with pytest.raises(ExecutionError):
            engine.process_epoch()

    def test_missing_contract_rejected(self, workload, contracts):
        incomplete = {k: v for k, v in contracts.items() if k != "Q2"}
        with pytest.raises(ExecutionError):
            ContinuousCAQE(workload, incomplete)

    def test_logs_are_monotonic(self, workload, contracts, pair):
        engine = ContinuousCAQE(workload, contracts, CAQEConfig(target_cells=4))
        for start, stop in [(0, 60), (60, 120)]:
            engine.process_epoch(
                left_delta=_slice(pair.left, start, stop),
                right_delta=_slice(pair.right, start, stop),
            )
        for query in workload:
            ts = engine.logs[query.name].timestamps
            assert np.all(np.diff(ts) >= 0)

    def test_virtual_time_advances(self, workload, contracts, pair):
        engine = ContinuousCAQE(workload, contracts)
        r1 = engine.process_epoch(
            left_delta=_slice(pair.left, 0, 60),
            right_delta=_slice(pair.right, 0, 60),
        )
        r2 = engine.process_epoch(
            left_delta=_slice(pair.left, 60, 120),
            right_delta=_slice(pair.right, 60, 120),
        )
        assert r2.virtual_time > r1.virtual_time
        assert r2.epoch == 2
